// Helpers shared by the experiment binaries: the paper's Figure 1
// database and a tiny PASS/FAIL check harness whose summary lines feed
// EXPERIMENTS.md.

#ifndef VIEWAUTH_BENCH_EXP_UTIL_H_
#define VIEWAUTH_BENCH_EXP_UTIL_H_

#include <iostream>
#include <string>

#include "tests/test_util.h"

namespace viewauth {
namespace exp {

class Checker {
 public:
  explicit Checker(std::string experiment) : experiment_(std::move(experiment)) {
    std::cout << "==== " << experiment_ << " ====\n";
  }

  void Check(const std::string& what, bool ok) {
    ++total_;
    if (ok) {
      ++passed_;
      std::cout << "  [PASS] " << what << "\n";
    } else {
      std::cout << "  [FAIL] " << what << "\n";
    }
  }

  template <typename T, typename U>
  void CheckEq(const std::string& what, const T& actual, const U& expected) {
    const bool ok = actual == expected;
    Check(what, ok);
    if (!ok) {
      std::cout << "         expected: " << expected << "\n"
                << "         actual:   " << actual << "\n";
    }
  }

  // Prints the summary; returns the process exit code.
  int Finish() const {
    std::cout << experiment_ << ": " << passed_ << "/" << total_
              << " checks passed\n";
    return passed_ == total_ ? 0 : 1;
  }

 private:
  std::string experiment_;
  int total_ = 0;
  int passed_ = 0;
};

}  // namespace exp
}  // namespace viewauth

#endif  // VIEWAUTH_BENCH_EXP_UTIL_H_
