// PERF-8: dependency-tracked selective cache invalidation under write
// pressure.
//
// A multi-tenant workload — twelve users, each with their own stack of
// range views over two 300-row relations — runs a retrieve stream with
// a configurable fraction of interleaved entitlement mutations (a
// permit/deny toggle on one rotating user's view). With the PR-1
// generation-counter scheme every mutation wiped the whole cache, so at
// a 10% write mix the cache was near-useless; with dependency-tracked
// invalidation only the mutated user's entries drop and the other
// eleven tenants keep riding their cached masks.
//
// For each write mix (0%, 1%, 10%) the identical operation sequence is
// executed twice against independently built but identical workloads:
// once with the authorization cache, once without. The figure of merit
// is speedup = uncached_micros / cached_micros per mix.
//
// Modes:
//   bench_invalidation           all three mixes; writes
//                                BENCH_invalidation.json (run from the
//                                repo root of a Release build)
//   bench_invalidation --smoke   the 10%-writes mix only; exits 1 if
//                                the cached run is not at least 2x
//                                faster (the check.sh regression gate)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "authz/authorizer.h"
#include "authz/authz_cache.h"
#include "calculus/conjunctive_query.h"
#include "common/logging.h"
#include "meta/view_store.h"
#include "parser/parser.h"
#include "storage/relation.h"

namespace viewauth {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kUsers = 12;
constexpr int kRows = 300;
// Per relation side; derivation cost grows superlinearly in the view
// count (pairwise subsumption, self-joins) while the staggered ranges
// collapse to a small mask, so a deeper stack widens the gap between a
// cache hit and a from-scratch derivation without inflating apply cost.
constexpr int kViewsPerUser = 6;

std::string UserName(int u) { return "u" + std::to_string(u); }

// The multi-tenant state: R0 and R1, and per user three staggered range
// views over each, all granted. The first R0 view of each user doubles
// as the mutation target its permit/deny toggle churns.
struct Tenancy {
  DatabaseInstance db;
  std::unique_ptr<ViewCatalog> catalog;
  std::unique_ptr<AuthzCache> cache;  // null for the uncached mode
  std::unique_ptr<Authorizer> authorizer;
  std::vector<ConjunctiveQuery> queries;  // one per user
  std::vector<bool> toggle_granted;       // per user
};

ConjunctiveQuery ParseQuery(const DatabaseInstance& db,
                            const std::string& text) {
  auto stmt = ParseStatement(text);
  VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
  auto query = ConjunctiveQuery::FromRetrieve(db.schema(),
                                              std::get<RetrieveStmt>(*stmt));
  VIEWAUTH_CHECK(query.ok()) << query.status().ToString();
  return std::move(query).value();
}

std::string ToggleView(int u) { return "T" + std::to_string(u); }

std::unique_ptr<Tenancy> MakeTenancy(bool with_cache) {
  auto t = std::make_unique<Tenancy>();
  for (int r = 0; r < 2; ++r) {
    std::string name = "R" + std::to_string(r);
    auto schema = RelationSchema::Make(name,
                                       {{"KEY", ValueType::kInt64},
                                        {"A", ValueType::kInt64},
                                        {"B", ValueType::kInt64},
                                        {"C", ValueType::kInt64}},
                                       {0});
    VIEWAUTH_CHECK(schema.ok());
    VIEWAUTH_CHECK(t->db.CreateRelation(std::move(*schema)).ok());
    for (int i = 0; i < kRows; ++i) {
      VIEWAUTH_CHECK(
          t->db.Insert(name, Tuple({Value::Int64(i),
                                    Value::Int64((7 * i + 13 * r) % 1000),
                                    Value::Int64((11 * i) % 1000),
                                    Value::Int64((3 * i) % 1000)}))
              .ok());
    }
  }

  t->catalog = std::make_unique<ViewCatalog>(&t->db.schema());
  auto define = [&t](const std::string& name, const std::string& text,
                     const std::string& user) {
    auto stmt = ParseStatement(text);
    VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
    VIEWAUTH_CHECK(t->catalog->DefineView(std::get<ViewStmt>(*stmt)).ok());
    VIEWAUTH_CHECK(t->catalog->Permit(name, user).ok());
  };
  for (int u = 0; u < kUsers; ++u) {
    const std::string user = UserName(u);
    // The toggle view: churned by the write mix, scope {R0}.
    define(ToggleView(u),
           "view " + ToggleView(u) + " (R0.KEY, R0.A) where R0.A >= " +
               std::to_string(40 + 10 * u),
           user);
    for (int v = 0; v < kViewsPerUser; ++v) {
      for (int r = 0; r < 2; ++r) {
        const std::string rel = "R" + std::to_string(r);
        const std::string name = "V" + std::to_string(u) + "_" +
                                 std::to_string(r) + "_" + std::to_string(v);
        define(name,
               "view " + name + " (" + rel + ".KEY, " + rel + ".A, " + rel +
                   ".B) where " + rel +
                   ".A >= " + std::to_string(30 * v + 5 * u),
               user);
      }
    }
    t->queries.push_back(
        ParseQuery(t->db, "retrieve (R0.KEY, R0.A, R0.B) where R0.A >= " +
                              std::to_string(10 + u)));
  }
  t->toggle_granted.assign(kUsers, true);

  if (with_cache) {
    t->cache = std::make_unique<AuthzCache>();
    t->authorizer =
        std::make_unique<Authorizer>(&t->db, t->catalog.get(), t->cache.get());
  } else {
    t->authorizer = std::make_unique<Authorizer>(&t->db, t->catalog.get());
  }
  return t;
}

struct MixResult {
  int write_permille = 0;  // writes per 1000 operations
  int operations = 0;
  int mutations = 0;
  long long cached_micros = 0;
  long long uncached_micros = 0;
  double speedup = 0;
  AuthzStats stats;  // cached run's counters
};

// Runs the deterministic operation sequence once against `t` and
// returns the wall time of the retrieve stream. Operation i belongs to
// user i % kUsers; every `mutate_every`-th operation (0 = never) first
// toggles that user's churn view grant, then retrieves.
long long RunSequence(Tenancy* t, int operations, int mutate_every,
                      const AuthorizationOptions& options, int* mutations) {
  long long sink = 0;
  long long micros = 0;
  for (int i = 0; i < operations; ++i) {
    const int u = i % kUsers;
    if (mutate_every > 0 && i % mutate_every == mutate_every - 1) {
      const std::string view = ToggleView(u);
      if (t->toggle_granted[u]) {
        VIEWAUTH_CHECK(t->catalog->Deny(view, UserName(u)).ok());
      } else {
        VIEWAUTH_CHECK(t->catalog->Permit(view, UserName(u)).ok());
      }
      t->toggle_granted[u] = !t->toggle_granted[u];
      if (mutations != nullptr) ++*mutations;
    }
    const auto start = Clock::now();
    auto result = t->authorizer->Retrieve(UserName(u), t->queries[u], options);
    micros += std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - start)
                  .count();
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    sink += static_cast<long long>(result->answer.size());
  }
  if (sink < 0) std::cerr << sink;  // keep the loop observable
  return micros;
}

MixResult MeasureMix(int write_permille, int operations) {
  // Both pipelines single-threaded: scheduling noise on a loaded host
  // otherwise swamps the ratio this benchmark reports.
  AuthorizationOptions cached_options;
  cached_options.parallel_meta_evaluation = false;
  AuthorizationOptions uncached_options = cached_options;
  uncached_options.enable_authz_cache = false;
  uncached_options.use_meta_cache = false;

  const int mutate_every =
      write_permille == 0 ? 0 : 1000 / write_permille;

  MixResult result;
  result.write_permille = write_permille;
  result.operations = operations;

  auto cached = MakeTenancy(/*with_cache=*/true);
  // Warm one round so the steady-state stream is measured.
  RunSequence(cached.get(), kUsers, 0, cached_options, nullptr);
  cached->cache->ResetStats();
  result.cached_micros = RunSequence(cached.get(), operations, mutate_every,
                                     cached_options, &result.mutations);
  result.stats = cached->cache->Snapshot();

  auto uncached = MakeTenancy(/*with_cache=*/false);
  RunSequence(uncached.get(), kUsers, 0, uncached_options, nullptr);
  result.uncached_micros = RunSequence(uncached.get(), operations,
                                       mutate_every, uncached_options,
                                       nullptr);

  result.speedup = result.cached_micros > 0
                       ? static_cast<double>(result.uncached_micros) /
                             static_cast<double>(result.cached_micros)
                       : 0;
  return result;
}

void Print(const MixResult& r) {
  std::cout << "write mix " << (r.write_permille / 10.0) << "%: " << r.operations
            << " ops, " << r.mutations << " mutations, cached="
            << r.cached_micros << "us uncached=" << r.uncached_micros
            << "us speedup=" << r.speedup << "x (hits=" << r.stats.mask_hits
            << " misses=" << r.stats.mask_misses << " dropped="
            << r.stats.entries_invalidated << " retained="
            << r.stats.entries_retained << " exact="
            << r.stats.invalidations_exact << " over="
            << r.stats.invalidations_over << ")\n";
}

int RunSmoke() {
  const MixResult r = MeasureMix(/*write_permille=*/100, /*operations=*/1200);
  Print(r);
  if (r.speedup < 2.0) {
    std::cerr << "FAIL: cached run only " << r.speedup
              << "x faster than uncached at 10% writes (>= 2x gate)\n";
    return 1;
  }
  if (r.stats.invalidations_exact == 0 || r.stats.entries_retained == 0) {
    std::cerr << "FAIL: the write mix never exercised selective "
                 "invalidation (exact="
              << r.stats.invalidations_exact
              << " retained=" << r.stats.entries_retained << ")\n";
    return 1;
  }
  return 0;
}

void WriteJson(const std::string& path, const std::vector<MixResult>& mixes) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"selective cache invalidation under write "
         "mixes\",\n"
      << "  \"workload\": {\"users\": " << kUsers << ", \"relations\": 2, "
      << "\"rows\": " << kRows
      << ", \"views_per_user\": " << (2 * kViewsPerUser + 1) << "},\n"
      << "  \"gate\": {\"write_pct\": 10, \"min_speedup\": 2.0},\n"
      << "  \"mixes\": [\n";
  for (size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& r = mixes[i];
    out << "    {\n"
        << "      \"write_pct\": " << (r.write_permille / 10.0) << ",\n"
        << "      \"operations\": " << r.operations << ",\n"
        << "      \"mutations\": " << r.mutations << ",\n"
        << "      \"cached_micros\": " << r.cached_micros << ",\n"
        << "      \"uncached_micros\": " << r.uncached_micros << ",\n"
        << "      \"speedup\": " << r.speedup << ",\n"
        << "      \"mask_hits\": " << r.stats.mask_hits << ",\n"
        << "      \"mask_misses\": " << r.stats.mask_misses << ",\n"
        << "      \"entries_invalidated\": " << r.stats.entries_invalidated
        << ",\n"
        << "      \"entries_retained\": " << r.stats.entries_retained << ",\n"
        << "      \"invalidations_exact\": " << r.stats.invalidations_exact
        << ",\n"
        << "      \"invalidations_over\": " << r.stats.invalidations_over
        << "\n"
        << "    }" << (i + 1 < mixes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

int RunFull(const std::string& path) {
  std::vector<MixResult> mixes;
  for (int write_permille : {0, 10, 100}) {
    mixes.push_back(MeasureMix(write_permille, /*operations=*/2400));
    Print(mixes.back());
  }
  WriteJson(path, mixes);
  const MixResult& hot = mixes.back();  // the 10% mix
  if (hot.speedup < 2.0) {
    std::cerr << "FAIL: cached run only " << hot.speedup
              << "x faster than uncached at 10% writes (>= 2x gate)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return viewauth::RunSmoke();
    }
  }
  return viewauth::RunFull("BENCH_invalidation.json");
}
