// PERF-9: group-commit throughput under concurrent mutators.
//
// W writer threads each push K single-row inserts through one
// DurableEngine whose filesystem charges a realistic fsync latency
// (tmpfs makes fsync nearly free, which would hide exactly the cost
// group commit exists to amortize). Each writer targets its own
// relation so the workload measures commit-path contention, not row
// contention. The identical workload runs twice: once with group
// commit off (every mutation pays its own fsync) and once with the
// leader/follower batch protocol (one append + one fsync per batch).
// The figure of merit is speedup = single_micros / grouped_micros per
// writer count; with one writer the two modes coincide (batch of one),
// and the gap opens as writers pile up behind the leader's fsync.
//
// Modes:
//   bench_groupcommit           writers 1/4/16; writes
//                               BENCH_groupcommit.json (run from the
//                               repo root of a Release build)
//   bench_groupcommit --smoke   16 writers only; exits 1 if group
//                               commit is not at least 2x faster (the
//                               check.sh regression gate)
//   --sync-us N                 injected fsync latency (default 250)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file.h"
#include "common/logging.h"
#include "engine/durable.h"

namespace viewauth {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kInsertsPerWriter = 100;

long long g_sync_us = 250;

// Charges a fixed latency per fsync, modelling a disk whose flush cost
// dominates the commit path the way it does outside tmpfs.
class SyncDelayFileSystem : public FileSystem {
 public:
  explicit SyncDelayFileSystem(FileSystem* base) : base_(base) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                              base_->NewWritableFile(path, mode));
    return std::unique_ptr<WritableFile>(
        std::make_unique<DelayedFile>(std::move(base)));
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status SyncDirectoryOf(const std::string& path) override {
    return base_->SyncDirectoryOf(path);
  }

 private:
  class DelayedFile : public WritableFile {
   public:
    explicit DelayedFile(std::unique_ptr<WritableFile> base)
        : base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      std::this_thread::sleep_for(std::chrono::microseconds(g_sync_us));
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
  };

  FileSystem* base_;
};

struct RunResult {
  long long micros = 0;
  DurableStats stats;
};

// Runs `writers` threads of kInsertsPerWriter inserts each and returns
// the wall time of the mutation phase.
RunResult RunWriters(int writers, bool group_commit) {
  const std::string path = "/tmp/viewauth_bench_groupcommit.log";
  std::remove(path.c_str());
  SyncDelayFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  options.group_commit = group_commit;
  auto durable = DurableEngine::Open(path, options);
  VIEWAUTH_CHECK(durable.ok()) << durable.status().ToString();
  for (int t = 0; t < writers; ++t) {
    auto created =
        (*durable)->Execute("relation W" + std::to_string(t) + " (A int key)");
    VIEWAUTH_CHECK(created.ok()) << created.status().ToString();
  }

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&durable, t] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        auto out = (*durable)
                       ->Execute("insert into W" + std::to_string(t) +
                                 " values (" + std::to_string(i) + ")");
        VIEWAUTH_CHECK(out.ok()) << out.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  result.stats = (*durable)->stats();
  durable->reset();  // close the log before removing it
  std::remove(path.c_str());
  return result;
}

struct Comparison {
  int writers = 0;
  int mutations = 0;
  long long single_micros = 0;
  long long grouped_micros = 0;
  double speedup = 0;
  unsigned long long commit_batches = 0;
  double frames_per_batch = 0;
  unsigned long long fsyncs_saved = 0;
};

Comparison Measure(int writers) {
  Comparison c;
  c.writers = writers;
  c.mutations = writers * kInsertsPerWriter;
  c.single_micros = RunWriters(writers, /*group_commit=*/false).micros;
  const RunResult grouped = RunWriters(writers, /*group_commit=*/true);
  c.grouped_micros = grouped.micros;
  c.speedup = c.grouped_micros > 0
                  ? static_cast<double>(c.single_micros) /
                        static_cast<double>(c.grouped_micros)
                  : 0;
  // The setup DDL also commits in batches; its contribution (one batch
  // per relation, frames_per_batch 1) only dilutes the reported mean.
  c.commit_batches = static_cast<unsigned long long>(grouped.stats.commit_batches);
  c.frames_per_batch =
      grouped.stats.commit_batches > 0
          ? static_cast<double>(grouped.stats.batched_records) /
                static_cast<double>(grouped.stats.commit_batches)
          : 0;
  c.fsyncs_saved = static_cast<unsigned long long>(grouped.stats.fsyncs_saved);
  return c;
}

void Print(const Comparison& c) {
  std::cout << c.writers << " writer(s): " << c.mutations
            << " mutations, per-mutation-fsync=" << c.single_micros
            << "us group-commit=" << c.grouped_micros
            << "us speedup=" << c.speedup << "x (batches="
            << c.commit_batches << ", " << c.frames_per_batch
            << " frames/batch, " << c.fsyncs_saved << " fsyncs saved)\n";
}

int RunSmoke() {
  const Comparison c = Measure(/*writers=*/16);
  Print(c);
  if (c.speedup < 2.0) {
    std::cerr << "FAIL: group commit only " << c.speedup
              << "x faster than per-mutation fsync at 16 writers "
                 "(>= 2x gate)\n";
    return 1;
  }
  if (c.fsyncs_saved == 0) {
    std::cerr << "FAIL: no fsyncs were saved — batching never engaged\n";
    return 1;
  }
  return 0;
}

void WriteJson(const std::string& path,
               const std::vector<Comparison>& rows) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"group-commit throughput vs per-mutation "
         "fsync\",\n"
      << "  \"workload\": {\"inserts_per_writer\": " << kInsertsPerWriter
      << ", \"sync_latency_us\": " << g_sync_us << "},\n"
      << "  \"gate\": {\"writers\": 16, \"min_speedup\": 2.0},\n"
      << "  \"writer_counts\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Comparison& c = rows[i];
    out << "    {\n"
        << "      \"writers\": " << c.writers << ",\n"
        << "      \"mutations\": " << c.mutations << ",\n"
        << "      \"single_micros\": " << c.single_micros << ",\n"
        << "      \"grouped_micros\": " << c.grouped_micros << ",\n"
        << "      \"speedup\": " << c.speedup << ",\n"
        << "      \"commit_batches\": " << c.commit_batches << ",\n"
        << "      \"frames_per_batch\": " << c.frames_per_batch << ",\n"
        << "      \"fsyncs_saved\": " << c.fsyncs_saved << "\n"
        << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

int RunFull(const std::string& path) {
  std::vector<Comparison> rows;
  for (int writers : {1, 4, 16}) {
    rows.push_back(Measure(writers));
    Print(rows.back());
  }
  WriteJson(path, rows);
  const Comparison& wide = rows.back();
  if (wide.speedup < 2.0) {
    std::cerr << "FAIL: group commit only " << wide.speedup
              << "x faster than per-mutation fsync at 16 writers "
                 "(>= 2x gate)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--sync-us") == 0 && i + 1 < argc) {
      viewauth::g_sync_us = std::atoll(argv[i + 1]);
    }
  }
  return smoke ? viewauth::RunSmoke()
               : viewauth::RunFull("BENCH_groupcommit.json");
}
