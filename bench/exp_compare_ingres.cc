// EXP-C2: the introduction's INGRES comparison. Two limitations of query
// modification are reproduced and contrasted with the paper's model:
//   (a) permissions attach to single relations — multi-relation permitted
//       views are inexpressible, so join queries are rejected;
//   (b) rows and columns are asymmetric — a query addressing one
//       attribute beyond the permitted column set is rejected outright
//       instead of being column-reduced.

#include <iostream>

#include "baselines/ingres/query_modification.h"
#include "bench/exp_util.h"
#include "engine/table_printer.h"
#include "parser/parser.h"

using namespace viewauth;
using testing_util::PaperDatabase;

namespace {

RetrieveStmt Retrieve(const char* text) {
  auto stmt = ParseStatement(text);
  VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
  return std::get<RetrieveStmt>(*stmt);
}

}  // namespace

int main() {
  exp::Checker checker("EXP-C2: INGRES query modification asymmetries");
  PaperDatabase fixture;

  // INGRES side: Ann may see NAME and TITLE of employees with salaries
  // under 30k (a single-relation permission, the most INGRES can say).
  ingres::IngresAuthorizer ing(&fixture.db().schema());
  {
    ingres::Permission p;
    p.user = "Ann";
    p.relation = "EMPLOYEE";
    p.columns = {"NAME", "TITLE"};
    Condition c;
    c.lhs = AttributeRef{"EMPLOYEE", 1, "SALARY"};
    c.op = Comparator::kLt;
    c.rhs = ConditionOperand::Const(Value::Int64(30000));
    p.qualification.push_back(c);
    if (!ing.AddPermission(std::move(p)).ok()) return 1;
  }

  // (b) Row/column asymmetry. Within the columns: modified gracefully.
  RetrieveStmt within = Retrieve("retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)");
  auto within_result =
      ing.Retrieve("Ann", within.targets, within.conditions, fixture.db());
  checker.Check("INGRES reduces rows for (NAME, TITLE)",
                within_result.ok() && within_result->size() == 2);
  if (within_result.ok()) {
    std::cout << "[INGRES] (NAME, TITLE):\n"
              << PrintRelation(*within_result) << "\n";
  }
  // One extra column: the whole query dies.
  RetrieveStmt beyond =
      Retrieve("retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)");
  auto beyond_result =
      ing.Retrieve("Ann", beyond.targets, beyond.conditions, fixture.db());
  std::cout << "[INGRES] (NAME, TITLE, SALARY): "
            << beyond_result.status() << "\n";
  checker.Check("INGRES rejects (NAME, TITLE, SALARY) outright",
                beyond_result.status().IsPermissionDenied());

  // The paper expects a model to reduce that request to (NAME, TITLE);
  // the Motro side does exactly that with the equivalent permitted view
  // (NAME and TITLE exposed; SALARY only a selection attribute).
  ViewCatalog catalog(&fixture.db().schema());
  {
    auto narrow = ParseStatement(
        "view CHEAP (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
        "where EMPLOYEE.SALARY < 30000");
    if (!narrow.ok()) return 1;
    if (!catalog.DefineView(std::get<ViewStmt>(*narrow)).ok()) return 1;
    if (!catalog.Permit("CHEAP", "Ann").ok()) return 1;
  }
  Authorizer motro(&fixture.db(), &catalog);
  // The same bare request INGRES rejected: the mask keeps the view's
  // salary restriction as a row filter and withholds the salary column.
  ConjunctiveQuery wide = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)");
  auto reduced = motro.Retrieve("Ann", wide);
  if (!reduced.ok()) {
    std::cerr << reduced.status() << "\n";
    return 1;
  }
  std::cout << "[Motro] (NAME, TITLE, SALARY):\n"
            << PrintRelation(reduced->answer) << "\n";
  bool salary_masked = !reduced->denied && reduced->answer.size() == 2;
  for (const Tuple& row : reduced->answer.rows()) {
    if (!row.at(2).is_null()) salary_masked = false;
  }
  checker.Check("Motro reduces it to (NAME, TITLE) with SALARY masked",
                salary_masked);

  // (a) Multi-relation permissions. INGRES cannot express ELP at all;
  // the same grant in the Motro model authorizes the join query fully
  // (EXP-C1 covers the Motro side; here the INGRES rejection).
  RetrieveStmt join = Retrieve(
      "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER");
  auto join_result =
      ing.Retrieve("Ann", join.targets, join.conditions, fixture.db());
  std::cout << "[INGRES] join query: " << join_result.status() << "\n";
  checker.Check("INGRES rejects multi-relation requests",
                join_result.status().IsPermissionDenied());
  return checker.Finish();
}
