// EXP-R3: self-join inference (Section 4.2, third refinement). The
// paper's schematic example: EMPLOYEE' holds (*,*,_) and (*,_,*) — two
// views of the same relation, both projecting the key. A query selecting
// both TITLE and SALARY matches neither alone, but their lossless join
// (*,*,*) is a permitted subview and must be discovered.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/engine.h"

using namespace viewauth;

int main() {
  exp::Checker checker("EXP-R3: self-join inference (Section 4.2)");
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)

    view NAMES_TITLES (EMPLOYEE.NAME, EMPLOYEE.TITLE)
    view NAMES_SALARIES (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    permit NAMES_TITLES to clerk
    permit NAMES_SALARIES to clerk
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  engine.SetSessionUser("clerk");

  const char* query = "retrieve (EMPLOYEE.TITLE, EMPLOYEE.SALARY)";

  auto has_full_pair = [&engine]() {
    for (const Tuple& row : engine.last_result()->answer.rows()) {
      if (!row.at(0).is_null() && !row.at(1).is_null()) return true;
    }
    return false;
  };

  auto joined = engine.Execute(query);
  checker.Check("with self-joins: granted",
                joined.ok() && !engine.last_result()->denied);
  if (joined.ok()) {
    std::cout << "with self-joins:\n" << *joined << "\n";
    checker.Check("with self-joins: TITLE-SALARY pairs visible",
                  has_full_pair());
    checker.Check("with self-joins: full access",
                  engine.last_result()->full_access);
  }

  // Without the refinement the two views deliver their columns as
  // separate portions: no row ever pairs a title with a salary, because
  // the association is only derivable through the key join.
  engine.options().self_joins = false;
  auto separate = engine.Execute(query);
  checker.Check("without self-joins: still granted (portions)",
                separate.ok() && !engine.last_result()->denied);
  if (separate.ok()) {
    std::cout << "without self-joins:\n" << *separate << "\n";
    checker.Check("without self-joins: association hidden",
                  !has_full_pair());
  }

  // Losslessness guard: without a declared key, the join is not inferred
  // even with the refinement enabled.
  Engine keyless;
  auto setup2 = keyless.ExecuteScript(R"(
    relation EMPLOYEE (NAME string, TITLE string, SALARY int)
    insert into EMPLOYEE values (Jones, manager, 26000)
    view NAMES_TITLES (EMPLOYEE.NAME, EMPLOYEE.TITLE)
    view NAMES_SALARIES (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    permit NAMES_TITLES to clerk
    permit NAMES_SALARIES to clerk
  )");
  if (!setup2.ok()) {
    std::cerr << setup2.status() << "\n";
    return 1;
  }
  keyless.SetSessionUser("clerk");
  auto no_key = keyless.Execute(query);
  bool keyless_pair = false;
  for (const Tuple& row : keyless.last_result()->answer.rows()) {
    if (!row.at(0).is_null() && !row.at(1).is_null()) keyless_pair = true;
  }
  checker.Check("keyless relation: join not inferred, association hidden",
                no_key.ok() && !keyless_pair);
  return checker.Finish();
}
