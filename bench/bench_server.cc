// PERF-10: wire-server throughput and tail latency under hundreds of
// concurrent client connections.
//
// C client connections (each its own thread, the scale the
// thread-per-connection server must absorb) hammer one in-process
// Server over TCP loopback with cheap authorized retrieves, through the
// RetryingClient the wire library ships: the engine is configured with
// a small admission slot count and queue, so under load a fraction of
// requests shed with structured Unavailable replies and the client
// retries them with capped exponential backoff. The figures of merit
// are end-to-end client-observed latency (p50/p95/p99, retries
// included), sustained throughput, and the ok/shed split — with the
// invariant that NOT ONE connection sees a protocol error or an
// unrecovered failure while being shed.
//
// Modes:
//   bench_server           connections 50/200/400; writes
//                          BENCH_server.json (run from the repo root of
//                          a Release build)
//   bench_server --smoke   200 connections only; exits 1 if throughput
//                          falls below the floor, any protocol error is
//                          counted, or any request ultimately fails
//                          (the check.sh regression gate)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "server/client.h"
#include "server/server.h"

namespace viewauth {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRequestsPerConnection = 20;
constexpr double kSmokeMinThroughput = 500.0;  // requests/s, deliberately lax

const char* kSeedScript = R"(
  relation EMPLOYEE (NAME string key, DEPT string, SALARY int)
  view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
  permit SAE to Brown
)";

struct RunResult {
  int connections = 0;
  long long requests = 0;
  long long failed = 0;  // requests that never succeeded despite retries
  long long retries = 0;
  long long reconnects = 0;
  long long wall_micros = 0;
  double throughput_rps = 0;
  long long p50_us = 0;
  long long p95_us = 0;
  long long p99_us = 0;
  ServerStats server;
};

long long Percentile(const std::vector<long long>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

RunResult RunLoad(int connections) {
  Engine engine;
  {
    auto seeded = engine.ExecuteScript(kSeedScript);
    VIEWAUTH_CHECK(seeded.ok()) << seeded.status().ToString();
    for (int i = 0; i < 64; ++i) {
      auto inserted = engine.Execute("insert into EMPLOYEE values (emp" +
                                     std::to_string(i) + ", sales, " +
                                     std::to_string(20000 + i) + ")");
      VIEWAUTH_CHECK(inserted.ok()) << inserted.status().ToString();
    }
  }
  // A deliberately small admission envelope: with hundreds of
  // connections the slots saturate and the shed/retry path carries real
  // traffic — that path is what this bench certifies.
  engine.options().max_concurrent = 8;
  engine.options().admission_queue = 32;
  engine.options().admission_timeout_ms = 100;

  ServerOptions options;
  options.max_connections = connections + 32;
  Server server(&engine, options);
  {
    auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
    VIEWAUTH_CHECK(listener.ok()) << listener.status().ToString();
    VIEWAUTH_CHECK(server.Start(std::move(*listener)).ok());
  }
  const int port = server.port();

  std::vector<std::vector<long long>> latencies(
      static_cast<size_t>(connections));
  std::atomic<long long> failed{0};
  std::atomic<long long> retries{0};
  std::atomic<long long> reconnects{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      RetryPolicy policy;
      policy.max_attempts = 12;
      policy.base_backoff_ms = 2;
      policy.max_backoff_ms = 200;
      RetryingClient client(
          [port] { return Client::ConnectTcp("127.0.0.1", port, "Brown"); },
          policy);
      latencies[static_cast<size_t>(c)].reserve(kRequestsPerConnection);
      for (int i = 0; i < kRequestsPerConnection; ++i) {
        const std::string query =
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) where "
            "EMPLOYEE.SALARY = " +
            std::to_string(20000 + (c + i) % 64);
        const auto request_start = Clock::now();
        auto out = client.Execute(query);
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - request_start)
                .count();
        if (out.ok()) {
          latencies[static_cast<size_t>(c)].push_back(micros);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      retries.fetch_add(client.retries(), std::memory_order_relaxed);
      reconnects.fetch_add(client.reconnects(), std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  const long long wall_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count();

  RunResult result;
  result.connections = connections;
  result.requests =
      static_cast<long long>(connections) * kRequestsPerConnection;
  result.failed = failed.load();
  result.retries = retries.load();
  result.reconnects = reconnects.load();
  result.wall_micros = wall_micros;
  result.throughput_rps =
      wall_micros > 0 ? static_cast<double>(result.requests - result.failed) *
                            1e6 / static_cast<double>(wall_micros)
                      : 0;
  std::vector<long long> all;
  for (const auto& per_connection : latencies) {
    all.insert(all.end(), per_connection.begin(), per_connection.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_us = Percentile(all, 0.50);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  result.server = server.stats();
  server.Stop();
  return result;
}

void Print(const RunResult& r) {
  std::cout << r.connections << " connection(s): " << r.requests
            << " requests, " << r.server.requests_ok << " ok, "
            << r.server.requests_shed << " shed, " << r.retries
            << " retries, " << r.failed << " failed, "
            << r.throughput_rps << " req/s, p50=" << r.p50_us
            << "us p95=" << r.p95_us << "us p99=" << r.p99_us
            << "us (protocol errors: " << r.server.protocol_errors << ")\n";
}

// The gate shared by smoke and full runs: every request eventually
// succeeded, nothing on the wire was malformed, and throughput held the
// floor.
int Gate(const RunResult& r) {
  int failures = 0;
  if (r.failed > 0) {
    std::cerr << "FAIL: " << r.failed
              << " request(s) never succeeded despite retries\n";
    ++failures;
  }
  if (r.server.protocol_errors > 0) {
    std::cerr << "FAIL: " << r.server.protocol_errors
              << " protocol error(s) between well-behaved peers\n";
    ++failures;
  }
  if (r.throughput_rps < kSmokeMinThroughput) {
    std::cerr << "FAIL: " << r.throughput_rps << " req/s is below the "
              << kSmokeMinThroughput << " req/s floor\n";
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& rows) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"wire-server throughput and tail latency "
         "under concurrent connections\",\n"
      << "  \"workload\": {\"requests_per_connection\": "
      << kRequestsPerConnection
      << ", \"max_concurrent\": 8, \"admission_queue\": 32},\n"
      << "  \"gate\": {\"connections\": 200, \"min_throughput_rps\": "
      << kSmokeMinThroughput << ", \"max_protocol_errors\": 0},\n"
      << "  \"connection_counts\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    out << "    {\n"
        << "      \"connections\": " << r.connections << ",\n"
        << "      \"requests\": " << r.requests << ",\n"
        << "      \"ok\": " << r.server.requests_ok << ",\n"
        << "      \"shed\": " << r.server.requests_shed << ",\n"
        << "      \"retries\": " << r.retries << ",\n"
        << "      \"reconnects\": " << r.reconnects << ",\n"
        << "      \"failed\": " << r.failed << ",\n"
        << "      \"protocol_errors\": " << r.server.protocol_errors << ",\n"
        << "      \"wall_micros\": " << r.wall_micros << ",\n"
        << "      \"throughput_rps\": " << r.throughput_rps << ",\n"
        << "      \"p50_us\": " << r.p50_us << ",\n"
        << "      \"p95_us\": " << r.p95_us << ",\n"
        << "      \"p99_us\": " << r.p99_us << "\n"
        << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

int RunSmoke() {
  const RunResult r = RunLoad(/*connections=*/200);
  Print(r);
  return Gate(r);
}

int RunFull(const std::string& path) {
  std::vector<RunResult> rows;
  for (int connections : {50, 200, 400}) {
    rows.push_back(RunLoad(connections));
    Print(rows.back());
  }
  WriteJson(path, rows);
  return Gate(rows[1]);  // the 200-connection row is the gated one
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return smoke ? viewauth::RunSmoke()
               : viewauth::RunFull("BENCH_server.json");
}
