// PERF-7: the vectorized columnar data plan. Times the three optimized
// evaluation strategies — tuple-at-a-time (pushdown + hash join),
// late-materialized (row-index intermediates), and vectorized (columnar
// batches + kernel selection) — on selective full scans where no index
// applies, across row counts up to 128K, single-threaded, and writes
// BENCH_vectorized.json. Also reports the end-to-end authorized
// retrieve (mask derivation + data plan + fused batch mask apply) and
// the per-batch governance overhead of the vectorized plan.
//
// Modes:
//   bench_vectorized          full matrix + report (run from the repo
//                             root of a Release build; writes
//                             BENCH_vectorized.json)
//   bench_vectorized --smoke  reference workload only; exits 1 if the
//                             vectorized plan is not at least 2x faster
//                             than the late-materialized plan at 128K
//                             rows (the check.sh regression gate)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "algebra/evaluator.h"
#include "algebra/latemat.h"
#include "algebra/optimizer.h"
#include "algebra/vectorized.h"
#include "bench/bench_util.h"
#include "common/exec_context.h"

namespace viewauth {
namespace {

using bench_util::Workload;
using Clock = std::chrono::steady_clock;

// Like bench_util::MakeWorkload, but the relations declare no primary
// key: Relation::Insert's key check is O(rows), which makes building a
// 128K-row keyed workload quadratic. KEY values are unique anyway, so
// the workload is identical for the scans measured here.
std::unique_ptr<Workload> MakeScanWorkload(int relations, int rows,
                                           int views_per_relation) {
  auto w = std::make_unique<Workload>();
  std::mt19937 rng(42);
  std::uniform_int_distribution<int64_t> val(0, 999);

  for (int r = 0; r < relations; ++r) {
    std::string name = "R" + std::to_string(r);
    auto schema = RelationSchema::Make(name, {{"KEY", ValueType::kInt64},
                                              {"A", ValueType::kInt64},
                                              {"B", ValueType::kInt64},
                                              {"C", ValueType::kInt64}});
    VIEWAUTH_CHECK(schema.ok());
    VIEWAUTH_CHECK(w->db.CreateRelation(std::move(*schema)).ok());
    for (int i = 0; i < rows; ++i) {
      VIEWAUTH_CHECK(w->db.Insert(name, Tuple({Value::Int64(i),
                                               Value::Int64(val(rng)),
                                               Value::Int64(val(rng)),
                                               Value::Int64(val(rng))}))
                         .ok());
    }
  }

  w->catalog = std::make_unique<ViewCatalog>(&w->db.schema());
  for (int r = 0; r < relations; ++r) {
    std::string rel = "R" + std::to_string(r);
    for (int v = 0; v < views_per_relation; ++v) {
      int64_t lo = 50 * v;
      std::string name = "V" + std::to_string(r) + "_" + std::to_string(v);
      std::string text = "view " + name + " (" + rel + ".KEY, " + rel +
                         ".A, " + rel + ".B) where " + rel +
                         ".A >= " + std::to_string(lo);
      auto stmt = ParseStatement(text);
      VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
      VIEWAUTH_CHECK(w->catalog->DefineView(std::get<ViewStmt>(*stmt)).ok());
      VIEWAUTH_CHECK(w->catalog->Permit(name, "u").ok());
    }
  }
  w->authorizer =
      std::make_unique<Authorizer>(&w->db, w->catalog.get(), &w->cache);
  return w;
}

// A selective (~0.1%) column-vs-column predicate: never index-served,
// so every strategy scans all rows and the per-row evaluation cost is
// the whole story.
constexpr const char* kScanQuery =
    "retrieve (R0.KEY, R0.A) where R0.A = R0.B";

// 128K rows: comfortably past the 10^5-row scale where batch effects
// dominate constant overheads.
constexpr int kReferenceRows = 131072;

struct Timing {
  long long total_micros = 0;
  double per_iter_micros = 0;
  EvalStats stats;  // from the final iteration
};

enum class Strategy { kOptimized, kLateMat, kVectorized };

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kOptimized:
      return "optimized";
    case Strategy::kLateMat:
      return "latemat";
    case Strategy::kVectorized:
      return "vectorized";
  }
  return "?";
}

Result<Relation> RunOnce(Strategy s, const ConjunctiveQuery& query,
                         const DatabaseInstance& db, EvalStats* stats,
                         ExecContext* ctx = nullptr) {
  switch (s) {
    case Strategy::kOptimized:
      return EvaluateOptimized(query, db, "ANSWER", stats, ctx);
    case Strategy::kLateMat:
      return EvaluateLateMaterialized(query, db, "ANSWER", stats, ctx);
    case Strategy::kVectorized:
      return EvaluateVectorized(query, db, "ANSWER", stats, ctx);
  }
  return Status::InvalidArgument("unknown strategy");
}

// Times one block of `iterations` runs, in nanoseconds. `stats_out`
// receives the final iteration's counters; `sink` accumulates result
// sizes so the loop cannot be elided.
long long TimedBlock(Strategy s, const ConjunctiveQuery& query,
                     const DatabaseInstance& db, int iterations,
                     bool governed, EvalStats* stats_out, long long* sink) {
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    EvalStats stats;
    auto result = [&]() -> Result<Relation> {
      if (!governed) return RunOnce(s, query, db, &stats);
      // A generous deadline: never trips, but the plan runs fully
      // governed (per-batch ticks + amortized wall-clock probes).
      ExecContext ctx(ExecLimits{/*deadline_ms=*/600000, /*max_rows=*/0,
                                 /*max_bytes=*/0});
      return RunOnce(s, query, db, &stats, &ctx);
    }();
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    *sink += result->size();
    if (i + 1 == iterations) *stats_out = stats;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

// Best of several repeats: the minimum total is the least-perturbed
// run, which keeps the reported deltas out of scheduler/timer noise.
constexpr int kRepeats = 7;

Timing Measure(Strategy s, const ConjunctiveQuery& query,
               const DatabaseInstance& db, int iterations,
               bool governed = false) {
  Timing t;
  // Warmup: populates any lazy indexes so every strategy is measured
  // against warm storage.
  {
    EvalStats warm;
    auto result = RunOnce(s, query, db, &warm);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
  }
  long long sink = 0;
  long long best_nanos = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const long long total =
        TimedBlock(s, query, db, iterations, governed, &t.stats, &sink);
    if (rep == 0 || total < best_nanos) best_nanos = total;
  }
  t.total_micros = best_nanos / 1000;
  t.per_iter_micros =
      iterations > 0 ? static_cast<double>(t.total_micros) / iterations : 0;
  if (sink < 0) std::cerr << sink;
  return t;
}

// Measures the ungoverned and governed vectorized plan by alternating
// single iterations and keeping each side's fastest, so a CPU frequency
// or load shift perturbs both sides equally instead of skewing the
// few-percent governance-overhead delta; the per-side floor over
// thousands of interleaved samples is the steady-state cost. Returns
// {ungoverned, governed} with totals scaled to `iterations`.
std::pair<Timing, Timing> MeasureGovernedPair(const ConjunctiveQuery& query,
                                              const DatabaseInstance& db,
                                              int iterations) {
  Timing plain;
  Timing governed;
  {
    EvalStats warm;
    auto result = RunOnce(Strategy::kVectorized, query, db, &warm);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
  }
  long long sink = 0;
  long long min_plain = 0;
  long long min_governed = 0;
  for (int i = 0; i < kRepeats * iterations; ++i) {
    const long long p =
        TimedBlock(Strategy::kVectorized, query, db, /*iterations=*/1,
                   /*governed=*/false, &plain.stats, &sink);
    const long long g =
        TimedBlock(Strategy::kVectorized, query, db, /*iterations=*/1,
                   /*governed=*/true, &governed.stats, &sink);
    if (i == 0 || p < min_plain) min_plain = p;
    if (i == 0 || g < min_governed) min_governed = g;
  }
  plain.total_micros = min_plain * iterations / 1000;
  governed.total_micros = min_governed * iterations / 1000;
  plain.per_iter_micros = static_cast<double>(min_plain) / 1000.0;
  governed.per_iter_micros = static_cast<double>(min_governed) / 1000.0;
  if (sink < 0) std::cerr << sink;
  return {plain, governed};
}

// End-to-end authorized retrieve through a warmed cache, so the delta
// between the two timings is the data plan plus the mask-apply path.
long long MeasureRetrieve(Workload& w, const ConjunctiveQuery& query,
                          const AuthorizationOptions& options,
                          int iterations) {
  {
    auto warm = w.authorizer->Retrieve("u", query, options);
    VIEWAUTH_CHECK(warm.ok()) << warm.status().ToString();
  }
  long long sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto result = w.authorizer->Retrieve("u", query, options);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    sink += result->answer.size();
  }
  const long long micros =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count();
  if (sink < 0) std::cerr << sink;
  return micros;
}

struct MatrixRow {
  int rows;
  Strategy strategy;
  int iterations;
  Timing timing;
};

void AppendStats(std::ostream& out, const EvalStats& s) {
  out << "\"rows_scanned\": " << s.rows_scanned
      << ", \"output_rows\": " << s.output_rows
      << ", \"tuples_materialized\": " << s.tuples_materialized
      << ", \"batches_evaluated\": " << s.batches_evaluated;
}

int RunSmoke() {
  // The regression gate: at the reference 128K-row selective scan the
  // vectorized plan must be at least 2x faster than late-materialized.
  auto w = MakeScanWorkload(/*relations=*/1, kReferenceRows,
                            /*views_per_relation=*/1);
  ConjunctiveQuery query = w->Query(kScanQuery);
  constexpr int kIterations = 50;
  const Timing latemat =
      Measure(Strategy::kLateMat, query, w->db, kIterations);
  const Timing vectorized =
      Measure(Strategy::kVectorized, query, w->db, kIterations);
  const double speedup =
      vectorized.total_micros > 0
          ? static_cast<double>(latemat.total_micros) /
                vectorized.total_micros
          : 0.0;
  std::cout << "smoke: latemat=" << latemat.per_iter_micros
            << "us/iter vectorized=" << vectorized.per_iter_micros
            << "us/iter speedup=" << speedup << "x\n";
  if (speedup < 2.0) {
    std::cerr << "FAIL: vectorized plan below the 2x gate vs "
                 "late-materialized at "
              << kReferenceRows << " rows (" << speedup << "x < 2.0x)\n";
    return 1;
  }
  return 0;
}

int RunFull(const std::string& path) {
  std::vector<MatrixRow> matrix;
  for (int rows : {4096, 32768, kReferenceRows}) {
    auto w = MakeScanWorkload(/*relations=*/1, rows,
                              /*views_per_relation=*/1);
    ConjunctiveQuery query = w->Query(kScanQuery);
    const int iterations = rows >= kReferenceRows ? 50 : 400;
    for (Strategy s : {Strategy::kOptimized, Strategy::kLateMat,
                       Strategy::kVectorized}) {
      MatrixRow row{rows, s, iterations,
                    Measure(s, query, w->db, iterations)};
      std::cout << "  rows=" << rows << " " << StrategyName(s) << ": "
                << row.timing.per_iter_micros << "us/iter\n";
      matrix.push_back(row);
    }
  }

  // Reference numbers for the acceptance criterion, plus the governance
  // overhead of per-batch ticking and the end-to-end retrieve.
  auto w = MakeScanWorkload(/*relations=*/1, kReferenceRows,
                            /*views_per_relation=*/1);
  ConjunctiveQuery query = w->Query(kScanQuery);
  // The governed-vs-ungoverned delta is a few microseconds per
  // iteration; hundreds of iterations keep it above timer noise.
  constexpr int kRefIterations = 400;
  const Timing latemat =
      Measure(Strategy::kLateMat, query, w->db, kRefIterations);
  const Timing vectorized =
      Measure(Strategy::kVectorized, query, w->db, kRefIterations);
  // The governed-overhead ratio compares the interleaved pair's floors
  // against each other only — block timings and floors are different
  // estimators and must not be mixed across a ratio.
  const auto [floor_plain, governed] =
      MeasureGovernedPair(query, w->db, kRefIterations);
  const double speedup =
      vectorized.total_micros > 0
          ? static_cast<double>(latemat.total_micros) /
                vectorized.total_micros
          : 0.0;
  const double governed_overhead =
      floor_plain.total_micros > 0
          ? static_cast<double>(governed.total_micros) /
                    floor_plain.total_micros -
                1.0
          : 0.0;

  AuthorizationOptions latemat_options;
  latemat_options.use_vectorized_data_plan = false;
  latemat_options.parallel_meta_evaluation = false;
  AuthorizationOptions vectorized_options;
  vectorized_options.parallel_meta_evaluation = false;
  constexpr int kRetrieveIterations = 100;
  const long long retrieve_latemat =
      MeasureRetrieve(*w, query, latemat_options, kRetrieveIterations);
  const long long retrieve_vectorized =
      MeasureRetrieve(*w, query, vectorized_options, kRetrieveIterations);
  const double retrieve_speedup =
      retrieve_vectorized > 0
          ? static_cast<double>(retrieve_latemat) / retrieve_vectorized
          : 0.0;

  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"vectorized columnar data plan\",\n"
      << "  \"single_threaded\": true,\n"
      << "  \"reference\": {\n"
      << "    \"workload\": {\"relations\": 1, \"rows\": " << kReferenceRows
      << ", \"views_per_relation\": 1},\n"
      << "    \"query\": \"" << kScanQuery << "\",\n"
      << "    \"iterations\": " << kRefIterations << ",\n"
      << "    \"latemat_total_micros\": " << latemat.total_micros << ",\n"
      << "    \"vectorized_total_micros\": " << vectorized.total_micros
      << ",\n"
      << "    \"vectorized_speedup_vs_latemat\": " << speedup << ",\n"
      << "    \"ungoverned_floor_total_micros\": "
      << floor_plain.total_micros << ",\n"
      << "    \"governed_floor_total_micros\": " << governed.total_micros
      << ",\n"
      << "    \"governed_overhead\": " << governed_overhead << ",\n"
      << "    \"retrieve_latemat_total_micros\": " << retrieve_latemat
      << ",\n"
      << "    \"retrieve_vectorized_total_micros\": " << retrieve_vectorized
      << ",\n"
      << "    \"retrieve_speedup\": " << retrieve_speedup << ",\n"
      << "    \"latemat_stats\": {";
  AppendStats(out, latemat.stats);
  out << "},\n"
      << "    \"vectorized_stats\": {";
  AppendStats(out, vectorized.stats);
  out << "}\n"
      << "  },\n"
      << "  \"matrix\": [\n";
  for (size_t i = 0; i < matrix.size(); ++i) {
    const MatrixRow& row = matrix[i];
    out << "    {\"rows\": " << row.rows << ", \"strategy\": \""
        << StrategyName(row.strategy)
        << "\", \"iterations\": " << row.iterations
        << ", \"total_micros\": " << row.timing.total_micros
        << ", \"per_iter_micros\": " << row.timing.per_iter_micros << ", ";
    AppendStats(out, row.timing.stats);
    out << "}" << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::cout << "wrote " << path << ": reference speedup=" << speedup
            << "x (vectorized vs latemat, " << kReferenceRows
            << " rows), governed overhead=" << governed_overhead * 100
            << "%, retrieve speedup=" << retrieve_speedup << "x\n";
  return 0;
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return viewauth::RunSmoke();
    }
  }
  return viewauth::RunFull("BENCH_vectorized.json");
}
