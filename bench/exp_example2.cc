// EXP-EX2: the paper's Example 2. Klein retrieves names and salaries of
// engineers on very large projects. The reproduction checks the
// intermediate product stage (only the fully-combined ELP tuple survives
// the dangling-reference pruning), the final mask (NAME projected,
// SALARY withheld), the masked delivery, and the inferred statement
//   permit (NAME).

#include <iostream>

#include "bench/exp_util.h"
#include "engine/table_printer.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker("EXP-EX2: Example 2 (Klein, engineer salaries)");
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");
  auto namer = [&fixture](VarId v) { return fixture.catalog().VarName(v); };

  // The unpruned product (paper's 10-row intermediate table): derive it
  // once with pruning disabled to show what the pruning removes.
  AuthorizationOptions unpruned_options;
  unpruned_options.prune_dangling = false;
  MetaRelation unpruned;
  auto unpruned_mask =
      authorizer.DeriveMask("Klein", query, unpruned_options, &unpruned);
  if (!unpruned_mask.ok()) {
    std::cerr << unpruned_mask.status() << "\n";
    return 1;
  }
  std::cout << "Product of the meta-relations before pruning ("
            << unpruned.size() << " combined tuples, paper shows 10 plus "
            << "padded fragments):\n"
            << unpruned.ToString(namer) << "\n";

  MetaRelation pruned;
  auto mask = authorizer.DeriveMask("Klein", query, AuthorizationOptions{},
                                    &pruned);
  if (!mask.ok()) {
    std::cerr << mask.status() << "\n";
    return 1;
  }
  std::cout << "After dangling-reference pruning (" << pruned.size()
            << " tuples):\n"
            << pruned.ToString(namer) << "\n";
  std::cout << "Final mask A':\n" << mask->ToString(namer) << "\n";

  auto result = authorizer.Retrieve("Klein", query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  TablePrintOptions opts;
  opts.caption = "Delivered:";
  std::cout << PrintRelation(result->answer, opts);
  for (const InferredPermit& permit : result->permits) {
    std::cout << permit.ToString() << "\n";
  }
  std::cout << "\n";

  // Checks against the paper.
  checker.Check("pruning removed combinations",
                pruned.size() < unpruned.size());
  int dangling_before = 0;
  for (const MetaTuple& t : unpruned.tuples()) {
    if (t.HasDanglingVariable()) ++dangling_before;
  }
  checker.Check("unpruned product contains dangling tuples",
                dangling_before > 0);
  for (const MetaTuple& t : pruned.tuples()) {
    if (t.HasDanglingVariable()) {
      checker.Check("pruned product has no dangling tuples", false);
    }
  }
  checker.CheckEq("final mask has one tuple", result->mask.size(), 1);
  if (result->mask.size() == 1) {
    const MetaTuple& m = result->mask.tuples()[0];
    checker.Check("NAME is permitted (*)",
                  m.cells()[0].is_blank() && m.cells()[0].projected);
    checker.Check("SALARY is withheld (blank)",
                  m.cells()[1].is_blank() && !m.cells()[1].projected);
    checker.CheckEq("mask carries no residual comparison",
                    m.constraints().atom_count(), 0);
  }
  checker.CheckEq("delivered rows", result->answer.size(), 1);
  checker.Check("Brown's salary is masked",
                result->answer.Contains(Tuple({Value::String("Brown"),
                                               Value::Null()})));
  checker.CheckEq("inferred permit count", result->permits.size(), 1u);
  if (!result->permits.empty()) {
    checker.CheckEq("inferred permit text", result->permits[0].ToString(),
                    std::string("permit (NAME)"));
  }
  return checker.Finish();
}
