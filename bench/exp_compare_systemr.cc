// EXP-C1: the introduction's System R comparison. A view V over
// relations A and B is granted; queries addressing the underlying
// relations are rejected outright by System R ("V is not only a
// statement of the permissions, but the actual access window"), while
// the paper's model infers the permitted subview and delivers it.

#include <iostream>

#include "baselines/systemr/grant_table.h"
#include "bench/exp_util.h"
#include "engine/table_printer.h"
#include "parser/parser.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker("EXP-C1: System R access windows vs inferred masks");
  PaperDatabase fixture;

  // View: employees of large projects (the paper's ELP), granted to Klein
  // in both systems.
  ConjunctiveQuery elp = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
      "PROJECT.BUDGET) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
      "and PROJECT.BUDGET >= 250000");

  systemr::SystemRAuthorizer sysr(&fixture.db().schema());
  for (const char* table : {"EMPLOYEE", "PROJECT", "ASSIGNMENT"}) {
    if (!sysr.RegisterTable(table, "dba").ok()) return 1;
  }
  if (!sysr.RegisterView("ELP", "dba", elp).ok()) return 1;
  if (!sysr.Grant("dba", "Klein", "ELP", systemr::Privilege::kRead, false)
           .ok()) {
    return 1;
  }

  // Klein's query addresses the underlying relations and is entirely
  // within ELP's permissions (names on projects over 400k).
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 400000");

  Status sysr_verdict = sysr.CheckQuery("Klein", query);
  std::cout << "[System R] " << sysr_verdict << "\n";
  checker.Check("System R rejects the within-permission query",
                sysr_verdict.IsPermissionDenied());
  checker.Check("System R allows opening the view by name",
                sysr.OpenView("Klein", "ELP").ok());

  Authorizer motro = fixture.MakeAuthorizer();
  auto result = motro.Retrieve("Klein", query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "[Motro]    delivered " << result->answer.size()
            << " rows, full access: " << std::boolalpha
            << result->full_access << "\n";
  TablePrintOptions opts;
  std::cout << PrintRelation(result->answer, opts) << "\n";
  checker.Check("Motro model grants the same query",
                !result->denied && result->full_access);
  checker.CheckEq("Motro delivers the sv-72 team", result->answer.size(),
                  2);

  // The flip side: a query exceeding the permission is all-or-nothing in
  // System R terms but reduced to the permitted portion here.
  ConjunctiveQuery wide = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 400000");
  checker.Check("System R also rejects the over-reaching query",
                sysr.CheckQuery("Klein", wide).IsPermissionDenied());
  auto reduced = motro.Retrieve("Klein", wide);
  if (!reduced.ok()) {
    std::cerr << reduced.status() << "\n";
    return 1;
  }
  bool names_only = reduced->answer.size() > 0;
  for (const Tuple& row : reduced->answer.rows()) {
    if (row.at(0).is_null() || !row.at(1).is_null()) names_only = false;
  }
  checker.Check("Motro model reduces it to names", names_only);
  return checker.Finish();
}
