// Synthetic workload builders shared by the performance benchmarks.

#ifndef VIEWAUTH_BENCH_BENCH_UTIL_H_
#define VIEWAUTH_BENCH_BENCH_UTIL_H_

#include <memory>
#include <random>
#include <string>

#include "authz/authorizer.h"
#include "calculus/conjunctive_query.h"
#include "common/logging.h"
#include "meta/view_store.h"
#include "parser/parser.h"
#include "storage/relation.h"

namespace viewauth {
namespace bench_util {

// A synthetic workload: relations R0..R{k-1}(KEY int key, A, B, C int)
// with `rows` tuples each, plus `views_per_relation` permitted range
// views per relation and one two-relation join view per adjacent pair,
// all granted to user "u".
struct Workload {
  DatabaseInstance db;
  std::unique_ptr<ViewCatalog> catalog;
  AuthzCache cache;
  std::unique_ptr<Authorizer> authorizer;

  ConjunctiveQuery Query(const std::string& text) const {
    auto stmt = ParseStatement(text);
    VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
    auto query = ConjunctiveQuery::FromRetrieve(
        db.schema(), std::get<RetrieveStmt>(*stmt));
    VIEWAUTH_CHECK(query.ok()) << query.status().ToString();
    return std::move(query).value();
  }
};

inline std::unique_ptr<Workload> MakeWorkload(int relations, int rows,
                                              int views_per_relation,
                                              bool join_views = false,
                                              unsigned seed = 42) {
  auto w = std::make_unique<Workload>();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, 999);

  for (int r = 0; r < relations; ++r) {
    std::string name = "R" + std::to_string(r);
    auto schema = RelationSchema::Make(name,
                                       {{"KEY", ValueType::kInt64},
                                        {"A", ValueType::kInt64},
                                        {"B", ValueType::kInt64},
                                        {"C", ValueType::kInt64}},
                                       {0});
    VIEWAUTH_CHECK(schema.ok());
    VIEWAUTH_CHECK(w->db.CreateRelation(std::move(*schema)).ok());
    for (int i = 0; i < rows; ++i) {
      VIEWAUTH_CHECK(w->db.Insert(name, Tuple({Value::Int64(i),
                                               Value::Int64(val(rng)),
                                               Value::Int64(val(rng)),
                                               Value::Int64(val(rng))}))
                         .ok());
    }
  }

  w->catalog = std::make_unique<ViewCatalog>(&w->db.schema());
  auto define = [&w](const std::string& name, const std::string& text) {
    auto stmt = ParseStatement(text);
    VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
    VIEWAUTH_CHECK(w->catalog->DefineView(std::get<ViewStmt>(*stmt)).ok());
    VIEWAUTH_CHECK(w->catalog->Permit(name, "u").ok());
  };

  for (int r = 0; r < relations; ++r) {
    std::string rel = "R" + std::to_string(r);
    for (int v = 0; v < views_per_relation; ++v) {
      // Staggered ranges over A so that masks differ per view.
      int64_t lo = 50 * v;
      std::string name = "V" + std::to_string(r) + "_" + std::to_string(v);
      define(name, "view " + name + " (" + rel + ".KEY, " + rel + ".A, " +
                       rel + ".B) where " + rel +
                       ".A >= " + std::to_string(lo));
    }
    if (join_views && r + 1 < relations) {
      std::string next = "R" + std::to_string(r + 1);
      std::string name = "J" + std::to_string(r);
      define(name, "view " + name + " (" + rel + ".KEY, " + rel + ".A, " +
                       next + ".B) where " + rel + ".KEY = " + next +
                       ".KEY and " + rel + ".A >= 100");
    }
  }

  w->authorizer =
      std::make_unique<Authorizer>(&w->db, w->catalog.get(), &w->cache);
  return w;
}

}  // namespace bench_util
}  // namespace viewauth

#endif  // VIEWAUTH_BENCH_BENCH_UTIL_H_
