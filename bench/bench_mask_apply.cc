// PERF-4: mask application cost versus answer size, and the cost of the
// self-join precomputation the paper suggests caching "with the original
// view definitions".

#include <benchmark/benchmark.h>

#include "algebra/optimizer.h"
#include "bench/bench_util.h"
#include "meta/self_join.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;

void BM_ApplyMask(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/1,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/3);
  ConjunctiveQuery query = w->Query("retrieve (R0.KEY, R0.A, R0.C)");
  auto mask = w->authorizer->DeriveMask("u", query);
  VIEWAUTH_CHECK(mask.ok());
  auto answer = EvaluateOptimized(query, w->db);
  VIEWAUTH_CHECK(answer.ok());
  for (auto _ : state) {
    Relation masked = Authorizer::ApplyMask(*answer, *mask,
                                            /*drop_fully_masked_rows=*/true);
    benchmark::DoNotOptimize(masked);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["mask_tuples"] = mask->size();
}
BENCHMARK(BM_ApplyMask)->RangeMultiplier(4)->Range(64, 16384);

void BM_ApplyMaskConstantOnly(benchmark::State& state) {
  // A mask of constant/blank cells only takes the fast path in
  // RowSatisfies (no solver involvement).
  auto w = MakeWorkload(/*relations=*/1,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/0);
  // The view pins B to a constant in its target list, so the mask's B
  // cell is Const(500) — the constant-comparison fast path — while the
  // query itself keeps every row in the answer.
  auto stmt = ParseStatement(
      "view CONSTV (R0.KEY, R0.A, R0.B) where R0.B = 500");
  VIEWAUTH_CHECK(stmt.ok());
  VIEWAUTH_CHECK(w->catalog->DefineView(std::get<ViewStmt>(*stmt)).ok());
  VIEWAUTH_CHECK(w->catalog->Permit("CONSTV", "u").ok());
  ConjunctiveQuery query = w->Query("retrieve (R0.KEY, R0.A, R0.B)");
  auto mask = w->authorizer->DeriveMask("u", query);
  VIEWAUTH_CHECK(mask.ok());
  auto answer = EvaluateOptimized(query, w->db);
  VIEWAUTH_CHECK(answer.ok());
  for (auto _ : state) {
    Relation masked = Authorizer::ApplyMask(*answer, *mask, true);
    benchmark::DoNotOptimize(masked);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ApplyMaskConstantOnly)->RangeMultiplier(4)->Range(64, 16384);

void BM_SelfJoinInference(benchmark::State& state) {
  const int views = static_cast<int>(state.range(0));
  auto w = MakeWorkload(/*relations=*/1, /*rows=*/4, views);
  ConjunctiveQuery query = w->Query("retrieve (R0.KEY, R0.A)");
  AuthorizationOptions no_self_joins;
  no_self_joins.self_joins = false;
  auto base = w->authorizer->PrunedMetaRelation("u", query, 0, no_self_joins);
  VIEWAUTH_CHECK(base.ok());
  const RelationSchema& schema =
      *w->db.schema().GetRelation("R0").value();
  for (auto _ : state) {
    MetaRelation extended = WithSelfJoins(*base, schema);
    benchmark::DoNotOptimize(extended);
  }
  state.counters["views"] = views;
}
BENCHMARK(BM_SelfJoinInference)->RangeMultiplier(2)->Range(2, 32);

}  // namespace
}  // namespace viewauth

BENCHMARK_MAIN();
