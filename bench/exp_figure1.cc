// EXP-F1: reproduces the paper's Figure 1 — the example database extended
// with access permissions. Prints every relation/meta-relation pair, the
// COMPARISON and PERMISSION relations, and checks each stored meta-tuple
// against the figure.

#include <iostream>

#include "bench/exp_util.h"
#include "common/str_util.h"
#include "engine/table_printer.h"

using namespace viewauth;
using testing_util::PaperDatabase;

namespace {

// The figure's meta-tuples, view by view and relation by relation.
struct ExpectedTuple {
  const char* view;
  const char* relation;
  const char* cells;  // cells joined with '|'
};

constexpr ExpectedTuple kFigure1[] = {
    {"SAE", "EMPLOYEE", "*||*"},
    {"ELP", "EMPLOYEE", "x1*|*|"},
    {"EST", "EMPLOYEE", "*|x4*|"},
    {"EST", "EMPLOYEE", "*|x4*|"},
    {"PSA", "PROJECT", "*|Acme*|*"},
    {"ELP", "PROJECT", "x2*||x3*"},
    {"ELP", "ASSIGNMENT", "x1*|x2*"},
};

}  // namespace

int main() {
  exp::Checker checker("EXP-F1: Figure 1 (database extended with permissions)");
  PaperDatabase fixture;
  const ViewCatalog& catalog = fixture.catalog();
  auto namer = [&catalog](VarId v) { return catalog.VarName(v); };

  // Print each R / R' pair the way the figure shows them.
  for (const char* relation : {"EMPLOYEE", "PROJECT", "ASSIGNMENT"}) {
    TablePrintOptions opts;
    opts.caption = relation;
    opts.sorted = false;
    std::cout << PrintRelation(**fixture.db().GetRelation(relation), opts);
    std::cout << relation << "' (meta-tuples):\n";
    for (const std::string& view_name : catalog.view_names()) {
      const ViewDefinition& def = *catalog.GetView(view_name).value();
      for (size_t i = 0; i < def.tuples.size(); ++i) {
        if (def.tuple_relations[i] != relation) continue;
        std::cout << "  " << view_name << " "
                  << def.tuples[i].ToString(namer) << "\n";
      }
    }
    std::cout << "\n";
  }
  TablePrintOptions opts;
  opts.sorted = false;
  opts.caption = "COMPARISON";
  std::cout << PrintRelation(catalog.MaterializeComparison(), opts) << "\n";
  opts.caption = "PERMISSION";
  std::cout << PrintRelation(catalog.MaterializePermission(), opts) << "\n";

  // Checks: every expected meta-tuple appears (with multiplicity).
  std::multiset<std::string> actual;
  for (const std::string& view_name : catalog.view_names()) {
    const ViewDefinition& def = *catalog.GetView(view_name).value();
    for (size_t i = 0; i < def.tuples.size(); ++i) {
      std::string row = view_name;
      row += "@";
      row += def.tuple_relations[i];
      row += ":";
      std::vector<std::string> cells;
      for (const MetaCell& cell : def.tuples[i].cells()) {
        cells.push_back(cell.ToString(namer));
      }
      row += Join(cells, "|");
      actual.insert(std::move(row));
    }
  }
  std::multiset<std::string> expected;
  for (const ExpectedTuple& t : kFigure1) {
    expected.insert(std::string(t.view) + "@" + t.relation + ":" + t.cells);
  }
  checker.CheckEq("meta-tuple count", actual.size(), expected.size());
  checker.Check("meta-tuples match Figure 1 exactly", actual == expected);

  // COMPARISON = {(ELP, x3, >=, 250000)}.
  Relation comparison = catalog.MaterializeComparison();
  checker.CheckEq("COMPARISON row count", comparison.size(), 1);
  checker.Check(
      "COMPARISON holds (ELP, x3, >=, 250000)",
      comparison.Contains(Tuple({Value::String("ELP"), Value::String("x3"),
                                 Value::String(">="),
                                 Value::String("250000")})));

  // PERMISSION: the figure's five grants.
  Relation permission = catalog.MaterializePermission();
  checker.CheckEq("PERMISSION row count", permission.size(), 5);
  for (auto [user, view] :
       {std::pair{"Brown", "SAE"}, {"Brown", "PSA"}, {"Brown", "EST"},
        {"Klein", "ELP"}, {"Klein", "EST"}}) {
    checker.Check(std::string("grant (") + user + ", " + view + ")",
                  permission.Contains(Tuple(
                      {Value::String(user), Value::String(view)})));
  }
  return checker.Finish();
}
