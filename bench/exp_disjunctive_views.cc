// EXP-X3: the paper's conclusion (2), implemented (first half): views
// with disjunctions. A single grant covers an `or` of conjunctive
// branches; each branch refines independently under queries.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/engine.h"

using namespace viewauth;

int main() {
  exp::Checker checker("EXP-X3: disjunctive views (conclusion (2))");
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)
    insert into EMPLOYEE values (Brown, engineer, 32000)

    view JUNIOR_OR_MGR (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY < 25000
      or EMPLOYEE.TITLE = manager
    permit JUNIOR_OR_MGR to auditor
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  engine.SetSessionUser("auditor");

  auto all = engine.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)");
  if (!all.ok()) {
    std::cerr << all.status() << "\n";
    return 1;
  }
  std::cout << *all << "\n";
  const AuthorizationResult* result = engine.last_result();
  checker.Check("union delivered (Smith via salary, Jones via title)",
                result->answer.Contains(Tuple({Value::String("Smith"),
                                               Value::String("technician"),
                                               Value::Int64(22000)})) &&
                    result->answer.Contains(
                        Tuple({Value::String("Jones"),
                               Value::String("manager"),
                               Value::Int64(26000)})));
  bool brown_absent = true;
  for (const Tuple& row : result->answer.rows()) {
    if (row.at(0) == Value::String("Brown")) brown_absent = false;
  }
  checker.Check("rows outside every branch stay hidden", brown_absent);

  // Branch-local refinement: a query inside branch 1's range comes back
  // with the salary restriction cleared (full access through branch 1).
  auto refined = engine.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY) "
      "where EMPLOYEE.SALARY < 23000");
  if (!refined.ok()) {
    std::cerr << refined.status() << "\n";
    return 1;
  }
  std::cout << *refined << "\n";
  checker.Check("query inside branch 1 is fully granted",
                engine.last_result()->full_access);

  // The grant is atomic: denying the view removes every branch.
  if (!engine.Execute("deny JUNIOR_OR_MGR to auditor").ok()) return 1;
  auto gone = engine.Execute("retrieve (EMPLOYEE.NAME)");
  checker.Check("deny removes all branches",
                gone.ok() && engine.last_result()->denied);
  return checker.Finish();
}
