// EXP-EX3: the paper's Example 3. Brown retrieves names and salaries of
// same-title employee pairs. The SAE and EST subviews self-join (both
// include the EMPLOYEE key), the combined (EST,SAE) tuples carry the
// whole request, and the answer is delivered in full with no permit
// statements.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/table_printer.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker("EXP-EX3: Example 3 (Brown, same-title pairs)");
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, "
      "EMPLOYEE:2.SALARY) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  auto namer = [&fixture](VarId v) { return fixture.catalog().VarName(v); };

  // The pruned EMPLOYEE' with inferred self-joins (the paper's combined
  // (EST,SAE) rows).
  auto pruned = authorizer.PrunedMetaRelation("Brown", query, 0);
  if (!pruned.ok()) {
    std::cerr << pruned.status() << "\n";
    return 1;
  }
  std::cout << "Pruned EMPLOYEE' with self-joins:\n"
            << pruned->ToString(namer) << "\n";
  int est_sae = 0;
  for (const MetaTuple& t : pruned->tuples()) {
    if (t.views().contains("EST") && t.views().contains("SAE")) {
      ++est_sae;
      checker.Check("self-join tuple is (*, x4*, *)",
                    t.cells()[0].is_blank() && t.cells()[0].projected &&
                        t.cells()[1].kind == CellKind::kVar &&
                        t.cells()[1].projected &&
                        t.cells()[2].is_blank() && t.cells()[2].projected);
    }
  }
  checker.CheckEq("two (EST,SAE) self-join tuples", est_sae, 2);

  auto result = authorizer.Retrieve("Brown", query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "Final mask A':\n" << result->mask.ToString(namer) << "\n";
  TablePrintOptions opts;
  opts.caption = "Delivered:";
  std::cout << PrintRelation(result->answer, opts) << "\n";

  checker.Check("full access (entire answer permitted)",
                result->full_access);
  checker.Check("no accompanying permit statements",
                result->permits.empty());
  checker.CheckEq("answer rows (identical-title pairs)",
                  result->answer.size(), 3);
  checker.Check("answer equals the unmasked answer",
                result->answer.SameTuples(result->raw_answer));
  checker.Check("salaries are visible",
                result->answer.Contains(Tuple(
                    {Value::String("Jones"), Value::Int64(26000),
                     Value::String("Jones"), Value::Int64(26000)})));

  // Contrast: without the self-join refinement, salaries are withheld.
  AuthorizationOptions no_self_joins;
  no_self_joins.self_joins = false;
  auto restricted = authorizer.Retrieve("Brown", query, no_self_joins);
  if (!restricted.ok()) {
    std::cerr << restricted.status() << "\n";
    return 1;
  }
  checker.Check("without self-joins: not full access",
                !restricted->full_access);
  bool salaries_masked = true;
  for (const Tuple& row : restricted->answer.rows()) {
    if (!row.at(1).is_null() || !row.at(3).is_null()) {
      salaries_masked = false;
    }
  }
  checker.Check("without self-joins: salaries masked", salaries_masked);
  return checker.Finish();
}
