// EXP-F2: the commutative diagram of Figure 2. Query processing extends
// to the meta-relations: S yields the answer A from the relations R, S'
// yields the permission views A' from R'. The diagram's structural
// properties, checked on randomized databases and queries:
//   (1) the mask A' depends only on the request and R' — never on the
//       data in R;
//   (2) the data side may use any evaluation strategy (canonical vs
//       optimized) without changing A or the masked delivery.

#include <iostream>
#include <random>

#include "algebra/evaluator.h"
#include "algebra/optimizer.h"
#include "bench/exp_util.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker("EXP-F2: Figure 2 (commutative diagram)");
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> val(0, 5);

  int mask_stable = 0, plans_agree = 0, delivery_agrees = 0;
  constexpr int kRounds = 25;
  const char* queries[] = {
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= "
      "250000",
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) where EMPLOYEE.NAME = "
      "ASSIGNMENT.E_NAME",
      "retrieve (EMPLOYEE.NAME, PROJECT.BUDGET) where EMPLOYEE.NAME = "
      "ASSIGNMENT.E_NAME and ASSIGNMENT.P_NO = PROJECT.NUMBER",
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.SALARY) where "
      "EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
  };

  for (int round = 0; round < kRounds; ++round) {
    PaperDatabase fixture;
    Authorizer authorizer = fixture.MakeAuthorizer();
    const char* user = (round % 2 == 0) ? "Brown" : "Klein";
    ConjunctiveQuery query =
        fixture.Query(queries[static_cast<size_t>(round) % 4]);

    auto mask_before = authorizer.DeriveMask(user, query);
    // Mutate the data: extra employees/projects with random values.
    (void)fixture.db().Insert(
        "EMPLOYEE",
        Tuple({Value::String("extra" + std::to_string(round)),
               Value::String("title" + std::to_string(val(rng))),
               Value::Int64(20000 + 1000 * val(rng))}));
    (void)fixture.db().Insert(
        "PROJECT", Tuple({Value::String("p" + std::to_string(round)),
                          Value::String("Acme"),
                          Value::Int64(100000 * val(rng))}));
    auto mask_after = authorizer.DeriveMask(user, query);
    if (mask_before.ok() && mask_after.ok()) {
      std::multiset<std::string> before_keys, after_keys;
      for (const MetaTuple& t : mask_before->tuples()) {
        before_keys.insert(t.StructuralKey());
      }
      for (const MetaTuple& t : mask_after->tuples()) {
        after_keys.insert(t.StructuralKey());
      }
      if (before_keys == after_keys) ++mask_stable;
    }

    auto canonical = EvaluateCanonical(query, fixture.db());
    auto optimized = EvaluateOptimized(query, fixture.db());
    if (canonical.ok() && optimized.ok() &&
        canonical->SameTuples(*optimized)) {
      ++plans_agree;
    }

    AuthorizationOptions via_canonical;
    via_canonical.use_optimized_data_plan = false;
    auto delivered_opt = authorizer.Retrieve(user, query);
    auto delivered_can = authorizer.Retrieve(user, query, via_canonical);
    if (delivered_opt.ok() && delivered_can.ok() &&
        delivered_opt->answer.SameTuples(delivered_can->answer)) {
      ++delivery_agrees;
    }
  }

  std::cout << "mask unchanged under data updates: " << mask_stable << "/"
            << kRounds << "\n"
            << "canonical == optimized answers:    " << plans_agree << "/"
            << kRounds << "\n"
            << "masked delivery strategy-agnostic: " << delivery_agrees
            << "/" << kRounds << "\n\n";
  checker.CheckEq("mask is data-independent", mask_stable, kRounds);
  checker.CheckEq("evaluation strategies agree", plans_agree, kRounds);
  checker.CheckEq("masked delivery agrees", delivery_agrees, kRounds);
  return checker.Finish();
}
