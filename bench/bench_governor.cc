// PERF-7: the execution governor's overhead and the admission
// controller's shedding behaviour.
//
// Overhead: the full Retrieve pipeline on the reference workload (the
// same 2-relation 512-row join bench_latemat uses), ungoverned versus
// governed with generous limits that never trip. The governed run pays
// for budget accounting and amortized wall-clock probes on every data
// and meta loop; the gate requires that cost to stay within 2%.
//
// Shedding: an engine capped at 2 concurrent retrieves with a 2-deep
// admission queue, hit by 8 clients at once (4x capacity). The excess
// must shed with Unavailable while the admission counters reconcile:
// attempts == admitted + shed + queue_timeouts.
//
// Modes:
//   bench_governor           overhead + shedding report; writes
//                            BENCH_governor.json (run from the repo root
//                            of a Release build)
//   bench_governor --smoke   overhead gate only; exits 1 if governing a
//                            non-tripping retrieve costs more than 2%
//                            (the check.sh regression gate)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;
using bench_util::Workload;
using Clock = std::chrono::steady_clock;

constexpr const char* kTwoRelQuery =
    "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= 150";

// Both modes run single-threaded: with parallel meta evaluation the
// retrieve bounces between a pool worker and the session thread, and on
// a loaded single-core host that scheduling noise swamps the few-percent
// signal this benchmark exists to measure.
AuthorizationOptions PlainOptions() {
  AuthorizationOptions options;
  options.parallel_meta_evaluation = false;
  return options;
}

// Generous limits: governed accounting runs on every loop, but nothing
// ever trips.
AuthorizationOptions GovernedOptions() {
  AuthorizationOptions options = PlainOptions();
  options.deadline_ms = 600000;
  options.max_rows = 1LL << 40;
  options.max_bytes = 1LL << 50;
  return options;
}

// Wall time of one batch of `iterations` full Retrieve calls.
long long TimeBatch(const Workload& w, const ConjunctiveQuery& query,
                    const AuthorizationOptions& options, int iterations) {
  long long sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto result = w.authorizer->Retrieve("u", query, options);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    sink += static_cast<long long>(result->answer.size());
  }
  const long long micros =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count();
  if (sink < 0) std::cerr << sink;  // keep the loop observable
  return micros;
}

// One round of `iterations` retrieves per mode, alternating mode every
// single call and accumulating each mode's time separately. A noise
// burst (scheduler preemption, page-cache work) lasting longer than one
// ~200us retrieve therefore lands on both modes in nearly equal shares
// instead of falling wholesale into one mode's batch.
struct RoundTimes {
  long long ungoverned_micros = 0;
  long long governed_micros = 0;
};

RoundTimes TimeRoundInterleaved(const Workload& w,
                                const ConjunctiveQuery& query,
                                const AuthorizationOptions& plain_options,
                                const AuthorizationOptions& governed_options,
                                int iterations, bool governed_first) {
  RoundTimes times;
  long long sink = 0;
  for (int i = 0; i < 2 * iterations; ++i) {
    const bool governed = (i % 2 == 0) == governed_first;
    const AuthorizationOptions& options =
        governed ? governed_options : plain_options;
    const auto start = Clock::now();
    auto result = w.authorizer->Retrieve("u", query, options);
    const long long micros =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count();
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    sink += static_cast<long long>(result->answer.size());
    (governed ? times.governed_micros : times.ungoverned_micros) += micros;
  }
  if (sink < 0) std::cerr << sink;  // keep the loop observable
  return times;
}

struct OverheadReport {
  long long ungoverned_micros = 0;  // fastest batch
  long long governed_micros = 0;    // fastest batch
  double overhead_pct = 0;          // median of per-round governed/plain
};

OverheadReport MeasureOverhead(int iterations, int repeats) {
  // One shared workload for both modes: the modes differ only in the
  // options they pass, so they run against byte-identical data
  // structures and warm caches. (Two instances would differ by a few
  // percent from allocation layout alone, a per-process bias that no
  // amount of repetition averages away.)
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/512,
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(kTwoRelQuery);

  // Warmup both (lazy indexes + mask caches). Each round interleaves
  // the two modes call by call, so noise bursts hit both modes alike;
  // the median ratio over all rounds discards outlier rounds entirely.
  // The starting mode alternates per round to cancel any residual
  // position bias within the interleave.
  const AuthorizationOptions plain_options = PlainOptions();
  const AuthorizationOptions governed_options = GovernedOptions();
  TimeBatch(*w, query, plain_options, 1);
  TimeBatch(*w, query, governed_options, 1);
  OverheadReport report;
  report.ungoverned_micros = -1;
  report.governed_micros = -1;
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const RoundTimes times = TimeRoundInterleaved(
        *w, query, plain_options, governed_options, iterations,
        /*governed_first=*/r % 2 == 0);
    const long long u = times.ungoverned_micros;
    const long long g = times.governed_micros;
    if (u > 0) ratios.push_back(static_cast<double>(g) / u);
    if (report.ungoverned_micros < 0 || u < report.ungoverned_micros) {
      report.ungoverned_micros = u;
    }
    if (report.governed_micros < 0 || g < report.governed_micros) {
      report.governed_micros = g;
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const double median =
      ratios.empty()
          ? 1.0
          : (ratios.size() % 2 == 1
                 ? ratios[ratios.size() / 2]
                 : (ratios[ratios.size() / 2 - 1] + ratios[ratios.size() / 2]) /
                       2.0);
  report.overhead_pct = 100.0 * (median - 1.0);
  return report;
}

struct SheddingReport {
  int clients = 0;
  int ok = 0;
  int unavailable = 0;
  int other = 0;
  AuthzStats stats;
};

// 8 clients against a capacity of 2 + a 2-deep queue: 4x overload.
SheddingReport MeasureShedding() {
  Engine engine;
  std::string script =
      "relation A (AK string key, X int)\n"
      "relation B (BK string key, Y int)\n";
  constexpr int kRows = 400;
  for (int i = 0; i < kRows; ++i) {
    script += "insert into A values (a" + std::to_string(i) + ", " +
              std::to_string(i) + ")\n";
    script += "insert into B values (b" + std::to_string(i) + ", " +
              std::to_string(kRows - 10 + i) + ")\n";
  }
  script += "view AB (A.X, B.Y)\npermit AB to Brown\n";
  auto setup = engine.ExecuteScript(script);
  VIEWAUTH_CHECK(setup.ok()) << setup.status().ToString();
  engine.ResetAuthzStats();
  engine.options().max_concurrent = 2;
  engine.options().admission_queue = 2;
  engine.options().admission_timeout_ms = 20;

  SheddingReport report;
  report.clients = 8;
  std::atomic<int> ok{0}, unavailable{0}, other{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int i = 0; i < report.clients; ++i) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto out =
          engine.Execute("retrieve (A.X, B.Y) where A.X > B.Y as Brown");
      if (out.ok()) {
        ok.fetch_add(1);
      } else if (out.status().IsUnavailable()) {
        unavailable.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  while (ready.load() < report.clients) std::this_thread::yield();
  go = true;
  for (std::thread& t : clients) t.join();
  report.ok = ok.load();
  report.unavailable = unavailable.load();
  report.other = other.load();
  report.stats = engine.authz_stats();
  return report;
}

int RunSmoke() {
  const OverheadReport report =
      MeasureOverhead(/*iterations=*/20, /*repeats=*/48);
  std::cout << "smoke: ungoverned=" << report.ungoverned_micros
            << "us governed=" << report.governed_micros
            << "us overhead=" << report.overhead_pct << "%\n";
  if (report.overhead_pct > 2.0) {
    std::cerr << "FAIL: governing a non-tripping retrieve costs "
              << report.overhead_pct << "% (> 2% gate)\n";
    return 1;
  }
  return 0;
}

int RunFull(const std::string& path) {
  const OverheadReport overhead =
      MeasureOverhead(/*iterations=*/20, /*repeats=*/48);
  std::cout << "overhead: ungoverned=" << overhead.ungoverned_micros
            << "us governed=" << overhead.governed_micros
            << "us overhead=" << overhead.overhead_pct << "%\n";

  const SheddingReport shed = MeasureShedding();
  std::cout << "shedding: clients=" << shed.clients << " ok=" << shed.ok
            << " unavailable=" << shed.unavailable
            << " (attempts=" << shed.stats.admission_attempts
            << " admitted=" << shed.stats.admitted
            << " queued=" << shed.stats.queued << " shed=" << shed.stats.shed
            << " queue_timeouts=" << shed.stats.queue_timeouts << ")\n";
  const bool reconciles =
      shed.stats.admission_attempts ==
      shed.stats.admitted + shed.stats.shed + shed.stats.queue_timeouts;

  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"execution governor overhead + admission "
         "shedding\",\n"
      << "  \"overhead\": {\n"
      << "    \"workload\": {\"relations\": 2, \"rows\": 512, "
         "\"views_per_relation\": 2, \"join_views\": true},\n"
      << "    \"query\": \"" << kTwoRelQuery << "\",\n"
      << "    \"ungoverned_total_micros\": " << overhead.ungoverned_micros
      << ",\n"
      << "    \"governed_total_micros\": " << overhead.governed_micros
      << ",\n"
      << "    \"overhead_pct\": " << overhead.overhead_pct << ",\n"
      << "    \"gate_pct\": 2.0\n"
      << "  },\n"
      << "  \"shedding\": {\n"
      << "    \"clients\": " << shed.clients << ",\n"
      << "    \"max_concurrent\": 2,\n"
      << "    \"admission_queue\": 2,\n"
      << "    \"ok\": " << shed.ok << ",\n"
      << "    \"unavailable\": " << shed.unavailable << ",\n"
      << "    \"other_failures\": " << shed.other << ",\n"
      << "    \"attempts\": " << shed.stats.admission_attempts << ",\n"
      << "    \"admitted\": " << shed.stats.admitted << ",\n"
      << "    \"queued\": " << shed.stats.queued << ",\n"
      << "    \"shed\": " << shed.stats.shed << ",\n"
      << "    \"queue_timeouts\": " << shed.stats.queue_timeouts << ",\n"
      << "    \"counters_reconcile\": " << (reconciles ? "true" : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << path << "\n";
  if (!reconciles) {
    std::cerr << "FAIL: admission counters do not reconcile\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return viewauth::RunSmoke();
    }
  }
  return viewauth::RunFull("BENCH_governor.json");
}
