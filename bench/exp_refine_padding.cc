// EXP-R1: the product padding refinement (Section 4.2). The paper's
// motivating case: if Q is a product of R and S followed by a projection
// removing all of S's attributes, Q is equivalent to R and A' should
// retain all of R's subviews. Without the padded tuples
// (a_1..a_m, blank...) those subviews are lost whenever the S-side
// meta-tuples restrict S's attributes.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/engine.h"

using namespace viewauth;

int main() {
  exp::Checker checker("EXP-R1: product padding refinement (Section 4.2)");
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation STAFF (NAME string key, DEPT string)
    relation AUDIT (DEPT string key, SCORE int)
    insert into STAFF values (Ann, sales)
    insert into STAFF values (Bob, lab)
    insert into AUDIT values (sales, 4)
    insert into AUDIT values (lab, 9)

    view STAFF_ALL (STAFF.NAME, STAFF.DEPT)
    view GOOD_AUDITS (AUDIT.DEPT, AUDIT.SCORE) where AUDIT.SCORE >= 5

    permit STAFF_ALL to auditor
    permit GOOD_AUDITS to auditor
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  engine.SetSessionUser("auditor");

  // The paper's scenario: a product of the two relations followed by a
  // projection that removes the AUDIT side (here, all of it except a
  // column nobody is permitted to see). GOOD_AUDITS restricts SCORE, so
  // every combined tuple dies at the projection; STAFF_ALL survives only
  // through the padded product tuples (STAFF_ALL, blank...).
  const char* query = "retrieve (STAFF.NAME, STAFF.DEPT, AUDIT.DEPT)";

  auto with_padding = engine.Execute(query);
  checker.Check("with padding: granted",
                with_padding.ok() && !engine.last_result()->denied);
  if (with_padding.ok()) {
    std::cout << "with padding:\n" << *with_padding << "\n";
    // The STAFF columns flow (deduplicated to the two staff rows);
    // AUDIT.DEPT is withheld.
    checker.CheckEq("with padding: two masked rows",
                    engine.last_result()->answer.size(), 2);
    bool audit_masked = true;
    for (const Tuple& row : engine.last_result()->answer.rows()) {
      if (!row.at(2).is_null()) audit_masked = false;
    }
    checker.Check("with padding: AUDIT.DEPT column masked", audit_masked);
  }

  engine.options().padding = false;
  auto without_padding = engine.Execute(query);
  checker.Check("without padding: denied (subviews lost at projection)",
                without_padding.ok() && engine.last_result()->denied);
  if (without_padding.ok()) {
    std::cout << "without padding:\n" << *without_padding << "\n";
  }
  return checker.Finish();
}
