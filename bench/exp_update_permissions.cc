// EXP-X2: the paper's conclusion (1), implemented: update permissions.
// Insert-mode views are whole-row windows the user may create rows in;
// delete-mode views bound what a user may remove, with partial requests
// reduced exactly like retrievals (withheld rows survive).

#include <iostream>

#include "bench/exp_util.h"
#include "engine/engine.h"

using namespace viewauth;

int main() {
  exp::Checker checker("EXP-X2: update permissions (conclusion (1))");
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    insert into PROJECT values (p1, Acme, 100000)
    insert into PROJECT values (p2, Acme, 400000)
    insert into PROJECT values (p3, Apex, 250000)

    view ACME_FULL (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.SPONSOR = Acme
    view SMALL (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.BUDGET < 200000

    permit ACME_FULL to editor for insert
    permit SMALL to editor for delete
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  // Inserts inside / outside the editor's Acme window.
  auto inside = engine.Execute(
      "insert into PROJECT values (p9, Acme, 900000) as editor");
  std::cout << "insert (p9, Acme, 900000) as editor: "
            << (inside.ok() ? "accepted" : inside.status().ToString())
            << "\n";
  checker.Check("insert inside the window accepted", inside.ok());

  auto outside = engine.Execute(
      "insert into PROJECT values (p8, Apex, 900000) as editor");
  std::cout << "insert (p8, Apex, 900000) as editor: "
            << (outside.ok() ? "accepted?!" : outside.status().ToString())
            << "\n";
  checker.Check("insert outside the window denied",
                outside.status().IsPermissionDenied());

  // A broad delete is reduced to the permitted window (partial effect,
  // like the retrieval model's partial delivery).
  auto removed = engine.Execute(
      "delete from PROJECT where PROJECT.BUDGET >= 100000 as editor");
  if (!removed.ok()) {
    std::cerr << removed.status() << "\n";
    return 1;
  }
  std::cout << "delete BUDGET >= 100000 as editor: " << *removed << "\n";
  checker.CheckEq("delete reduced to the SMALL window", *removed,
                  std::string("deleted 1 row(s) (3 withheld by "
                              "permissions)"));
  checker.CheckEq("remaining rows",
                  (*engine.db().GetRelation("PROJECT"))->size(), 3);

  // Modes are independent: the editor cannot retrieve anything.
  auto read = engine.Execute("retrieve (PROJECT.NUMBER) as editor");
  checker.Check("insert/delete grants do not imply retrieval",
                read.ok() &&
                    read->find("permission denied") != std::string::npos);
  return checker.Finish();
}
