// PERF-1: cost of deriving the mask A' as the number of permitted views
// and the number of relations in the query grow. The paper argues the
// meta-relations are "relatively small", making the simple canonical
// strategy affordable — these benchmarks quantify that.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;
using bench_util::Workload;

void BM_DeriveMaskVsViewCount(benchmark::State& state) {
  const int views = static_cast<int>(state.range(0));
  auto w = MakeWorkload(/*relations=*/1, /*rows=*/16, views);
  ConjunctiveQuery query = w->Query("retrieve (R0.KEY, R0.A) "
                                    "where R0.A >= 120");
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["views"] = views;
}
BENCHMARK(BM_DeriveMaskVsViewCount)->RangeMultiplier(2)->Range(1, 64);

void BM_DeriveMaskVsQueryAtoms(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  auto w = MakeWorkload(/*relations=*/4, /*rows=*/16,
                        /*views_per_relation=*/2, /*join_views=*/true);
  std::string text = "retrieve (R0.KEY, R0.A)";
  std::string where;
  for (int a = 1; a < atoms; ++a) {
    where += where.empty() ? " where " : " and ";
    where += "R" + std::to_string(a - 1) + ".KEY = R" + std::to_string(a) +
             ".KEY";
  }
  ConjunctiveQuery query = w->Query(text + where);
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["atoms"] = atoms;
}
BENCHMARK(BM_DeriveMaskVsQueryAtoms)->DenseRange(1, 4);

void BM_DeriveMaskRefinementsOff(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/16,
                        /*views_per_relation=*/4, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "200");
  AuthorizationOptions options;
  options.four_case = state.range(0) != 0;
  options.padding = state.range(0) != 0;
  options.self_joins = state.range(0) != 0;
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query, options);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["refined"] = state.range(0);
}
BENCHMARK(BM_DeriveMaskRefinementsOff)->Arg(0)->Arg(1);

// The paper-endorsed self-join cache ("stored with the original view
// definitions, until these definitions are modified"): repeat-query cost
// with and without it.
void BM_DeriveMaskSelfJoinCache(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/1, /*rows=*/16, /*views=*/16);
  ConjunctiveQuery query =
      w->Query("retrieve (R0.KEY, R0.A) where R0.A >= 120");
  AuthorizationOptions options;
  options.use_meta_cache = state.range(0) != 0;
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query, options);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["cached"] = state.range(0);
}
BENCHMARK(BM_DeriveMaskSelfJoinCache)->Arg(0)->Arg(1);

}  // namespace
}  // namespace viewauth

BENCHMARK_MAIN();
