// PERF-2: the paper's central efficiency claim — the meta-relations stay
// small, so deriving the mask A' costs (almost) nothing compared to
// evaluating the answer A as the data grows. The mask derivation time
// must be flat in the row count while data evaluation scales with it.

#include <benchmark/benchmark.h>

#include "algebra/optimizer.h"
#include "bench/bench_util.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;

void BM_MaskDerivation(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MaskDerivation)->RangeMultiplier(4)->Range(64, 16384);

void BM_DataEvaluation(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DataEvaluation)->RangeMultiplier(4)->Range(64, 16384);

}  // namespace
}  // namespace viewauth

BENCHMARK_MAIN();
