// EXP-EX1: the paper's Example 1. Brown retrieves numbers and sponsors of
// large projects; the mask must come out as (*, Acme*) and the delivery
// must be restricted to Acme's project with the inferred statement
//   permit (NUMBER, SPONSOR) where SPONSOR = Acme.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/table_printer.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker("EXP-EX1: Example 1 (Brown, large projects)");
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000");

  auto result = authorizer.Retrieve("Brown", query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  auto namer = [&fixture](VarId v) { return fixture.catalog().VarName(v); };
  std::cout << "Mask A':\n" << result->mask.ToString(namer) << "\n";
  TablePrintOptions opts;
  opts.caption = "Delivered:";
  std::cout << PrintRelation(result->answer, opts);
  for (const InferredPermit& permit : result->permits) {
    std::cout << permit.ToString() << "\n";
  }
  std::cout << "\n";

  checker.Check("request is not denied", !result->denied);
  checker.Check("request is not full access", !result->full_access);
  checker.CheckEq("mask has one tuple", result->mask.size(), 1);
  if (result->mask.size() == 1) {
    const MetaTuple& mask = result->mask.tuples()[0];
    checker.Check("NUMBER cell is *", mask.cells()[0].is_blank() &&
                                          mask.cells()[0].projected);
    checker.Check("SPONSOR cell is Acme*",
                  mask.cells()[1].kind == CellKind::kConst &&
                      mask.cells()[1].constant == Value::String("Acme") &&
                      mask.cells()[1].projected);
  }
  checker.CheckEq("raw answer rows (bq-45, sv-72)", result->raw_answer.size(),
                  2);
  checker.CheckEq("delivered rows (Acme only)", result->answer.size(), 1);
  checker.Check("delivered row is (bq-45, Acme)",
                result->answer.Contains(Tuple({Value::String("bq-45"),
                                               Value::String("Acme")})));
  checker.CheckEq("inferred permit count", result->permits.size(), 1u);
  if (!result->permits.empty()) {
    checker.CheckEq("inferred permit text", result->permits[0].ToString(),
                    std::string("permit (NUMBER, SPONSOR) where SPONSOR = "
                                "Acme"));
  }
  return checker.Finish();
}
