// EXP-R2: the paper's four-case selection refinement (Section 4.2).
// Given a view of projects with budgets between $300,000 and $600,000,
// four query ranges exercise the four cases:
//   (1) 200k-400k — overlap:   the view is modified to 300k-400k;
//   (2) 200k-700k — mu=>lambda: the view is retained unmodified;
//   (3) 400k-500k — lambda=>mu: the restriction is cleared entirely;
//   (4) under 300k — contradiction: the view is discarded (denial).

#include <iostream>

#include "bench/exp_util.h"
#include "engine/engine.h"
#include "parser/parser.h"

using namespace viewauth;

namespace {

struct Case {
  const char* label;
  const char* paper_outcome;
  const char* query;
  bool denied;
  const char* expected_permit;  // nullptr for full access
};

constexpr Case kCases[] = {
    {"(1) 200k-400k", "modify to [300k,400k]",
     "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET >= "
     "200000 and PROJECT.BUDGET <= 400000",
     false,
     "permit (NUMBER, BUDGET) where BUDGET <= 400000 and BUDGET >= 300000"},
    {"(2) 200k-700k", "retain unmodified",
     "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET >= "
     "200000 and PROJECT.BUDGET <= 700000",
     false,
     "permit (NUMBER, BUDGET) where BUDGET <= 600000 and BUDGET >= 300000"},
    {"(3) 400k-500k", "clear the restriction",
     "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET >= "
     "400000 and PROJECT.BUDGET <= 500000",
     false, nullptr},
    {"(4) under 300k", "discard (denied)",
     "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET < "
     "300000",
     true, nullptr},
};

}  // namespace

int main() {
  exp::Checker checker(
      "EXP-R2: four-case selection refinement (Section 4.2)");
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    insert into PROJECT values (p1, Acme, 250000)
    insert into PROJECT values (p2, Apex, 350000)
    insert into PROJECT values (p3, Apex, 450000)
    insert into PROJECT values (p4, Zeus, 550000)
    insert into PROJECT values (p5, Zeus, 650000)
    view MID (PROJECT.NUMBER, PROJECT.BUDGET)
      where PROJECT.BUDGET >= 300000 and PROJECT.BUDGET <= 600000
    permit MID to analyst
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }
  engine.SetSessionUser("analyst");

  for (const Case& c : kCases) {
    std::cout << "--- " << c.label << " (paper: " << c.paper_outcome
              << ") ---\n";
    auto out = engine.Execute(c.query);
    if (!out.ok()) {
      std::cerr << out.status() << "\n";
      return 1;
    }
    std::cout << *out << "\n";
    const AuthorizationResult* result = engine.last_result();
    checker.CheckEq(std::string(c.label) + " denied?", result->denied,
                    c.denied);
    if (c.denied) continue;
    if (c.expected_permit == nullptr) {
      checker.Check(std::string(c.label) + " cleared to full access",
                    result->full_access);
    } else {
      checker.Check(std::string(c.label) + " not full access",
                    !result->full_access);
      bool found = false;
      for (const InferredPermit& permit : result->permits) {
        if (permit.ToString() == c.expected_permit) found = true;
      }
      checker.Check(std::string(c.label) + " permit: " + c.expected_permit,
                    found);
    }
  }

  // The ablation: with the refinement off, case (2) conjoins instead of
  // retaining and case (3) fails to clear, which a later projection
  // punishes — asking only for NUMBER in case (3) is denied in base mode
  // but granted with the refinement.
  const char* number_only =
      "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 400000 and "
      "PROJECT.BUDGET <= 500000";
  auto refined = engine.Execute(number_only);
  checker.Check("case (3), NUMBER only, refined: granted",
                refined.ok() && !engine.last_result()->denied);
  engine.options().four_case = false;
  auto base = engine.Execute(number_only);
  checker.Check("case (3), NUMBER only, base Definition 2: denied",
                base.ok() && engine.last_result()->denied);
  return checker.Finish();
}
