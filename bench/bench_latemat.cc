// PERF-6: the data-side join pipeline. Times the three evaluation
// strategies — canonical (products -> selections -> projections),
// optimized (pushdown + tuple-at-a-time hash join), and late-materialized
// (row-index intermediates + in-place key hashing) — across row counts
// and join widths, single-threaded, and writes BENCH_latemat.json.
//
// Modes:
//   bench_latemat           full matrix + report (run from the repo root
//                           of a Release build; writes BENCH_latemat.json)
//   bench_latemat --smoke   reference workload only; exits 1 if the
//                           late-materialized pipeline is slower than the
//                           tuple-at-a-time optimizer (the check.sh
//                           regression gate)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algebra/evaluator.h"
#include "algebra/latemat.h"
#include "algebra/optimizer.h"
#include "bench/bench_util.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;
using bench_util::Workload;
using Clock = std::chrono::steady_clock;

constexpr const char* kTwoRelQuery =
    "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= 150";
constexpr const char* kThreeRelQuery =
    "retrieve (R0.KEY, R1.B, R2.C) where R0.KEY = R1.KEY "
    "and R1.KEY = R2.KEY and R0.A >= 150";

struct Timing {
  long long total_micros = 0;
  double per_iter_micros = 0;
  EvalStats stats;  // from the final iteration
};

enum class Strategy { kCanonical, kOptimized, kLateMat };

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kCanonical:
      return "canonical";
    case Strategy::kOptimized:
      return "optimized";
    case Strategy::kLateMat:
      return "latemat";
  }
  return "?";
}

Result<Relation> RunOnce(Strategy s, const ConjunctiveQuery& query,
                         const DatabaseInstance& db, EvalStats* stats) {
  switch (s) {
    case Strategy::kCanonical:
      return EvaluateCanonical(query, db, "ANSWER", stats);
    case Strategy::kOptimized:
      return EvaluateOptimized(query, db, "ANSWER", stats);
    case Strategy::kLateMat:
      return EvaluateLateMaterialized(query, db, "ANSWER", stats);
  }
  return Status::InvalidArgument("unknown strategy");
}

Timing Measure(Strategy s, const ConjunctiveQuery& query,
               const DatabaseInstance& db, int iterations) {
  Timing t;
  // Warmup: populates the lazy indexes so every strategy is measured
  // against warm storage.
  {
    EvalStats warm;
    auto result = RunOnce(s, query, db, &warm);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
  }
  long long sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    EvalStats stats;
    auto result = RunOnce(s, query, db, &stats);
    VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
    sink += result->size();
    if (i + 1 == iterations) t.stats = stats;
  }
  t.total_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - start)
                       .count();
  t.per_iter_micros =
      iterations > 0 ? static_cast<double>(t.total_micros) / iterations : 0;
  // Keep the result sizes observable so the loop cannot be elided.
  if (sink < 0) std::cerr << sink;
  return t;
}

struct MatrixRow {
  int relations;
  int rows;
  Strategy strategy;
  int iterations;
  Timing timing;
};

void AppendStats(std::ostream& out, const EvalStats& s) {
  out << "\"rows_scanned\": " << s.rows_scanned
      << ", \"intermediate_rows\": " << s.intermediate_rows
      << ", \"output_rows\": " << s.output_rows
      << ", \"tuples_materialized\": " << s.tuples_materialized
      << ", \"join_key_allocs_avoided\": " << s.join_key_allocs_avoided;
}

int RunSmoke() {
  // The regression gate: on the reference workload (the same 2-relation
  // 512-row join BENCH_mask_cache.json uses), the late-materialized
  // pipeline must not be slower than the tuple-at-a-time optimizer.
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/512,
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(kTwoRelQuery);
  constexpr int kIterations = 50;
  const Timing optimized =
      Measure(Strategy::kOptimized, query, w->db, kIterations);
  const Timing latemat = Measure(Strategy::kLateMat, query, w->db, kIterations);
  const double speedup =
      latemat.total_micros > 0
          ? static_cast<double>(optimized.total_micros) / latemat.total_micros
          : 0.0;
  std::cout << "smoke: optimized=" << optimized.per_iter_micros
            << "us/iter latemat=" << latemat.per_iter_micros
            << "us/iter speedup=" << speedup << "x\n";
  if (speedup < 1.0) {
    std::cerr << "FAIL: late-materialized pipeline slower than the "
                 "tuple-at-a-time optimizer ("
              << speedup << "x < 1.0x)\n";
    return 1;
  }
  return 0;
}

int RunFull(const std::string& path) {
  std::vector<MatrixRow> matrix;
  auto measure_into = [&](int relations, int rows, Strategy s,
                          const ConjunctiveQuery& query,
                          const DatabaseInstance& db, int iterations) {
    MatrixRow row{relations, rows, s, iterations,
                  Measure(s, query, db, iterations)};
    std::cout << "  R=" << relations << " rows=" << rows << " "
              << StrategyName(s) << ": " << row.timing.per_iter_micros
              << "us/iter\n";
    matrix.push_back(row);
  };

  for (int relations : {2, 3}) {
    for (int rows : {64, 256, 512, 1024}) {
      auto w = MakeWorkload(relations, rows, /*views_per_relation=*/2,
                            /*join_views=*/true);
      ConjunctiveQuery query =
          w->Query(relations == 2 ? kTwoRelQuery : kThreeRelQuery);
      const int iterations = rows >= 1024 ? 20 : 50;
      // The canonical strategy builds the full cartesian product
      // (rows^relations intermediate tuples); cap it where that stays
      // tractable so the report still anchors the two optimized
      // strategies against the paper's baseline plan.
      if (rows <= 256 && relations == 2) {
        measure_into(relations, rows, Strategy::kCanonical, query, w->db,
                     rows <= 64 ? 20 : 5);
      }
      measure_into(relations, rows, Strategy::kOptimized, query, w->db,
                   iterations);
      measure_into(relations, rows, Strategy::kLateMat, query, w->db,
                   iterations);
    }
  }

  // Reference comparison for the acceptance criterion: 2 relations,
  // 512 rows, the BENCH_mask_cache.json query.
  auto w = MakeWorkload(/*relations=*/2, /*rows=*/512,
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(kTwoRelQuery);
  constexpr int kRefIterations = 200;
  const Timing optimized =
      Measure(Strategy::kOptimized, query, w->db, kRefIterations);
  const Timing latemat =
      Measure(Strategy::kLateMat, query, w->db, kRefIterations);
  const double speedup =
      latemat.total_micros > 0
          ? static_cast<double>(optimized.total_micros) / latemat.total_micros
          : 0.0;

  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"data-side join pipeline strategies\",\n"
      << "  \"single_threaded\": true,\n"
      << "  \"reference\": {\n"
      << "    \"workload\": {\"relations\": 2, \"rows\": 512, "
         "\"views_per_relation\": 2, \"join_views\": true},\n"
      << "    \"query\": \"" << kTwoRelQuery << "\",\n"
      << "    \"iterations\": " << kRefIterations << ",\n"
      << "    \"optimized_total_micros\": " << optimized.total_micros << ",\n"
      << "    \"latemat_total_micros\": " << latemat.total_micros << ",\n"
      << "    \"latemat_speedup_vs_optimized\": " << speedup << ",\n"
      << "    \"optimized_stats\": {";
  AppendStats(out, optimized.stats);
  out << "},\n"
      << "    \"latemat_stats\": {";
  AppendStats(out, latemat.stats);
  out << "}\n"
      << "  },\n"
      << "  \"matrix\": [\n";
  for (size_t i = 0; i < matrix.size(); ++i) {
    const MatrixRow& row = matrix[i];
    out << "    {\"relations\": " << row.relations
        << ", \"rows\": " << row.rows << ", \"strategy\": \""
        << StrategyName(row.strategy)
        << "\", \"iterations\": " << row.iterations
        << ", \"total_micros\": " << row.timing.total_micros
        << ", \"per_iter_micros\": " << row.timing.per_iter_micros << ", ";
    AppendStats(out, row.timing.stats);
    out << "}" << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::cout << "wrote " << path << ": reference speedup=" << speedup
            << "x (latemat vs optimized, 2 relations, 512 rows)\n";
  return 0;
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return viewauth::RunSmoke();
    }
  }
  return viewauth::RunFull("BENCH_latemat.json");
}
