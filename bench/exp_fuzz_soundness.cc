// EXP-S1: large-scale randomized soundness campaign.
//
// The theorem of Section 4 guarantees soundness: every view in A' is a
// view of the permitted views, so nothing beyond the permissions is ever
// delivered. This harness hammers the full pipeline with randomized
// single-relation scenarios — random data, random views, random grants,
// random queries, random option combinations — and checks every
// delivered cell against a brute-force oracle: some base row must
// project onto the delivered row, satisfy the query, and fall inside a
// permitted view that projects the delivered column.
//
// (Self-joins are exercised separately: the oracle models single views,
// and the lossless-join entitlement is checked by its own experiment and
// unit tests.)

#include <iostream>
#include <random>
#include <set>

#include "authz/authorizer.h"
#include "bench/exp_util.h"
#include "calculus/conjunctive_query.h"
#include "meta/view_store.h"
#include "parser/ast.h"

using namespace viewauth;

namespace {

constexpr const char* kColumns[] = {"A", "B", "C", "D"};

struct OracleView {
  std::set<int> targets;
  std::vector<std::tuple<int, Comparator, int64_t>> conditions;
};

bool RowSatisfies(const Tuple& row,
                  const std::vector<std::tuple<int, Comparator, int64_t>>&
                      conditions) {
  for (const auto& [column, op, bound] : conditions) {
    if (!row.at(column).Satisfies(op, Value::Int64(bound))) return false;
  }
  return true;
}

}  // namespace

int main() {
  exp::Checker checker("EXP-S1: randomized soundness campaign");
  std::mt19937 rng(2026);
  std::uniform_int_distribution<int> val(0, 7);
  std::uniform_int_distribution<int> rows(1, 14);
  std::uniform_int_distribution<int> col(0, 3);
  std::uniform_int_distribution<int> ncond(0, 2);
  std::uniform_int_distribution<int> nviews(1, 4);
  std::uniform_int_distribution<int> opd(0, 5);

  constexpr int kScenarios = 600;
  long long cells_checked = 0;
  long long scenarios_run = 0;
  long long violations = 0;

  for (int scenario = 0; scenario < kScenarios; ++scenario) {
    DatabaseInstance db;
    RelationSchema schema =
        RelationSchema::Make("R",
                             {{"A", ValueType::kInt64},
                              {"B", ValueType::kInt64},
                              {"C", ValueType::kInt64},
                              {"D", ValueType::kInt64}})
            .value();
    if (!db.CreateRelation(schema).ok()) return 1;
    for (int i = rows(rng); i > 0; --i) {
      (void)db.Insert("R", Tuple({Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng))}));
    }

    ViewCatalog catalog(&db.schema());
    std::vector<OracleView> oracle;
    const int view_count = nviews(rng);
    for (int v = 0; v < view_count; ++v) {
      OracleView view;
      while (view.targets.empty()) {
        for (int c = 0; c < 4; ++c) {
          if (rng() % 2 == 0) view.targets.insert(c);
        }
      }
      std::vector<AttributeRef> targets;
      for (int c : view.targets) {
        targets.push_back(AttributeRef{"R", 1, kColumns[c]});
      }
      std::vector<Condition> conditions;
      for (int i = ncond(rng); i > 0; --i) {
        int c = col(rng);
        Comparator op = static_cast<Comparator>(opd(rng));
        int64_t bound = val(rng);
        view.conditions.emplace_back(c, op, bound);
        Condition cond;
        cond.lhs = AttributeRef{"R", 1, kColumns[c]};
        cond.op = op;
        cond.rhs = ConditionOperand::Const(Value::Int64(bound));
        conditions.push_back(std::move(cond));
      }
      std::string name = "V" + std::to_string(v);
      auto query =
          ConjunctiveQuery::Build(db.schema(), name, targets, conditions);
      if (!query.ok()) continue;
      if (!catalog.DefineView(name, *query).ok()) continue;
      if (!catalog.Permit(name, "u").ok()) return 1;
      oracle.push_back(std::move(view));
    }

    // Random query.
    std::set<int> target_set;
    while (target_set.empty()) {
      for (int c = 0; c < 4; ++c) {
        if (rng() % 2 == 0) target_set.insert(c);
      }
    }
    std::vector<int> target_columns(target_set.begin(), target_set.end());
    std::vector<AttributeRef> targets;
    for (int c : target_columns) {
      targets.push_back(AttributeRef{"R", 1, kColumns[c]});
    }
    std::vector<Condition> conditions;
    std::vector<std::tuple<int, Comparator, int64_t>> raw_conditions;
    for (int i = ncond(rng); i > 0; --i) {
      int c = col(rng);
      Comparator op = static_cast<Comparator>(opd(rng));
      int64_t bound = val(rng);
      raw_conditions.emplace_back(c, op, bound);
      Condition cond;
      cond.lhs = AttributeRef{"R", 1, kColumns[c]};
      cond.op = op;
      cond.rhs = ConditionOperand::Const(Value::Int64(bound));
      conditions.push_back(std::move(cond));
    }
    auto query =
        ConjunctiveQuery::Build(db.schema(), "q", targets, conditions);
    if (!query.ok()) continue;

    // Random option combination (self-joins off: oracle models single
    // views; extended masks exercise the wide pipeline).
    AuthorizationOptions options;
    options.self_joins = false;
    options.four_case = rng() % 2 == 0;
    options.padding = rng() % 2 == 0;
    options.subsumption = rng() % 2 == 0;
    options.extended_masks = rng() % 2 == 0;
    options.use_optimized_data_plan = rng() % 2 == 0;
    options.use_latemat_data_plan = rng() % 2 == 0;
    options.use_vectorized_data_plan = rng() % 2 == 0;

    Authorizer authorizer(&db, &catalog);
    auto result = authorizer.Retrieve("u", *query, options);
    if (!result.ok()) {
      std::cerr << "retrieve failed: " << result.status() << "\n";
      return 1;
    }
    ++scenarios_run;

    const Relation* base = db.GetRelation("R").value();
    for (const Tuple& answer_row : result->answer.rows()) {
      for (size_t i = 0; i < target_columns.size(); ++i) {
        if (answer_row.at(static_cast<int>(i)).is_null()) continue;
        ++cells_checked;
        const int column = target_columns[i];
        bool justified = false;
        for (const Tuple& base_row : base->rows()) {
          bool projects = true;
          for (size_t j = 0; j < target_columns.size(); ++j) {
            const Value& cell = answer_row.at(static_cast<int>(j));
            if (cell.is_null()) continue;
            if (!(base_row.at(target_columns[j]) == cell)) {
              projects = false;
              break;
            }
          }
          if (!projects) continue;
          if (!RowSatisfies(base_row, raw_conditions)) continue;
          for (const OracleView& view : oracle) {
            if (!view.targets.contains(column)) continue;
            if (RowSatisfies(base_row, view.conditions)) {
              justified = true;
              break;
            }
          }
          if (justified) break;
        }
        if (!justified) ++violations;
      }
    }
  }

  std::cout << "scenarios run:   " << scenarios_run << "\n"
            << "cells checked:   " << cells_checked << "\n"
            << "violations:      " << violations << "\n\n";
  checker.Check("several hundred scenarios executed", scenarios_run >= 300);
  checker.Check("over a thousand delivered cells checked",
                cells_checked >= 1000);
  checker.CheckEq("zero soundness violations", violations, 0LL);

  // --- Phase 2: multi-relation join views. A user granted a two-table
  // join view and issuing queries inside that view must receive exactly
  // the brute-force result (soundness AND completeness for the "query is
  // a view of V" case the paper centers on).
  long long join_scenarios = 0;
  long long join_mismatches = 0;
  long long full_access_missed = 0;
  for (int scenario = 0; scenario < 200; ++scenario) {
    DatabaseInstance db;
    if (!db.CreateRelation(RelationSchema::Make(
                               "R1",
                               {{"K", ValueType::kInt64},
                                {"A", ValueType::kInt64}},
                               {0})
                               .value())
             .ok() ||
        !db.CreateRelation(RelationSchema::Make(
                               "R2",
                               {{"K", ValueType::kInt64},
                                {"B", ValueType::kInt64}},
                               {0})
                               .value())
             .ok()) {
      return 1;
    }
    std::set<int64_t> keys;
    for (int i = rows(rng); i > 0; --i) keys.insert(val(rng));
    for (int64_t k : keys) {
      (void)db.Insert("R1", Tuple({Value::Int64(k), Value::Int64(val(rng))}));
      if (rng() % 4 != 0) {  // some keys lack a partner row
        (void)db.Insert("R2",
                        Tuple({Value::Int64(k), Value::Int64(val(rng))}));
      }
    }

    const int64_t view_lo = val(rng);
    ViewCatalog catalog(&db.schema());
    {
      std::vector<AttributeRef> targets{AttributeRef{"R1", 1, "K"},
                                        AttributeRef{"R1", 1, "A"},
                                        AttributeRef{"R2", 1, "B"}};
      std::vector<Condition> conditions;
      Condition join;
      join.lhs = AttributeRef{"R1", 1, "K"};
      join.op = Comparator::kEq;
      join.rhs = ConditionOperand::Attr(AttributeRef{"R2", 1, "K"});
      conditions.push_back(join);
      Condition range;
      range.lhs = AttributeRef{"R1", 1, "A"};
      range.op = Comparator::kGe;
      range.rhs = ConditionOperand::Const(Value::Int64(view_lo));
      conditions.push_back(range);
      auto view = ConjunctiveQuery::Build(db.schema(), "VJ", targets,
                                          conditions);
      if (!view.ok() || !catalog.DefineView("VJ", *view).ok() ||
          !catalog.Permit("VJ", "u").ok()) {
        continue;
      }
    }

    // Query: the view narrowed by a random (>= view_lo) tighter bound.
    const int64_t query_lo = view_lo + (rng() % 3);
    std::vector<AttributeRef> targets{AttributeRef{"R1", 1, "K"},
                                      AttributeRef{"R1", 1, "A"},
                                      AttributeRef{"R2", 1, "B"}};
    std::vector<Condition> conditions;
    Condition join;
    join.lhs = AttributeRef{"R1", 1, "K"};
    join.op = Comparator::kEq;
    join.rhs = ConditionOperand::Attr(AttributeRef{"R2", 1, "K"});
    conditions.push_back(join);
    Condition range;
    range.lhs = AttributeRef{"R1", 1, "A"};
    range.op = Comparator::kGe;
    range.rhs = ConditionOperand::Const(Value::Int64(query_lo));
    conditions.push_back(range);
    auto query =
        ConjunctiveQuery::Build(db.schema(), "q", targets, conditions);
    if (!query.ok()) continue;

    Authorizer authorizer(&db, &catalog);
    auto result = authorizer.Retrieve("u", *query);
    if (!result.ok()) return 1;
    ++join_scenarios;

    // Brute-force expected result.
    Relation expected(result->raw_answer.schema());
    const Relation* r1 = db.GetRelation("R1").value();
    const Relation* r2 = db.GetRelation("R2").value();
    for (const Tuple& a : r1->rows()) {
      if (!a.at(1).Satisfies(Comparator::kGe, Value::Int64(query_lo))) {
        continue;
      }
      for (const Tuple& b : r2->rows()) {
        if (!(a.at(0) == b.at(0))) continue;
        expected.InsertUnchecked(Tuple({a.at(0), a.at(1), b.at(1)}));
      }
    }
    if (!result->full_access) ++full_access_missed;
    if (!result->answer.SameTuples(expected)) ++join_mismatches;
  }
  std::cout << "join scenarios:          " << join_scenarios << "\n"
            << "delivery mismatches:     " << join_mismatches << "\n"
            << "full-access not granted: " << full_access_missed << "\n\n";
  checker.Check("join scenarios executed", join_scenarios >= 150);
  checker.CheckEq("within-view join queries delivered exactly",
                  join_mismatches, 0LL);
  checker.CheckEq("within-view join queries get full access",
                  full_access_missed, 0LL);
  return checker.Finish();
}
