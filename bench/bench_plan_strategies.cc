// PERF-3: the paper's remark that the canonical products-then-selections
// strategy "is not necessarily optimal [...] for the actual relations,
// where optimality is essential, a different strategy may be
// implemented." Canonical versus optimized evaluation of the same join
// query; the gap widens quadratically with the row count.

#include <benchmark/benchmark.h>

#include "algebra/evaluator.h"
#include "algebra/optimizer.h"
#include "bench/bench_util.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;

ConjunctiveQuery JoinQuery(const bench_util::Workload& w) {
  return w.Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "500");
}

void BM_CanonicalPlan(benchmark::State& state) {
  auto w = MakeWorkload(2, static_cast<int>(state.range(0)), 1);
  ConjunctiveQuery query = JoinQuery(*w);
  for (auto _ : state) {
    auto answer = EvaluateCanonical(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CanonicalPlan)->RangeMultiplier(4)->Range(16, 1024);

void BM_OptimizedPlan(benchmark::State& state) {
  auto w = MakeWorkload(2, static_cast<int>(state.range(0)), 1);
  ConjunctiveQuery query = JoinQuery(*w);
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OptimizedPlan)->RangeMultiplier(4)->Range(16, 1024);

// The same contrast on the meta side is irrelevant: meta-relations hold a
// handful of tuples, which is why the paper keeps the simple strategy
// there. This benchmark quantifies the claim by timing the canonical
// meta-pipeline against the number of permitted views.
void BM_MetaCanonicalPipeline(benchmark::State& state) {
  auto w = MakeWorkload(2, /*rows=*/4,
                        /*views_per_relation=*/static_cast<int>(state.range(0)),
                        /*join_views=*/true);
  ConjunctiveQuery query = JoinQuery(*w);
  for (auto _ : state) {
    auto mask = w->authorizer->DeriveMask("u", query);
    benchmark::DoNotOptimize(mask);
  }
  state.counters["views_per_relation"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetaCanonicalPipeline)->RangeMultiplier(2)->Range(1, 16);

// Index probe vs full scan: an equality-with-constant selection uses
// the relation's lazy hash index; compare against the canonical scan at
// growing row counts.
void BM_IndexedPointQuery(benchmark::State& state) {
  auto w = MakeWorkload(1, static_cast<int>(state.range(0)), 0);
  ConjunctiveQuery query =
      w->Query("retrieve (R0.A, R0.B) where R0.KEY = 7");
  // Warm the lazy index outside the timed region.
  auto warm = EvaluateOptimized(query, w->db);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IndexedPointQuery)->RangeMultiplier(4)->Range(256, 16384);

void BM_ScanPointQuery(benchmark::State& state) {
  auto w = MakeWorkload(1, static_cast<int>(state.range(0)), 0);
  // A >= / <= pair pins the same key without triggering the index path.
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.A, R0.B) where R0.KEY >= 7 and R0.KEY <= 7");
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanPointQuery)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace
}  // namespace viewauth

BENCHMARK_MAIN();
