// EXP-X1: the paper's conclusion (3), implemented: "the algorithm yields
// only permitted views (masks) that can be expressed with the attributes
// requested. It should be possible to extend our methods to deliver
// views that are expressed with additional attributes."
//
// Scenario: Brown asks for project NUMBERs only. His PSA view restricts
// SPONSOR = Acme — an attribute he did not request. The base algorithm
// must deny (Definition 3 discards the mask at the projection); the
// extension keeps the restriction as a row filter, delivers Acme's
// project numbers, and names the extra attribute in the permit.

#include <iostream>

#include "bench/exp_util.h"
#include "engine/table_printer.h"

using namespace viewauth;
using testing_util::PaperDatabase;

int main() {
  exp::Checker checker(
      "EXP-X1: masks with additional attributes (conclusion (3))");
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query("retrieve (PROJECT.NUMBER)");

  auto base = authorizer.Retrieve("Brown", query);
  if (!base.ok()) {
    std::cerr << base.status() << "\n";
    return 1;
  }
  std::cout << "base algorithm: "
            << (base->denied ? "permission denied" : "delivered") << "\n";
  checker.Check("base algorithm denies (mask not expressible)",
                base->denied);

  AuthorizationOptions options;
  options.extended_masks = true;
  auto extended = authorizer.Retrieve("Brown", query, options);
  if (!extended.ok()) {
    std::cerr << extended.status() << "\n";
    return 1;
  }
  auto namer = [&fixture](VarId v) { return fixture.catalog().VarName(v); };
  std::cout << "extended wide mask:\n"
            << extended->mask.ToString(namer) << "\n";
  TablePrintOptions opts;
  opts.caption = "extended delivery:";
  std::cout << PrintRelation(extended->answer, opts);
  for (const InferredPermit& permit : extended->permits) {
    std::cout << permit.ToString() << "\n";
  }
  std::cout << "\n";

  checker.Check("extension delivers", !extended->denied);
  checker.CheckEq("one row (Acme's project)", extended->answer.size(), 1);
  checker.Check("the row is bq-45",
                extended->answer.Contains(Tuple({Value::String("bq-45")})));
  checker.CheckEq("permit names the additional attribute",
                  extended->permits.empty()
                      ? std::string()
                      : extended->permits[0].ToString(),
                  std::string("permit (NUMBER) where SPONSOR = Acme"));

  // Sanity: on the paper's own examples the extension changes nothing.
  ConjunctiveQuery example1 = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000");
  auto base1 = authorizer.Retrieve("Brown", example1);
  auto ext1 = authorizer.Retrieve("Brown", example1, options);
  checker.Check("Example 1 unchanged under the extension",
                base1.ok() && ext1.ok() &&
                    base1->answer.SameTuples(ext1->answer));
  return checker.Finish();
}
