// PERF-5: the end-to-end overhead of authorization. A full authorized
// retrieve (mask derivation + data evaluation + masking + permit
// inference) against the bare unauthorized evaluation of the same query,
// plus the mask-cache ablation: repeated same-user retrieves with the
// authorization cache on vs off. Besides the google-benchmark output,
// the binary writes BENCH_mask_cache.json with the cached/uncached
// comparison and the cache counters behind it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "algebra/optimizer.h"
#include "bench/bench_util.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;

void BM_AuthorizedRetrieve(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto result = w->authorizer->Retrieve("u", query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AuthorizedRetrieve)->RangeMultiplier(4)->Range(64, 4096);

void BM_UnauthorizedEvaluation(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UnauthorizedEvaluation)->RangeMultiplier(4)->Range(64, 4096);

// Repeated same-user retrieves: after the first run fills the prepared
// and mask caches, later runs skip S' entirely.
void BM_RepeatedRetrieveCached(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  AuthorizationOptions options;
  for (auto _ : state) {
    auto result = w->authorizer->Retrieve("u", query, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RepeatedRetrieveCached)->RangeMultiplier(4)->Range(64, 4096);

void BM_RepeatedRetrieveUncached(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  AuthorizationOptions options;
  options.enable_authz_cache = false;
  for (auto _ : state) {
    auto result = w->authorizer->Retrieve("u", query, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RepeatedRetrieveUncached)->RangeMultiplier(4)->Range(64, 4096);

void BM_EngineStatementRoundTrip(benchmark::State& state) {
  // Full front-end path: parse, authorize, evaluate, mask, render.
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    permit SAE to Brown
  )");
  VIEWAUTH_CHECK(setup.ok());
  for (int i = 0; i < 256; ++i) {
    VIEWAUTH_CHECK(engine
                       .Execute("insert into EMPLOYEE values (e" +
                                std::to_string(i) + ", t, " +
                                std::to_string(20000 + i) + ")")
                       .ok());
  }
  for (auto _ : state) {
    auto out = engine.Execute(
        "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EngineStatementRoundTrip);

// The committed report: N repeated same-user retrieves, uncached vs
// cached, with the cache counters that explain the difference.
void WriteMaskCacheReport(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kRelations = 2;
  constexpr int kRows = 512;
  constexpr int kViewsPerRelation = 2;
  constexpr int kIterations = 200;

  auto w = MakeWorkload(kRelations, kRows, kViewsPerRelation,
                        /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");

  auto run = [&](const AuthorizationOptions& options) -> long long {
    const auto start = Clock::now();
    for (int i = 0; i < kIterations; ++i) {
      auto result = w->authorizer->Retrieve("u", query, options);
      VIEWAUTH_CHECK(result.ok()) << result.status().ToString();
      benchmark::DoNotOptimize(result);
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start)
        .count();
  };

  AuthorizationOptions uncached;
  uncached.enable_authz_cache = false;
  const long long uncached_micros = run(uncached);

  w->cache.ResetStats();
  AuthorizationOptions cached;  // defaults: cache + parallel on
  const long long cached_micros = run(cached);
  const AuthzStats stats = w->cache.Snapshot();

  const double speedup =
      cached_micros > 0
          ? static_cast<double>(uncached_micros) / cached_micros
          : 0.0;

  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"repeated same-user authorized retrieve\",\n"
      << "  \"workload\": {\"relations\": " << kRelations
      << ", \"rows\": " << kRows
      << ", \"views_per_relation\": " << kViewsPerRelation
      << ", \"join_views\": true},\n"
      << "  \"query\": \"retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = "
         "R1.KEY and R0.A >= 150\",\n"
      << "  \"iterations\": " << kIterations << ",\n"
      << "  \"uncached_total_micros\": " << uncached_micros << ",\n"
      << "  \"cached_total_micros\": " << cached_micros << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"cached_run_stats\": {\n"
      << "    \"retrieves\": " << stats.retrieves << ",\n"
      << "    \"parallel_retrieves\": " << stats.parallel_retrieves << ",\n"
      << "    \"prepared_hits\": " << stats.prepared_hits << ",\n"
      << "    \"prepared_misses\": " << stats.prepared_misses << ",\n"
      << "    \"mask_hits\": " << stats.mask_hits << ",\n"
      << "    \"mask_misses\": " << stats.mask_misses << ",\n"
      << "    \"invalidations\": " << stats.invalidations << ",\n"
      << "    \"meta_tuples_pruned\": " << stats.meta_tuples_pruned << ",\n"
      << "    \"mask_derivation_micros\": " << stats.mask_derivation_micros
      << ",\n"
      << "    \"data_eval_micros\": " << stats.data_eval_micros << ",\n"
      << "    \"mask_apply_micros\": " << stats.mask_apply_micros << ",\n"
      << "    \"total_micros\": " << stats.total_micros << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << path << ": uncached=" << uncached_micros
            << "us cached=" << cached_micros << "us speedup=" << speedup
            << "x\n";
}

}  // namespace
}  // namespace viewauth

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  viewauth::WriteMaskCacheReport("BENCH_mask_cache.json");
  return 0;
}
