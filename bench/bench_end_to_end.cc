// PERF-5: the end-to-end overhead of authorization. A full authorized
// retrieve (mask derivation + data evaluation + masking + permit
// inference) against the bare unauthorized evaluation of the same query.

#include <benchmark/benchmark.h>

#include "algebra/optimizer.h"
#include "bench/bench_util.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

using bench_util::MakeWorkload;

void BM_AuthorizedRetrieve(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto result = w->authorizer->Retrieve("u", query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AuthorizedRetrieve)->RangeMultiplier(4)->Range(64, 4096);

void BM_UnauthorizedEvaluation(benchmark::State& state) {
  auto w = MakeWorkload(/*relations=*/2,
                        /*rows=*/static_cast<int>(state.range(0)),
                        /*views_per_relation=*/2, /*join_views=*/true);
  ConjunctiveQuery query = w->Query(
      "retrieve (R0.KEY, R0.A, R1.B) where R0.KEY = R1.KEY and R0.A >= "
      "150");
  for (auto _ : state) {
    auto answer = EvaluateOptimized(query, w->db);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UnauthorizedEvaluation)->RangeMultiplier(4)->Range(64, 4096);

void BM_EngineStatementRoundTrip(benchmark::State& state) {
  // Full front-end path: parse, authorize, evaluate, mask, render.
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    permit SAE to Brown
  )");
  VIEWAUTH_CHECK(setup.ok());
  for (int i = 0; i < 256; ++i) {
    VIEWAUTH_CHECK(engine
                       .Execute("insert into EMPLOYEE values (e" +
                                std::to_string(i) + ", t, " +
                                std::to_string(20000 + i) + ")")
                       .ok());
  }
  for (auto _ : state) {
    auto out = engine.Execute(
        "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EngineStatementRoundTrip);

}  // namespace
}  // namespace viewauth

BENCHMARK_MAIN();
