file(REMOVE_RECURSE
  "CMakeFiles/multiuser_audit.dir/multiuser_audit.cpp.o"
  "CMakeFiles/multiuser_audit.dir/multiuser_audit.cpp.o.d"
  "multiuser_audit"
  "multiuser_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
