# Empty dependencies file for multiuser_audit.
# This may be replaced when dependencies are built.
