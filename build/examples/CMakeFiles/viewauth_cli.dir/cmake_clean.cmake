file(REMOVE_RECURSE
  "CMakeFiles/viewauth_cli.dir/viewauth_cli.cpp.o"
  "CMakeFiles/viewauth_cli.dir/viewauth_cli.cpp.o.d"
  "viewauth_cli"
  "viewauth_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
