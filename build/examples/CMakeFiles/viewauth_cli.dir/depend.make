# Empty dependencies file for viewauth_cli.
# This may be replaced when dependencies are built.
