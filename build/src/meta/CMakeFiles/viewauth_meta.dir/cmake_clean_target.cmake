file(REMOVE_RECURSE
  "libviewauth_meta.a"
)
