file(REMOVE_RECURSE
  "CMakeFiles/viewauth_meta.dir/meta_tuple.cc.o"
  "CMakeFiles/viewauth_meta.dir/meta_tuple.cc.o.d"
  "CMakeFiles/viewauth_meta.dir/ops.cc.o"
  "CMakeFiles/viewauth_meta.dir/ops.cc.o.d"
  "CMakeFiles/viewauth_meta.dir/self_join.cc.o"
  "CMakeFiles/viewauth_meta.dir/self_join.cc.o.d"
  "CMakeFiles/viewauth_meta.dir/view_store.cc.o"
  "CMakeFiles/viewauth_meta.dir/view_store.cc.o.d"
  "libviewauth_meta.a"
  "libviewauth_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
