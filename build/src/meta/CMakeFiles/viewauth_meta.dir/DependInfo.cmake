
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/meta_tuple.cc" "src/meta/CMakeFiles/viewauth_meta.dir/meta_tuple.cc.o" "gcc" "src/meta/CMakeFiles/viewauth_meta.dir/meta_tuple.cc.o.d"
  "/root/repo/src/meta/ops.cc" "src/meta/CMakeFiles/viewauth_meta.dir/ops.cc.o" "gcc" "src/meta/CMakeFiles/viewauth_meta.dir/ops.cc.o.d"
  "/root/repo/src/meta/self_join.cc" "src/meta/CMakeFiles/viewauth_meta.dir/self_join.cc.o" "gcc" "src/meta/CMakeFiles/viewauth_meta.dir/self_join.cc.o.d"
  "/root/repo/src/meta/view_store.cc" "src/meta/CMakeFiles/viewauth_meta.dir/view_store.cc.o" "gcc" "src/meta/CMakeFiles/viewauth_meta.dir/view_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calculus/CMakeFiles/viewauth_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/viewauth_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/viewauth_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/viewauth_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/viewauth_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/viewauth_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/viewauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
