# Empty dependencies file for viewauth_meta.
# This may be replaced when dependencies are built.
