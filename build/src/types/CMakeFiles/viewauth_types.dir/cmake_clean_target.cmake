file(REMOVE_RECURSE
  "libviewauth_types.a"
)
