# Empty dependencies file for viewauth_types.
# This may be replaced when dependencies are built.
