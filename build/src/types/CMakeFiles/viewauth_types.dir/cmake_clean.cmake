file(REMOVE_RECURSE
  "CMakeFiles/viewauth_types.dir/value.cc.o"
  "CMakeFiles/viewauth_types.dir/value.cc.o.d"
  "libviewauth_types.a"
  "libviewauth_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
