file(REMOVE_RECURSE
  "CMakeFiles/viewauth_predicate.dir/constraint.cc.o"
  "CMakeFiles/viewauth_predicate.dir/constraint.cc.o.d"
  "CMakeFiles/viewauth_predicate.dir/predicate.cc.o"
  "CMakeFiles/viewauth_predicate.dir/predicate.cc.o.d"
  "libviewauth_predicate.a"
  "libviewauth_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
