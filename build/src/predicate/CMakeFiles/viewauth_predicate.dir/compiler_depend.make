# Empty compiler generated dependencies file for viewauth_predicate.
# This may be replaced when dependencies are built.
