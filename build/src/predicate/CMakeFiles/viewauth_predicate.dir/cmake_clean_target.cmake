file(REMOVE_RECURSE
  "libviewauth_predicate.a"
)
