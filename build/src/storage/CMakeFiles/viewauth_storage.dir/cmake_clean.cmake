file(REMOVE_RECURSE
  "CMakeFiles/viewauth_storage.dir/relation.cc.o"
  "CMakeFiles/viewauth_storage.dir/relation.cc.o.d"
  "CMakeFiles/viewauth_storage.dir/tuple.cc.o"
  "CMakeFiles/viewauth_storage.dir/tuple.cc.o.d"
  "libviewauth_storage.a"
  "libviewauth_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
