# Empty dependencies file for viewauth_storage.
# This may be replaced when dependencies are built.
