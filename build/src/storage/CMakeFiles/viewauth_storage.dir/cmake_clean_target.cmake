file(REMOVE_RECURSE
  "libviewauth_storage.a"
)
