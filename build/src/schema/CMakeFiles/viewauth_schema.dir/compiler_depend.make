# Empty compiler generated dependencies file for viewauth_schema.
# This may be replaced when dependencies are built.
