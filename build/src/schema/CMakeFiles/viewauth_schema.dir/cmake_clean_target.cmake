file(REMOVE_RECURSE
  "libviewauth_schema.a"
)
