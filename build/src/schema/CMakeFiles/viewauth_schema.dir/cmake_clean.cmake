file(REMOVE_RECURSE
  "CMakeFiles/viewauth_schema.dir/schema.cc.o"
  "CMakeFiles/viewauth_schema.dir/schema.cc.o.d"
  "libviewauth_schema.a"
  "libviewauth_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
