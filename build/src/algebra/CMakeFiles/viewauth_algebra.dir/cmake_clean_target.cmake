file(REMOVE_RECURSE
  "libviewauth_algebra.a"
)
