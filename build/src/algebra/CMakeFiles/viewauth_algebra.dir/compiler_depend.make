# Empty compiler generated dependencies file for viewauth_algebra.
# This may be replaced when dependencies are built.
