file(REMOVE_RECURSE
  "CMakeFiles/viewauth_algebra.dir/evaluator.cc.o"
  "CMakeFiles/viewauth_algebra.dir/evaluator.cc.o.d"
  "CMakeFiles/viewauth_algebra.dir/optimizer.cc.o"
  "CMakeFiles/viewauth_algebra.dir/optimizer.cc.o.d"
  "CMakeFiles/viewauth_algebra.dir/plan.cc.o"
  "CMakeFiles/viewauth_algebra.dir/plan.cc.o.d"
  "libviewauth_algebra.a"
  "libviewauth_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
