file(REMOVE_RECURSE
  "libviewauth_calculus.a"
)
