# Empty dependencies file for viewauth_calculus.
# This may be replaced when dependencies are built.
