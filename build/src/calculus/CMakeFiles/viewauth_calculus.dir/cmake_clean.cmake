file(REMOVE_RECURSE
  "CMakeFiles/viewauth_calculus.dir/conjunctive_query.cc.o"
  "CMakeFiles/viewauth_calculus.dir/conjunctive_query.cc.o.d"
  "libviewauth_calculus.a"
  "libviewauth_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
