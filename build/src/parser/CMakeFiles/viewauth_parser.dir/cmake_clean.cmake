file(REMOVE_RECURSE
  "CMakeFiles/viewauth_parser.dir/ast.cc.o"
  "CMakeFiles/viewauth_parser.dir/ast.cc.o.d"
  "CMakeFiles/viewauth_parser.dir/lexer.cc.o"
  "CMakeFiles/viewauth_parser.dir/lexer.cc.o.d"
  "CMakeFiles/viewauth_parser.dir/parser.cc.o"
  "CMakeFiles/viewauth_parser.dir/parser.cc.o.d"
  "libviewauth_parser.a"
  "libviewauth_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
