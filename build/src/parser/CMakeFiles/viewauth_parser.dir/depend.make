# Empty dependencies file for viewauth_parser.
# This may be replaced when dependencies are built.
