file(REMOVE_RECURSE
  "libviewauth_parser.a"
)
