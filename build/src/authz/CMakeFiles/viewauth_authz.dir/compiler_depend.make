# Empty compiler generated dependencies file for viewauth_authz.
# This may be replaced when dependencies are built.
