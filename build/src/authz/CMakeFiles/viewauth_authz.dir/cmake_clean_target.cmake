file(REMOVE_RECURSE
  "libviewauth_authz.a"
)
