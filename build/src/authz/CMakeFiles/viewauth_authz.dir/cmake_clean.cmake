file(REMOVE_RECURSE
  "CMakeFiles/viewauth_authz.dir/audit_log.cc.o"
  "CMakeFiles/viewauth_authz.dir/audit_log.cc.o.d"
  "CMakeFiles/viewauth_authz.dir/authorizer.cc.o"
  "CMakeFiles/viewauth_authz.dir/authorizer.cc.o.d"
  "CMakeFiles/viewauth_authz.dir/update_guard.cc.o"
  "CMakeFiles/viewauth_authz.dir/update_guard.cc.o.d"
  "libviewauth_authz.a"
  "libviewauth_authz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_authz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
