file(REMOVE_RECURSE
  "CMakeFiles/viewauth_baselines.dir/ingres/query_modification.cc.o"
  "CMakeFiles/viewauth_baselines.dir/ingres/query_modification.cc.o.d"
  "CMakeFiles/viewauth_baselines.dir/systemr/grant_table.cc.o"
  "CMakeFiles/viewauth_baselines.dir/systemr/grant_table.cc.o.d"
  "libviewauth_baselines.a"
  "libviewauth_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
