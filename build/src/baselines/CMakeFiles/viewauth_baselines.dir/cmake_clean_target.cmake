file(REMOVE_RECURSE
  "libviewauth_baselines.a"
)
