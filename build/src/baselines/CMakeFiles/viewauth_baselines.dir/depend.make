# Empty dependencies file for viewauth_baselines.
# This may be replaced when dependencies are built.
