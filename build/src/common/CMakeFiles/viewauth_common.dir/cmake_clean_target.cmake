file(REMOVE_RECURSE
  "libviewauth_common.a"
)
