# Empty dependencies file for viewauth_common.
# This may be replaced when dependencies are built.
