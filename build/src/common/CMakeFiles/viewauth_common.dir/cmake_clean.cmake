file(REMOVE_RECURSE
  "CMakeFiles/viewauth_common.dir/logging.cc.o"
  "CMakeFiles/viewauth_common.dir/logging.cc.o.d"
  "CMakeFiles/viewauth_common.dir/status.cc.o"
  "CMakeFiles/viewauth_common.dir/status.cc.o.d"
  "CMakeFiles/viewauth_common.dir/str_util.cc.o"
  "CMakeFiles/viewauth_common.dir/str_util.cc.o.d"
  "libviewauth_common.a"
  "libviewauth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
