file(REMOVE_RECURSE
  "libviewauth_engine.a"
)
