file(REMOVE_RECURSE
  "CMakeFiles/viewauth_engine.dir/durable.cc.o"
  "CMakeFiles/viewauth_engine.dir/durable.cc.o.d"
  "CMakeFiles/viewauth_engine.dir/engine.cc.o"
  "CMakeFiles/viewauth_engine.dir/engine.cc.o.d"
  "CMakeFiles/viewauth_engine.dir/table_printer.cc.o"
  "CMakeFiles/viewauth_engine.dir/table_printer.cc.o.d"
  "libviewauth_engine.a"
  "libviewauth_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewauth_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
