# Empty dependencies file for viewauth_engine.
# This may be replaced when dependencies are built.
