# Empty compiler generated dependencies file for exp_refine_selection.
# This may be replaced when dependencies are built.
