file(REMOVE_RECURSE
  "CMakeFiles/exp_refine_selection.dir/exp_refine_selection.cc.o"
  "CMakeFiles/exp_refine_selection.dir/exp_refine_selection.cc.o.d"
  "exp_refine_selection"
  "exp_refine_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_refine_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
