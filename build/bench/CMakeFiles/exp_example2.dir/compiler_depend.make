# Empty compiler generated dependencies file for exp_example2.
# This may be replaced when dependencies are built.
