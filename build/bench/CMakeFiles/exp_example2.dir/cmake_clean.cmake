file(REMOVE_RECURSE
  "CMakeFiles/exp_example2.dir/exp_example2.cc.o"
  "CMakeFiles/exp_example2.dir/exp_example2.cc.o.d"
  "exp_example2"
  "exp_example2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_example2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
