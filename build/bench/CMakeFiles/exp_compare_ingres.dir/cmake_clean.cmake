file(REMOVE_RECURSE
  "CMakeFiles/exp_compare_ingres.dir/exp_compare_ingres.cc.o"
  "CMakeFiles/exp_compare_ingres.dir/exp_compare_ingres.cc.o.d"
  "exp_compare_ingres"
  "exp_compare_ingres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_compare_ingres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
