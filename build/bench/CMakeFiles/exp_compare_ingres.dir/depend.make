# Empty dependencies file for exp_compare_ingres.
# This may be replaced when dependencies are built.
