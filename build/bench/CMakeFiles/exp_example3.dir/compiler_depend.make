# Empty compiler generated dependencies file for exp_example3.
# This may be replaced when dependencies are built.
