file(REMOVE_RECURSE
  "CMakeFiles/exp_example3.dir/exp_example3.cc.o"
  "CMakeFiles/exp_example3.dir/exp_example3.cc.o.d"
  "exp_example3"
  "exp_example3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_example3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
