file(REMOVE_RECURSE
  "CMakeFiles/exp_example1.dir/exp_example1.cc.o"
  "CMakeFiles/exp_example1.dir/exp_example1.cc.o.d"
  "exp_example1"
  "exp_example1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_example1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
