# Empty compiler generated dependencies file for exp_example1.
# This may be replaced when dependencies are built.
