file(REMOVE_RECURSE
  "CMakeFiles/bench_meta_vs_data.dir/bench_meta_vs_data.cc.o"
  "CMakeFiles/bench_meta_vs_data.dir/bench_meta_vs_data.cc.o.d"
  "bench_meta_vs_data"
  "bench_meta_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meta_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
