# Empty dependencies file for bench_meta_vs_data.
# This may be replaced when dependencies are built.
