# Empty dependencies file for bench_plan_strategies.
# This may be replaced when dependencies are built.
