file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_strategies.dir/bench_plan_strategies.cc.o"
  "CMakeFiles/bench_plan_strategies.dir/bench_plan_strategies.cc.o.d"
  "bench_plan_strategies"
  "bench_plan_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
