# Empty dependencies file for bench_mask_apply.
# This may be replaced when dependencies are built.
