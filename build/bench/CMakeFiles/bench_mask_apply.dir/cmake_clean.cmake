file(REMOVE_RECURSE
  "CMakeFiles/bench_mask_apply.dir/bench_mask_apply.cc.o"
  "CMakeFiles/bench_mask_apply.dir/bench_mask_apply.cc.o.d"
  "bench_mask_apply"
  "bench_mask_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mask_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
