# Empty dependencies file for exp_disjunctive_views.
# This may be replaced when dependencies are built.
