file(REMOVE_RECURSE
  "CMakeFiles/exp_disjunctive_views.dir/exp_disjunctive_views.cc.o"
  "CMakeFiles/exp_disjunctive_views.dir/exp_disjunctive_views.cc.o.d"
  "exp_disjunctive_views"
  "exp_disjunctive_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_disjunctive_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
