# Empty dependencies file for exp_ext_masks.
# This may be replaced when dependencies are built.
