file(REMOVE_RECURSE
  "CMakeFiles/exp_ext_masks.dir/exp_ext_masks.cc.o"
  "CMakeFiles/exp_ext_masks.dir/exp_ext_masks.cc.o.d"
  "exp_ext_masks"
  "exp_ext_masks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ext_masks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
