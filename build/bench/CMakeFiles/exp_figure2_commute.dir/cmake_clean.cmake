file(REMOVE_RECURSE
  "CMakeFiles/exp_figure2_commute.dir/exp_figure2_commute.cc.o"
  "CMakeFiles/exp_figure2_commute.dir/exp_figure2_commute.cc.o.d"
  "exp_figure2_commute"
  "exp_figure2_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_figure2_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
