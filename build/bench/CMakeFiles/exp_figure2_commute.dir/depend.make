# Empty dependencies file for exp_figure2_commute.
# This may be replaced when dependencies are built.
