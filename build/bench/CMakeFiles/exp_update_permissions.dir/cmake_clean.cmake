file(REMOVE_RECURSE
  "CMakeFiles/exp_update_permissions.dir/exp_update_permissions.cc.o"
  "CMakeFiles/exp_update_permissions.dir/exp_update_permissions.cc.o.d"
  "exp_update_permissions"
  "exp_update_permissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_update_permissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
