# Empty compiler generated dependencies file for exp_update_permissions.
# This may be replaced when dependencies are built.
