file(REMOVE_RECURSE
  "CMakeFiles/exp_compare_systemr.dir/exp_compare_systemr.cc.o"
  "CMakeFiles/exp_compare_systemr.dir/exp_compare_systemr.cc.o.d"
  "exp_compare_systemr"
  "exp_compare_systemr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_compare_systemr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
