# Empty dependencies file for exp_compare_systemr.
# This may be replaced when dependencies are built.
