# Empty dependencies file for exp_refine_padding.
# This may be replaced when dependencies are built.
