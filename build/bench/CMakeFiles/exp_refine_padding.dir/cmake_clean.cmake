file(REMOVE_RECURSE
  "CMakeFiles/exp_refine_padding.dir/exp_refine_padding.cc.o"
  "CMakeFiles/exp_refine_padding.dir/exp_refine_padding.cc.o.d"
  "exp_refine_padding"
  "exp_refine_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_refine_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
