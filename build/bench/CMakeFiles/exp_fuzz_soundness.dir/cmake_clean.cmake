file(REMOVE_RECURSE
  "CMakeFiles/exp_fuzz_soundness.dir/exp_fuzz_soundness.cc.o"
  "CMakeFiles/exp_fuzz_soundness.dir/exp_fuzz_soundness.cc.o.d"
  "exp_fuzz_soundness"
  "exp_fuzz_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fuzz_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
