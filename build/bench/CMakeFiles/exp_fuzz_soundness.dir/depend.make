# Empty dependencies file for exp_fuzz_soundness.
# This may be replaced when dependencies are built.
