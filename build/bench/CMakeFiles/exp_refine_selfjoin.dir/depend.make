# Empty dependencies file for exp_refine_selfjoin.
# This may be replaced when dependencies are built.
