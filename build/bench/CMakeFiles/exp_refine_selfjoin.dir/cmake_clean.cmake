file(REMOVE_RECURSE
  "CMakeFiles/exp_refine_selfjoin.dir/exp_refine_selfjoin.cc.o"
  "CMakeFiles/exp_refine_selfjoin.dir/exp_refine_selfjoin.cc.o.d"
  "exp_refine_selfjoin"
  "exp_refine_selfjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_refine_selfjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
