file(REMOVE_RECURSE
  "CMakeFiles/exp_figure1.dir/exp_figure1.cc.o"
  "CMakeFiles/exp_figure1.dir/exp_figure1.cc.o.d"
  "exp_figure1"
  "exp_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
