# Empty compiler generated dependencies file for exp_figure1.
# This may be replaced when dependencies are built.
