# Empty compiler generated dependencies file for bench_mask_scaling.
# This may be replaced when dependencies are built.
