file(REMOVE_RECURSE
  "CMakeFiles/bench_mask_scaling.dir/bench_mask_scaling.cc.o"
  "CMakeFiles/bench_mask_scaling.dir/bench_mask_scaling.cc.o.d"
  "bench_mask_scaling"
  "bench_mask_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mask_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
