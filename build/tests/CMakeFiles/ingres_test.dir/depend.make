# Empty dependencies file for ingres_test.
# This may be replaced when dependencies are built.
