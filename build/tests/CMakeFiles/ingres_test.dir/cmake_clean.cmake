file(REMOVE_RECURSE
  "CMakeFiles/ingres_test.dir/ingres_test.cc.o"
  "CMakeFiles/ingres_test.dir/ingres_test.cc.o.d"
  "ingres_test"
  "ingres_test.pdb"
  "ingres_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
