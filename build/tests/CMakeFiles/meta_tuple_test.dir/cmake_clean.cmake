file(REMOVE_RECURSE
  "CMakeFiles/meta_tuple_test.dir/meta_tuple_test.cc.o"
  "CMakeFiles/meta_tuple_test.dir/meta_tuple_test.cc.o.d"
  "meta_tuple_test"
  "meta_tuple_test.pdb"
  "meta_tuple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
