# Empty dependencies file for meta_tuple_test.
# This may be replaced when dependencies are built.
