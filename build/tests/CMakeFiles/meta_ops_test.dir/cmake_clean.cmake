file(REMOVE_RECURSE
  "CMakeFiles/meta_ops_test.dir/meta_ops_test.cc.o"
  "CMakeFiles/meta_ops_test.dir/meta_ops_test.cc.o.d"
  "meta_ops_test"
  "meta_ops_test.pdb"
  "meta_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
