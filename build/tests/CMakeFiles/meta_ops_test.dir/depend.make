# Empty dependencies file for meta_ops_test.
# This may be replaced when dependencies are built.
