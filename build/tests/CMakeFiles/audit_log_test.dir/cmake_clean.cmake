file(REMOVE_RECURSE
  "CMakeFiles/audit_log_test.dir/audit_log_test.cc.o"
  "CMakeFiles/audit_log_test.dir/audit_log_test.cc.o.d"
  "audit_log_test"
  "audit_log_test.pdb"
  "audit_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
