# Empty compiler generated dependencies file for meta_ops_base_mode_test.
# This may be replaced when dependencies are built.
