file(REMOVE_RECURSE
  "CMakeFiles/disjunctive_retrieve_test.dir/disjunctive_retrieve_test.cc.o"
  "CMakeFiles/disjunctive_retrieve_test.dir/disjunctive_retrieve_test.cc.o.d"
  "disjunctive_retrieve_test"
  "disjunctive_retrieve_test.pdb"
  "disjunctive_retrieve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjunctive_retrieve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
