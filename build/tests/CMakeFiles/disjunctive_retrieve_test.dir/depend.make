# Empty dependencies file for disjunctive_retrieve_test.
# This may be replaced when dependencies are built.
