file(REMOVE_RECURSE
  "CMakeFiles/disjunctive_views_test.dir/disjunctive_views_test.cc.o"
  "CMakeFiles/disjunctive_views_test.dir/disjunctive_views_test.cc.o.d"
  "disjunctive_views_test"
  "disjunctive_views_test.pdb"
  "disjunctive_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjunctive_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
