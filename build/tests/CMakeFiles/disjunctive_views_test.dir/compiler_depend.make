# Empty compiler generated dependencies file for disjunctive_views_test.
# This may be replaced when dependencies are built.
