
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/viewauth_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/viewauth_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/authz/CMakeFiles/viewauth_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/viewauth_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/viewauth_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/viewauth_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/viewauth_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/viewauth_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/viewauth_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/viewauth_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/viewauth_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/viewauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
