file(REMOVE_RECURSE
  "CMakeFiles/extended_masks_test.dir/extended_masks_test.cc.o"
  "CMakeFiles/extended_masks_test.dir/extended_masks_test.cc.o.d"
  "extended_masks_test"
  "extended_masks_test.pdb"
  "extended_masks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_masks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
