file(REMOVE_RECURSE
  "CMakeFiles/update_guard_test.dir/update_guard_test.cc.o"
  "CMakeFiles/update_guard_test.dir/update_guard_test.cc.o.d"
  "update_guard_test"
  "update_guard_test.pdb"
  "update_guard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
