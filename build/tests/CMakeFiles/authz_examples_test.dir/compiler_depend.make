# Empty compiler generated dependencies file for authz_examples_test.
# This may be replaced when dependencies are built.
