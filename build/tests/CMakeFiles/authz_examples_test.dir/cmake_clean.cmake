file(REMOVE_RECURSE
  "CMakeFiles/authz_examples_test.dir/authz_examples_test.cc.o"
  "CMakeFiles/authz_examples_test.dir/authz_examples_test.cc.o.d"
  "authz_examples_test"
  "authz_examples_test.pdb"
  "authz_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
