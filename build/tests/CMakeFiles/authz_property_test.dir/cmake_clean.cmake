file(REMOVE_RECURSE
  "CMakeFiles/authz_property_test.dir/authz_property_test.cc.o"
  "CMakeFiles/authz_property_test.dir/authz_property_test.cc.o.d"
  "authz_property_test"
  "authz_property_test.pdb"
  "authz_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
