# Empty dependencies file for authz_property_test.
# This may be replaced when dependencies are built.
