# Empty dependencies file for drop_test.
# This may be replaced when dependencies are built.
