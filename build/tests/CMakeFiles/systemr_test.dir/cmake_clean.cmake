file(REMOVE_RECURSE
  "CMakeFiles/systemr_test.dir/systemr_test.cc.o"
  "CMakeFiles/systemr_test.dir/systemr_test.cc.o.d"
  "systemr_test"
  "systemr_test.pdb"
  "systemr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systemr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
