# Empty dependencies file for systemr_test.
# This may be replaced when dependencies are built.
