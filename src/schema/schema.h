// Relation schemes and the database scheme (paper Section 2, after Maier):
// a relation scheme is a finite list of typed attributes; a database scheme
// is a set of relation schemes. viewauth additionally records an optional
// primary key per relation, which the self-join refinement (Section 4.2)
// needs to establish lossless joins.

#ifndef VIEWAUTH_SCHEMA_SCHEMA_H_
#define VIEWAUTH_SCHEMA_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace viewauth {

// A single attribute of a relation scheme.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

class RelationSchema {
 public:
  RelationSchema() = default;

  // `key` lists the indices of the primary-key attributes; empty means no
  // declared key. Attribute names must be unique within the relation.
  static Result<RelationSchema> Make(std::string name,
                                     std::vector<Attribute> attributes,
                                     std::vector<int> key = {});

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  int arity() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_.at(i); }

  // Index of the attribute with the given (case-sensitive) name, or -1.
  int AttributeIndex(std::string_view attr_name) const;

  const std::vector<int>& key() const { return key_; }
  bool has_key() const { return !key_.empty(); }
  bool IsKeyAttribute(int index) const;

  // e.g. "EMPLOYEE = (NAME, TITLE, SALARY)".
  std::string ToString() const;

  bool operator==(const RelationSchema& other) const {
    return name_ == other.name_ && attributes_ == other.attributes_ &&
           key_ == other.key_;
  }

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<int> key_;
};

// The database scheme: an ordered catalog of relation schemes.
class DatabaseSchema {
 public:
  Status AddRelation(RelationSchema schema);
  Status DropRelation(std::string_view name);

  bool HasRelation(std::string_view name) const;
  Result<const RelationSchema*> GetRelation(std::string_view name) const;

  // Relation names in insertion order.
  const std::vector<std::string>& relation_names() const { return order_; }

  std::string ToString() const;

 private:
  std::map<std::string, RelationSchema, std::less<>> relations_;
  std::vector<std::string> order_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_SCHEMA_SCHEMA_H_
