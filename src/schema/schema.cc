#include "schema/schema.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/str_util.h"

namespace viewauth {

Result<RelationSchema> RelationSchema::Make(std::string name,
                                            std::vector<Attribute> attributes,
                                            std::vector<int> key) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be nonempty");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("relation '" + name +
                                   "' must have at least one attribute");
  }
  std::set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("relation '" + name +
                                     "' has an empty attribute name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("relation '" + name +
                                     "' has duplicate attribute '" +
                                     attr.name + "'");
    }
  }
  std::set<int> key_seen;
  for (int index : key) {
    if (index < 0 || index >= static_cast<int>(attributes.size())) {
      return Status::InvalidArgument("key attribute index out of range in '" +
                                     name + "'");
    }
    if (!key_seen.insert(index).second) {
      return Status::InvalidArgument("duplicate key attribute in '" + name +
                                     "'");
    }
  }
  RelationSchema schema;
  schema.name_ = std::move(name);
  schema.attributes_ = std::move(attributes);
  schema.key_ = std::move(key);
  std::sort(schema.key_.begin(), schema.key_.end());
  return schema;
}

int RelationSchema::AttributeIndex(std::string_view attr_name) const {
  for (int i = 0; i < arity(); ++i) {
    if (attributes_[i].name == attr_name) return i;
  }
  return -1;
}

bool RelationSchema::IsKeyAttribute(int index) const {
  return std::binary_search(key_.begin(), key_.end(), index);
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) names.push_back(attr.name);
  return name_ + " = (" + Join(names, ", ") + ")";
}

Status DatabaseSchema::AddRelation(RelationSchema schema) {
  const std::string& name = schema.name();
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  order_.push_back(name);
  relations_.emplace(name, std::move(schema));
  return Status::OK();
}

Status DatabaseSchema::DropRelation(std::string_view name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) +
                            "' does not exist");
  }
  relations_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), std::string(name)));
  return Status::OK();
}

bool DatabaseSchema::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Result<const RelationSchema*> DatabaseSchema::GetRelation(
    std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) +
                            "' does not exist");
  }
  return &it->second;
}

std::string DatabaseSchema::ToString() const {
  std::ostringstream out;
  for (const std::string& name : order_) {
    out << relations_.at(name).ToString() << "\n";
  }
  return out.str();
}

}  // namespace viewauth
