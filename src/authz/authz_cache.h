// The mask-pipeline cache (paper Section 4.2: self-joins "need not be
// generated for every query; once generated, they should be stored with
// the original view definitions, until these definitions are modified").
//
// Two layers, both generation-checked:
//   * prepared authorizations — the pruned, self-join-extended
//     per-relation meta-relations of Authorizer steps 1-2, keyed by
//     (user, target relation, set of relations in Q, self-join rounds);
//   * masks — the fully derived A' of step 3, keyed by
//     (user, canonical query signature, mask-affecting options).
//
// Soundness argument: every entry records the AuthzGeneration — the pair
// (catalog version, schema version) — current when it was computed. The
// catalog version advances on every permit, deny, view definition, view
// drop, and group-membership change; the schema version advances on every
// relation create/drop. A lookup only returns an entry whose recorded
// generation equals the *current* generation, so a cached mask can never
// survive any event that could change what the user is entitled to: the
// mutation bumps a counter, the pair no longer matches, and the entry is
// discarded (counted as an invalidation). Data changes (insert/delete/
// modify) deliberately do not invalidate — masks are derived from view
// definitions and grants only, never from data.
//
// The cache is internally synchronized; concurrent sessions may look up,
// fill, and invalidate freely.
//
// AuthzCacheTxn stages a single retrieve's cache traffic so an aborted
// retrieve (deadline, budget, cancellation — any failure, in fact) leaves
// the cache and its counters exactly as if the query had never run: reads
// go through side-effect-free Peek methods, writes and counter deltas are
// buffered, and Commit() publishes everything atomically on success only.

#ifndef VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_
#define VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "authz/compiled_mask.h"
#include "common/status.h"
#include "meta/meta_tuple.h"

namespace viewauth {

// The invalidation clock: catalog mutations and DDL each bump their
// counter; equality of the pair is the cache-freshness test.
struct AuthzGeneration {
  long long catalog = 0;
  long long schema = 0;

  bool operator==(const AuthzGeneration&) const = default;
};

// Observability counters for the authorization pipeline. Snapshot of the
// live atomics held by AuthzCache; all time figures are accumulated
// wall-clock microseconds. The admission block is filled in by the
// engine's AdmissionController, not by the cache.
struct AuthzStats {
  long long retrieves = 0;           // full Retrieve calls
  long long parallel_retrieves = 0;  // of which ran S and S' concurrently
  long long prepared_hits = 0;
  long long prepared_misses = 0;
  long long mask_hits = 0;
  long long mask_misses = 0;
  long long mask_compiles = 0;       // CompiledMask builds (cache misses)
  long long invalidations = 0;       // entries dropped by generation change
  long long meta_tuples_pruned = 0;  // hopeless + dangling tuples removed
  long long mask_derivation_micros = 0;  // S' (meta-plan) wall time
  long long data_eval_micros = 0;        // S (data-plan) wall time
  long long mask_apply_micros = 0;       // step-5 masking wall time
  long long total_micros = 0;            // whole-retrieve wall time

  // --- execution governor -----------------------------------------------
  long long deadline_exceeded = 0;  // retrieves aborted by deadline
  long long budget_exceeded = 0;    // retrieves aborted by row/byte budget
  long long cancelled = 0;          // retrieves aborted by cancellation
  long long governor_checks = 0;    // amortized wall-clock probes taken

  // --- admission control (engine-side) ----------------------------------
  long long admission_attempts = 0;
  long long admitted = 0;
  long long queued = 0;          // admissions that had to wait for a slot
  long long shed = 0;            // rejected immediately (queue full)
  long long queue_timeouts = 0;  // waited, then gave up

  // Multi-line human-readable report (the REPL's \stats output).
  std::string ToString() const;
};

// Counter deltas buffered by an AuthzCacheTxn between first lookup and
// Commit. Field meanings match the AuthzStats fields of the same name.
struct AuthzTxnCounters {
  long long retrieves = 0;
  long long parallel_retrieves = 0;
  long long prepared_hits = 0;
  long long prepared_misses = 0;
  long long mask_hits = 0;
  long long mask_misses = 0;
  long long mask_compiles = 0;
  long long invalidations = 0;  // stale entries observed via Peek
  long long meta_tuples_pruned = 0;
  long long mask_derivation_micros = 0;
  long long data_eval_micros = 0;
  long long mask_apply_micros = 0;
  long long total_micros = 0;
};

class AuthzCache {
 public:
  AuthzCache() = default;
  AuthzCache(const AuthzCache&) = delete;
  AuthzCache& operator=(const AuthzCache&) = delete;

  // Lookups return a copy (entries are shared across sessions) and count
  // a hit or miss. An entry whose generation no longer matches is erased
  // and counted as an invalidation plus a miss.
  std::optional<MetaRelation> LookupPrepared(const std::string& key,
                                             const AuthzGeneration& gen);
  void StorePrepared(std::string key, const AuthzGeneration& gen,
                     const MetaRelation& value);

  std::optional<MetaRelation> LookupMask(const std::string& key,
                                         const AuthzGeneration& gen);
  void StoreMask(std::string key, const AuthzGeneration& gen,
                 const MetaRelation& value);

  // Compiled masks (authz/compiled_mask.h), cached alongside the derived
  // masks under the same keys and generation discipline. Entries are
  // shared (not copied) on lookup: a CompiledMask is immutable and owns
  // everything it references. Returns null on miss or stale generation.
  std::shared_ptr<const CompiledMask> LookupCompiledMask(
      const std::string& key, const AuthzGeneration& gen);
  void StoreCompiledMask(std::string key, const AuthzGeneration& gen,
                         std::shared_ptr<const CompiledMask> value);

  // --- side-effect-free reads (used by AuthzCacheTxn) -------------------
  // Peek variants neither count hits/misses nor erase stale entries; a
  // stale entry reports *stale = true (the txn buffers the observation
  // and the commit-time Store overwrites the entry under the same key).
  std::optional<MetaRelation> PeekPrepared(const std::string& key,
                                           const AuthzGeneration& gen,
                                           bool* stale) const;
  std::optional<MetaRelation> PeekMask(const std::string& key,
                                       const AuthzGeneration& gen,
                                       bool* stale) const;
  std::shared_ptr<const CompiledMask> PeekCompiledMask(
      const std::string& key, const AuthzGeneration& gen, bool* stale) const;

  // Drops every entry immediately (the engine routes permit/deny/view/
  // DDL mutations here). The generation check alone already guarantees
  // soundness for callers that mutate the catalog directly; the explicit
  // drop reclaims memory eagerly and records the invalidation.
  void Invalidate();

  // --- Counters maintained by the authorizer --------------------------
  void CountRetrieve(bool parallel);
  void CountPruned(long long tuples);
  void CountMaskCompile();
  void AddStageTimes(long long mask_micros, long long data_micros,
                     long long apply_micros, long long total_micros);
  // Folds a committed transaction's buffered deltas into the live
  // counters in one shot.
  void ApplyTxnCounters(const AuthzTxnCounters& c);

  // --- Governor bookkeeping (the governor's own books) ------------------
  // Deliberately NOT routed through AuthzCacheTxn: these counters record
  // the abort itself, so they must survive it. Counts only the three
  // governed-abort codes; anything else is ignored.
  void CountGovernedAbort(StatusCode code);
  void AddGovernorChecks(long long checks);

  AuthzStats Snapshot() const;
  void ResetStats();

 private:
  struct Entry {
    AuthzGeneration gen;
    MetaRelation value;
  };
  // Erases stale-generation entries on contact; bounds map sizes.
  std::optional<MetaRelation> Lookup(std::map<std::string, Entry>* entries,
                                     const std::string& key,
                                     const AuthzGeneration& gen,
                                     std::atomic<long long>* hits,
                                     std::atomic<long long>* misses);
  void Store(std::map<std::string, Entry>* entries, std::string key,
             const AuthzGeneration& gen, const MetaRelation& value);
  static std::optional<MetaRelation> Peek(
      const std::map<std::string, Entry>& entries, const std::string& key,
      const AuthzGeneration& gen, bool* stale);

  struct CompiledEntry {
    AuthzGeneration gen;
    std::shared_ptr<const CompiledMask> value;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> prepared_;
  std::map<std::string, Entry> masks_;
  std::map<std::string, CompiledEntry> compiled_;

  std::atomic<long long> retrieves_{0};
  std::atomic<long long> parallel_retrieves_{0};
  std::atomic<long long> prepared_hits_{0};
  std::atomic<long long> prepared_misses_{0};
  std::atomic<long long> mask_hits_{0};
  std::atomic<long long> mask_misses_{0};
  std::atomic<long long> mask_compiles_{0};
  std::atomic<long long> invalidations_{0};
  std::atomic<long long> meta_tuples_pruned_{0};
  std::atomic<long long> mask_derivation_micros_{0};
  std::atomic<long long> data_eval_micros_{0};
  std::atomic<long long> mask_apply_micros_{0};
  std::atomic<long long> total_micros_{0};

  std::atomic<long long> deadline_exceeded_{0};
  std::atomic<long long> budget_exceeded_{0};
  std::atomic<long long> cancelled_{0};
  std::atomic<long long> governor_checks_{0};
};

// Stages one retrieve's cache traffic. Reads consult this txn's pending
// stores first (a retrieve may re-derive under the same key), then the
// live cache via Peek; writes and counter deltas stay local until
// Commit(). Dropping the txn without committing discards everything —
// the abort-cleanliness mechanism for governed (and any other) failures.
//
// Internally synchronized: the authorizer's parallel meta-evaluation
// fan-out shares one txn across pool workers.
class AuthzCacheTxn {
 public:
  // `cache` may be null (caching disabled): lookups miss without
  // counting, stores and Commit are no-ops.
  explicit AuthzCacheTxn(AuthzCache* cache) : cache_(cache) {}
  AuthzCacheTxn(const AuthzCacheTxn&) = delete;
  AuthzCacheTxn& operator=(const AuthzCacheTxn&) = delete;

  std::optional<MetaRelation> LookupPrepared(const std::string& key,
                                             const AuthzGeneration& gen);
  void StorePrepared(std::string key, const AuthzGeneration& gen,
                     const MetaRelation& value);

  std::optional<MetaRelation> LookupMask(const std::string& key,
                                         const AuthzGeneration& gen);
  void StoreMask(std::string key, const AuthzGeneration& gen,
                 const MetaRelation& value);

  std::shared_ptr<const CompiledMask> LookupCompiledMask(
      const std::string& key, const AuthzGeneration& gen);
  void StoreCompiledMask(std::string key, const AuthzGeneration& gen,
                         std::shared_ptr<const CompiledMask> value);

  void CountRetrieve(bool parallel);
  void CountPruned(long long tuples);
  void CountMaskCompile();
  void AddStageTimes(long long mask_micros, long long data_micros,
                     long long apply_micros, long long total_micros);

  // Publishes buffered stores and counter deltas to the live cache.
  // Idempotent; a second call is a no-op.
  void Commit();

 private:
  struct PendingEntry {
    std::string key;
    AuthzGeneration gen;
    MetaRelation value;
  };
  struct PendingCompiled {
    std::string key;
    AuthzGeneration gen;
    std::shared_ptr<const CompiledMask> value;
  };

  static const MetaRelation* FindPending(
      const std::vector<PendingEntry>& pending, const std::string& key);

  AuthzCache* cache_;
  std::mutex mutex_;
  std::vector<PendingEntry> prepared_;
  std::vector<PendingEntry> masks_;
  std::vector<PendingCompiled> compiled_;
  AuthzTxnCounters counters_;
  bool committed_ = false;
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_
