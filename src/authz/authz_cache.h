// The mask-pipeline cache (paper Section 4.2: self-joins "need not be
// generated for every query; once generated, they should be stored with
// the original view definitions, until these definitions are modified").
//
// Two layers, both dependency-tracked:
//   * prepared authorizations — the pruned, self-join-extended
//     per-relation meta-relations of Authorizer steps 1-2, keyed by
//     (user, target relation, set of relations in Q, self-join rounds);
//   * masks — the fully derived A' of step 3, keyed by
//     (user, canonical query signature, mask-affecting options).
//
// Soundness argument (selective invalidation). Every entry records its
// read set as an AuthzDependencies: the user it was derived for, the
// base relations of the query, and the granted views folded into it.
// The ViewCatalog keeps a journal of its mutations (CatalogMutation in
// meta/view_store.h), each record naming the users whose entitlements it
// may change and the relation-set scopes it touches. SyncCatalog()
// replays the journal from the cache's last synced sequence number and
// drops exactly the entries whose (user, relations) dependencies a
// record selects — a mask embeds a granted view only when the query
// covers all of the view's relations, so "some recorded scope is a
// subset of the entry's relations" is precisely "this entry's closure
// touches the mutated view". Consequences:
//   * `insert`/`delete`/`modify` data statements never invalidate —
//     masks are derived from view definitions and grants, never data;
//   * `permit V to U` / `deny V to U` invalidates only U's (and, for a
//     group grant, the members') entries whose relation set covers V;
//   * view (re)definition invalidates by transitive view reachability
//     (the scopes carry the transitive relation closure);
//   * relation create/drop (DDL) still wipes everything — the schema
//     half of the AuthzGeneration is compared at lookup, and the engine
//     calls Invalidate(), counted as an over-approximate invalidation.
// Callers that mutate the catalog directly (no engine) stay sound
// because the Authorizer syncs the cache against the catalog journal
// before every retrieve; a cache that has fallen behind the bounded
// journal wipes itself rather than guess.
//
// The cache is internally synchronized; concurrent sessions may look up,
// fill, and invalidate freely.
//
// AuthzCacheTxn stages a single retrieve's cache traffic so an aborted
// retrieve (deadline, budget, cancellation — any failure, in fact) leaves
// the cache and its counters exactly as if the query had never run: reads
// go through side-effect-free Peek methods, writes and counter deltas are
// buffered, and Commit() publishes everything atomically on success only.

#ifndef VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_
#define VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "authz/compiled_mask.h"
#include "common/status.h"
#include "meta/meta_tuple.h"

namespace viewauth {

class ViewCatalog;
struct CatalogMutation;

// The invalidation clock. `catalog` is the ViewCatalog's journal
// sequence number current when the entry was derived; `schema` is the
// DDL version. Lookups require an exact schema match (catalog staleness
// is handled eagerly by SyncCatalog's journal replay) plus
// entry.catalog <= reader.catalog — under engine snapshot isolation a
// retrieve may run against a catalog version older than the cache's
// synced point, and entries stored after its snapshot must look like
// misses to it (entries stored before remain sound for it precisely
// because they survived the journal replay in between). Store rejects
// an entry derived against any catalog sequence other than the synced
// one.
struct AuthzGeneration {
  long long catalog = 0;
  long long schema = 0;

  bool operator==(const AuthzGeneration&) const = default;
};

// The read set of one cached entry: who it was derived for, the base
// relations of the query, and the granted views folded into the result.
// The (user, relations) pair is what selective invalidation matches
// CatalogMutation records against; `views` is recorded for diagnostics
// and debug-build invariant checks.
struct AuthzDependencies {
  std::string user;
  std::set<std::string> relations;
  std::set<std::string> views;
};

// Observability counters for the authorization pipeline. Snapshot of the
// live atomics held by AuthzCache; all time figures are accumulated
// wall-clock microseconds. The admission block is filled in by the
// engine's AdmissionController, not by the cache.
struct AuthzStats {
  long long retrieves = 0;           // full Retrieve calls
  long long parallel_retrieves = 0;  // of which ran S and S' concurrently
  long long prepared_hits = 0;
  long long prepared_misses = 0;
  long long mask_hits = 0;
  long long mask_misses = 0;
  long long mask_compiles = 0;       // CompiledMask builds (cache misses)
  long long invalidations = 0;       // entries dropped as stale, any cause
  long long meta_tuples_pruned = 0;  // hopeless + dangling tuples removed

  // --- vectorized plan --------------------------------------------------
  // Column batches processed by the vectorized data plan, and compiled-
  // mask batch kernels applied by the fused mask path.
  long long batches_evaluated = 0;
  long long mask_batch_applies = 0;

  // --- invalidation precision -------------------------------------------
  // How selective the dependency-tracked scheme is in practice.
  long long entries_invalidated = 0;  // dropped by catalog/DDL events
  long long entries_retained = 0;     // survivors of targeted events
  long long invalidations_exact = 0;  // dependency-matched drop events
  long long invalidations_over = 0;   // full wipes (DDL, journal loss)
  long long mask_derivation_micros = 0;  // S' (meta-plan) wall time
  long long data_eval_micros = 0;        // S (data-plan) wall time
  long long mask_apply_micros = 0;       // step-5 masking wall time
  long long total_micros = 0;            // whole-retrieve wall time

  // --- execution governor -----------------------------------------------
  long long deadline_exceeded = 0;  // retrieves aborted by deadline
  long long budget_exceeded = 0;    // retrieves aborted by row/byte budget
  long long cancelled = 0;          // retrieves aborted by cancellation
  long long governor_checks = 0;    // amortized wall-clock probes taken

  // --- admission control (engine-side) ----------------------------------
  long long admission_attempts = 0;
  long long admitted = 0;
  long long queued = 0;          // admissions that had to wait for a slot
  long long shed = 0;            // rejected immediately (queue full)
  long long queue_timeouts = 0;  // waited, then gave up

  // Multi-line human-readable report (the REPL's \stats output).
  std::string ToString() const;
};

// Counter deltas buffered by an AuthzCacheTxn between first lookup and
// Commit. Field meanings match the AuthzStats fields of the same name.
struct AuthzTxnCounters {
  long long retrieves = 0;
  long long parallel_retrieves = 0;
  long long prepared_hits = 0;
  long long prepared_misses = 0;
  long long mask_hits = 0;
  long long mask_misses = 0;
  long long mask_compiles = 0;
  long long invalidations = 0;  // stale entries observed via Peek
  long long meta_tuples_pruned = 0;
  long long batches_evaluated = 0;
  long long mask_batch_applies = 0;
  long long mask_derivation_micros = 0;
  long long data_eval_micros = 0;
  long long mask_apply_micros = 0;
  long long total_micros = 0;
};

class AuthzCache {
 public:
  AuthzCache() = default;
  AuthzCache(const AuthzCache&) = delete;
  AuthzCache& operator=(const AuthzCache&) = delete;

  // Lookups return a copy (entries are shared across sessions) and count
  // a hit or miss. An entry whose schema generation no longer matches is
  // erased and counted as an invalidation plus a miss. Stores record the
  // entry's read set in the dependency index; a store whose generation
  // predates the cache's synced catalog sequence is rejected (the entry
  // was derived against a catalog the cache has already moved past).
  std::optional<MetaRelation> LookupPrepared(const std::string& key,
                                             const AuthzGeneration& gen);
  void StorePrepared(std::string key, const AuthzGeneration& gen,
                     const MetaRelation& value, AuthzDependencies deps);

  std::optional<MetaRelation> LookupMask(const std::string& key,
                                         const AuthzGeneration& gen);
  void StoreMask(std::string key, const AuthzGeneration& gen,
                 const MetaRelation& value, AuthzDependencies deps);

  // Compiled masks (authz/compiled_mask.h), cached alongside the derived
  // masks under the same keys and generation discipline. Entries are
  // shared (not copied) on lookup: a CompiledMask is immutable and owns
  // everything it references. Returns null on miss or stale generation.
  std::shared_ptr<const CompiledMask> LookupCompiledMask(
      const std::string& key, const AuthzGeneration& gen);
  void StoreCompiledMask(std::string key, const AuthzGeneration& gen,
                         std::shared_ptr<const CompiledMask> value,
                         AuthzDependencies deps);

  // --- side-effect-free reads (used by AuthzCacheTxn) -------------------
  // Peek variants neither count hits/misses nor erase stale entries; a
  // stale entry reports *stale = true (the txn buffers the observation
  // and the commit-time Store overwrites the entry under the same key).
  std::optional<MetaRelation> PeekPrepared(const std::string& key,
                                           const AuthzGeneration& gen,
                                           bool* stale) const;
  std::optional<MetaRelation> PeekMask(const std::string& key,
                                       const AuthzGeneration& gen,
                                       bool* stale) const;
  std::shared_ptr<const CompiledMask> PeekCompiledMask(
      const std::string& key, const AuthzGeneration& gen, bool* stale) const;

  // Replays the catalog's mutation journal from this cache's last
  // synced sequence number, dropping exactly the entries each record's
  // (users, scopes) dependency test selects. The engine routes every
  // catalog mutation (permit/deny/view definition/drop/membership) here;
  // the Authorizer also syncs before each retrieve, which is what keeps
  // callers that mutate the catalog directly sound. Falls back to a
  // full wipe — counted as an over-approximate invalidation — when the
  // bounded journal no longer reaches back to the synced point.
  void SyncCatalog(const ViewCatalog& catalog);

  // Drops every entry immediately, counted as one over-approximate
  // invalidation event. The engine routes relation create/drop (DDL)
  // here: a schema change can alter coverage decisions for any user, so
  // no per-entry dependency test applies. The schema half of the
  // generation check catches direct DDL for engineless callers.
  void Invalidate();

  // The catalog journal sequence number this cache has replayed up to
  // (tests and diagnostics).
  long long synced_catalog_seq() const;

  // --- Counters maintained by the authorizer --------------------------
  void CountRetrieve(bool parallel);
  void CountPruned(long long tuples);
  void CountMaskCompile();
  void CountBatches(long long batches, long long mask_applies);
  void AddStageTimes(long long mask_micros, long long data_micros,
                     long long apply_micros, long long total_micros);
  // Folds a committed transaction's buffered deltas into the live
  // counters in one shot.
  void ApplyTxnCounters(const AuthzTxnCounters& c);

  // --- Governor bookkeeping (the governor's own books) ------------------
  // Deliberately NOT routed through AuthzCacheTxn: these counters record
  // the abort itself, so they must survive it. Counts only the three
  // governed-abort codes; anything else is ignored.
  void CountGovernedAbort(StatusCode code);
  void AddGovernorChecks(long long checks);

  AuthzStats Snapshot() const;
  void ResetStats();

 private:
  struct Entry {
    AuthzGeneration gen;
    MetaRelation value;
    AuthzDependencies deps;
  };
  struct CompiledEntry {
    AuthzGeneration gen;
    std::shared_ptr<const CompiledMask> value;
    AuthzDependencies deps;
  };
  // The three entry populations, named so the dependency index can
  // address an entry as (map, key).
  enum MapId { kPrepared = 0, kMasks = 1, kCompiled = 2 };
  // Reverse dependency index: user -> the keys of that user's entries in
  // each map. Targeted invalidation walks only the affected users' keys.
  struct UserRefs {
    std::set<std::string> keys[3];
  };

  // Erases stale-generation entries on contact; bounds map sizes.
  std::optional<MetaRelation> Lookup(std::map<std::string, Entry>* entries,
                                     MapId map_id, const std::string& key,
                                     const AuthzGeneration& gen,
                                     std::atomic<long long>* hits,
                                     std::atomic<long long>* misses);
  void Store(std::map<std::string, Entry>* entries, MapId map_id,
             std::string key, const AuthzGeneration& gen,
             const MetaRelation& value, AuthzDependencies deps);
  static std::optional<MetaRelation> Peek(
      const std::map<std::string, Entry>& entries, const std::string& key,
      const AuthzGeneration& gen, bool* stale);

  // --- dependency-index maintenance (all require mutex_ held) -----------
  void IndexInsertLocked(MapId map_id, const std::string& key,
                         const std::string& user);
  void IndexEraseLocked(MapId map_id, const std::string& key,
                        const std::string& user);
  // Drops every entry of one map (kMaxEntries overflow); keeps the index
  // consistent. Returns the number of entries dropped.
  long long ClearMapLocked(MapId map_id);
  // Full wipe, counted as one over-approximate invalidation event when
  // anything was dropped.
  void DropAllLocked();
  // One journal record: drops the dependent entries of each affected
  // user, counts exact/retained precision figures.
  void ApplyCatalogMutationLocked(const CatalogMutation& record);
  // Debug-build invariant: the index and the maps describe each other
  // exactly (every entry indexed under its user, every indexed key
  // present). No-op in release builds.
  void CheckIndexLocked() const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> prepared_;
  std::map<std::string, Entry> masks_;
  std::map<std::string, CompiledEntry> compiled_;
  std::map<std::string, UserRefs> by_user_;
  long long synced_catalog_seq_ = 0;

  std::atomic<long long> retrieves_{0};
  std::atomic<long long> parallel_retrieves_{0};
  std::atomic<long long> prepared_hits_{0};
  std::atomic<long long> prepared_misses_{0};
  std::atomic<long long> mask_hits_{0};
  std::atomic<long long> mask_misses_{0};
  std::atomic<long long> mask_compiles_{0};
  std::atomic<long long> batches_evaluated_{0};
  std::atomic<long long> mask_batch_applies_{0};
  std::atomic<long long> invalidations_{0};
  std::atomic<long long> entries_invalidated_{0};
  std::atomic<long long> entries_retained_{0};
  std::atomic<long long> invalidations_exact_{0};
  std::atomic<long long> invalidations_over_{0};
  std::atomic<long long> meta_tuples_pruned_{0};
  std::atomic<long long> mask_derivation_micros_{0};
  std::atomic<long long> data_eval_micros_{0};
  std::atomic<long long> mask_apply_micros_{0};
  std::atomic<long long> total_micros_{0};

  std::atomic<long long> deadline_exceeded_{0};
  std::atomic<long long> budget_exceeded_{0};
  std::atomic<long long> cancelled_{0};
  std::atomic<long long> governor_checks_{0};
};

// Stages one retrieve's cache traffic. Reads consult this txn's pending
// stores first (a retrieve may re-derive under the same key), then the
// live cache via Peek; writes and counter deltas stay local until
// Commit(). Dropping the txn without committing discards everything —
// the abort-cleanliness mechanism for governed (and any other) failures.
//
// Internally synchronized: the authorizer's parallel meta-evaluation
// fan-out shares one txn across pool workers.
class AuthzCacheTxn {
 public:
  // `cache` may be null (caching disabled): lookups miss without
  // counting, stores and Commit are no-ops.
  explicit AuthzCacheTxn(AuthzCache* cache) : cache_(cache) {}
  AuthzCacheTxn(const AuthzCacheTxn&) = delete;
  AuthzCacheTxn& operator=(const AuthzCacheTxn&) = delete;

  std::optional<MetaRelation> LookupPrepared(const std::string& key,
                                             const AuthzGeneration& gen);
  void StorePrepared(std::string key, const AuthzGeneration& gen,
                     const MetaRelation& value, AuthzDependencies deps);

  std::optional<MetaRelation> LookupMask(const std::string& key,
                                         const AuthzGeneration& gen);
  void StoreMask(std::string key, const AuthzGeneration& gen,
                 const MetaRelation& value, AuthzDependencies deps);

  std::shared_ptr<const CompiledMask> LookupCompiledMask(
      const std::string& key, const AuthzGeneration& gen);
  void StoreCompiledMask(std::string key, const AuthzGeneration& gen,
                         std::shared_ptr<const CompiledMask> value,
                         AuthzDependencies deps);

  void CountRetrieve(bool parallel);
  void CountPruned(long long tuples);
  void CountMaskCompile();
  void CountBatches(long long batches, long long mask_applies);
  void AddStageTimes(long long mask_micros, long long data_micros,
                     long long apply_micros, long long total_micros);

  // Publishes buffered stores and counter deltas to the live cache.
  // Idempotent; a second call is a no-op.
  void Commit();

 private:
  // Pending stores carry the entry's dependency edges alongside its
  // value: an aborted retrieve must leave the live dependency index as
  // untouched as the entry maps themselves.
  struct PendingEntry {
    std::string key;
    AuthzGeneration gen;
    MetaRelation value;
    AuthzDependencies deps;
  };
  struct PendingCompiled {
    std::string key;
    AuthzGeneration gen;
    std::shared_ptr<const CompiledMask> value;
    AuthzDependencies deps;
  };

  static const MetaRelation* FindPending(
      const std::vector<PendingEntry>& pending, const std::string& key);

  AuthzCache* cache_;
  std::mutex mutex_;
  std::vector<PendingEntry> prepared_;
  std::vector<PendingEntry> masks_;
  std::vector<PendingCompiled> compiled_;
  AuthzTxnCounters counters_;
  bool committed_ = false;
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_AUTHZ_CACHE_H_
