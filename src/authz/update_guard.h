// UpdateGuard: authorization of insert and delete operations (the
// paper's conclusion (1): "We see no difficulty in extending it to
// incorporate update permissions, such as insert, delete and modify").
//
// Update permissions are views granted with an update mode. The checks:
//   * INSERT t INTO R is permitted when some insert-mode view of the
//     user, defined over R alone, projects *every* attribute of R (the
//     user writes whole rows) and t satisfies the view's selection (the
//     row lies inside the user's window).
//   * DELETE FROM R WHERE p removes the matching rows that fall inside
//     some delete-mode view's selection; other matching rows are
//     withheld, mirroring the retrieval model's partial delivery. The
//     predicate's attributes must be projected by the authorizing view,
//     otherwise the deletion outcome would leak values the view hides.
//
// View-update *propagation* (updating base relations through views) is
// undecidable in general — the paper's own footnote — and is out of
// scope: updates here address base relations directly, like queries do.

#ifndef VIEWAUTH_AUTHZ_UPDATE_GUARD_H_
#define VIEWAUTH_AUTHZ_UPDATE_GUARD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "meta/view_store.h"
#include "parser/ast.h"
#include "storage/relation.h"

namespace viewauth {

class UpdateGuard {
 public:
  UpdateGuard(const DatabaseInstance* db, const ViewCatalog* catalog)
      : db_(db), catalog_(catalog) {}

  // Is `user` entitled to insert `tuple` into `relation`?
  Status CheckInsert(std::string_view user, std::string_view relation,
                     const Tuple& tuple) const;

  struct DeleteDecision {
    // Rows the user may delete (they also match the predicate).
    std::vector<Tuple> deletable;
    // Matching rows withheld for lack of a covering delete view.
    int withheld = 0;
  };

  // Splits the rows of `relation` matching `conditions` into deletable
  // and withheld. Fails when the predicate addresses attributes no
  // delete-mode view of the user projects.
  Result<DeleteDecision> AuthorizeDelete(
      std::string_view user, std::string_view relation,
      const std::vector<Condition>& conditions) const;

  struct ModifyDecision {
    // Pairs of (old row, new row) the user may apply.
    std::vector<std::pair<Tuple, Tuple>> changes;
    // Matching rows withheld for lack of a covering modify view.
    int withheld = 0;
  };

  // MODIFY R SET A = v WHERE p: a matching row may change when some
  // modify-mode view (a) projects the assigned attributes and the
  // predicate's attributes, and (b) is satisfied by BOTH the old and the
  // new row — updates may not move rows into or out of the user's
  // window. Returns the permitted changes; the caller applies them.
  Result<ModifyDecision> AuthorizeModify(
      std::string_view user, std::string_view relation,
      const std::vector<ModifyStmt::Assignment>& assignments,
      const std::vector<Condition>& conditions) const;

 private:
  // The user's update-mode views defined over `relation` alone.
  std::vector<const ViewDefinition*> SingleRelationViews(
      std::string_view user, std::string_view relation,
      AccessMode mode) const;

  const DatabaseInstance* db_;
  const ViewCatalog* catalog_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_UPDATE_GUARD_H_
