#include "authz/compiled_mask.h"

#include "storage/column_batch.h"

namespace viewauth {

CompiledMaskTuple::CompiledMaskTuple(const MetaTuple& tuple) {
  const int arity = tuple.arity();
  projected_bits_.assign((static_cast<size_t>(arity) + 63) / 64, 0);

  // One pass over the cells: constants, projected columns, and variable
  // groups in first-encounter cell order (the binding order RowSatisfies
  // used).
  std::vector<std::vector<int>> group_cols;
  for (int i = 0; i < arity; ++i) {
    const MetaCell& cell = tuple.cells()[i];
    if (cell.projected) {
      projected_bits_[static_cast<size_t>(i) / 64] |=
          uint64_t{1} << (static_cast<size_t>(i) % 64);
      projected_cols_.push_back(i);
      any_projected_ = true;
    }
    if (cell.kind == CellKind::kConst) {
      const_cells_.push_back(ConstCheck{i, cell.constant});
    } else if (cell.kind == CellKind::kVar) {
      size_t g = 0;
      while (g < group_vars_.size() && group_vars_[g] != cell.var) ++g;
      if (g == group_vars_.size()) {
        group_vars_.push_back(cell.var);
        group_cols.emplace_back();
      }
      group_cols[g].push_back(i);
    }
  }
  group_begin_.push_back(0);
  for (const std::vector<int>& cols : group_cols) {
    var_cols_flat_.insert(var_cols_flat_.end(), cols.begin(), cols.end());
    group_begin_.push_back(static_cast<int>(var_cols_flat_.size()));
  }

  const ConstraintSet& constraints = tuple.constraints();
  if (group_vars_.empty() && constraints.atom_count() == 0) {
    trivially_true_ = true;
    return;
  }

  // "Total" constraints: every mentioned term is a cell variable, so the
  // source atoms evaluate directly over the row's cell bindings and the
  // solver is never needed.
  auto group_of = [&](TermId term) -> int {
    for (size_t g = 0; g < group_vars_.size(); ++g) {
      if (group_vars_[g] == term) return static_cast<int>(g);
    }
    return -1;
  };
  constraints_total_ = true;
  for (TermId term : constraints.MentionedTerms()) {
    if (group_of(term) < 0) {
      constraints_total_ = false;
      break;
    }
  }
  if (constraints_total_) {
    // The binding of a variable is its first cell in cell order.
    auto binding_col = [&](TermId term) {
      return var_cols_flat_[static_cast<size_t>(
          group_begin_[static_cast<size_t>(group_of(term))])];
    };
    atoms_.reserve(constraints.source_atoms().size());
    for (const ConstraintAtom& atom : constraints.source_atoms()) {
      CompiledAtom compiled;
      compiled.lhs_col = binding_col(atom.lhs);
      compiled.op = atom.op;
      if (atom.rhs_is_term) {
        compiled.rhs_is_col = true;
        compiled.rhs_col = binding_col(atom.rhs_term);
      } else {
        compiled.rhs_const = atom.rhs_const;
      }
      atoms_.push_back(std::move(compiled));
    }
  } else {
    fallback_constraints_ = constraints;
  }
}

bool CompiledMaskTuple::Satisfies(const Tuple& row) const {
  for (const ConstCheck& check : const_cells_) {
    if (!row.at(check.col).Satisfies(Comparator::kEq, check.value)) {
      return false;
    }
  }
  if (trivially_true_) return true;

  // Variable groups: every cell non-null, cells of a group equal to the
  // group's binding (its first cell).
  for (size_t g = 0; g < group_vars_.size(); ++g) {
    const int begin = group_begin_[g];
    const int end = group_begin_[g + 1];
    const Value& bound = row.at(var_cols_flat_[static_cast<size_t>(begin)]);
    if (bound.is_null()) return false;
    for (int k = begin + 1; k < end; ++k) {
      const Value& v = row.at(var_cols_flat_[static_cast<size_t>(k)]);
      if (v.is_null()) return false;
      if (!bound.Satisfies(Comparator::kEq, v)) return false;
    }
  }

  if (constraints_total_) {
    for (const CompiledAtom& atom : atoms_) {
      const Value& lhs = row.at(atom.lhs_col);
      const Value& rhs =
          atom.rhs_is_col ? row.at(atom.rhs_col) : atom.rhs_const;
      if (!lhs.Satisfies(atom.op, rhs)) return false;
    }
    return true;
  }

  // Store-only (existential) variables remain: delegate to the solver,
  // pinning each cell variable to its binding.
  ConstraintSet check = fallback_constraints_;
  for (size_t g = 0; g < group_vars_.size(); ++g) {
    check.AddTermConst(
        group_vars_[g], Comparator::kEq,
        row.at(var_cols_flat_[static_cast<size_t>(group_begin_[g])]));
  }
  return check.IsSatisfiable();
}

void CompiledMaskTuple::FilterBatch(ColumnBatch* batch,
                                    std::vector<uint32_t>* sel) const {
  // Mirrors Satisfies() check by check; the conjunction is the same
  // whether it short-circuits per row or filters column at a time.
  for (const ConstCheck& check : const_cells_) {
    if (sel->empty()) return;
    FilterColumnConst(batch->column(check.col), Comparator::kEq, check.value,
                      sel);
  }
  if (trivially_true_) return;

  for (size_t g = 0; g < group_vars_.size(); ++g) {
    const int begin = group_begin_[g];
    const int end = group_begin_[g + 1];
    const int bind_col = var_cols_flat_[static_cast<size_t>(begin)];
    if (sel->empty()) return;
    FilterNotNull(batch->column(bind_col), sel);
    for (int k = begin + 1; k < end; ++k) {
      if (sel->empty()) return;
      // Satisfies(kEq, ...) is false whenever either side is NULL, so
      // this also enforces the non-null requirement on the group's
      // other cells.
      FilterColumnColumn(batch->column(bind_col), Comparator::kEq,
                         batch->column(var_cols_flat_[static_cast<size_t>(k)]),
                         sel);
    }
  }

  if (constraints_total_) {
    for (const CompiledAtom& atom : atoms_) {
      if (sel->empty()) return;
      if (atom.rhs_is_col) {
        FilterColumnColumn(batch->column(atom.lhs_col), atom.op,
                           batch->column(atom.rhs_col), sel);
      } else {
        FilterColumnConst(batch->column(atom.lhs_col), atom.op,
                          atom.rhs_const, sel);
      }
    }
    return;
  }

  // Store-only (existential) variables remain: solver per surviving row.
  size_t out = 0;
  for (uint32_t i : *sel) {
    ConstraintSet check = fallback_constraints_;
    for (size_t g = 0; g < group_vars_.size(); ++g) {
      check.AddTermConst(
          group_vars_[g], Comparator::kEq,
          batch->value(i, var_cols_flat_[static_cast<size_t>(
                              group_begin_[g])]));
    }
    if (check.IsSatisfiable()) (*sel)[out++] = i;
  }
  sel->resize(out);
}

CompiledMask CompiledMask::Compile(const MetaRelation& mask) {
  CompiledMask compiled;
  compiled.tuples.reserve(mask.tuples().size());
  for (const MetaTuple& tuple : mask.tuples()) {
    compiled.tuples.emplace_back(tuple);
  }
  return compiled;
}

}  // namespace viewauth
