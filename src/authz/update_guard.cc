#include "authz/update_guard.h"

#include <set>

#include "authz/authorizer.h"
#include "predicate/predicate.h"

namespace viewauth {

std::vector<const ViewDefinition*> UpdateGuard::SingleRelationViews(
    std::string_view user, std::string_view relation,
    AccessMode mode) const {
  std::vector<const ViewDefinition*> result;
  for (const ViewDefinition* view : catalog_->PermittedViews(user, mode)) {
    if (view->tuples.size() == 1 && view->tuple_relations[0] == relation) {
      result.push_back(view);
    }
  }
  return result;
}

Status UpdateGuard::CheckInsert(std::string_view user,
                                std::string_view relation,
                                const Tuple& tuple) const {
  VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                            db_->GetRelation(relation));
  if (tuple.arity() != rel->schema().arity()) {
    return Status::SchemaMismatch("insert tuple arity mismatch");
  }
  for (const ViewDefinition* view :
       SingleRelationViews(user, relation, AccessMode::kInsert)) {
    const MetaTuple& meta = view->tuples[0];
    // The user writes whole rows: the view must expose every attribute.
    bool full_width = true;
    for (const MetaCell& cell : meta.cells()) {
      if (!cell.projected) {
        full_width = false;
        break;
      }
    }
    if (!full_width) continue;
    if (Authorizer::RowSatisfies(meta, tuple)) return Status::OK();
  }
  return Status::PermissionDenied(
      "user '" + std::string(user) + "' holds no insert permission of '" +
      std::string(relation) + "' covering this tuple");
}

Result<UpdateGuard::DeleteDecision> UpdateGuard::AuthorizeDelete(
    std::string_view user, std::string_view relation,
    const std::vector<Condition>& conditions) const {
  VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                            db_->GetRelation(relation));
  const RelationSchema& schema = rel->schema();

  // Resolve the predicate against the relation (occurrence 1 only).
  ConjunctivePredicate predicate;
  std::set<int> predicate_columns;
  for (const Condition& cond : conditions) {
    auto resolve = [&](const AttributeRef& ref) -> Result<int> {
      if (ref.relation != relation || ref.occurrence != 1) {
        return Status::InvalidArgument(
            "delete predicates may only reference the target relation");
      }
      int index = schema.AttributeIndex(ref.attribute);
      if (index < 0) {
        return Status::NotFound("relation '" + std::string(relation) +
                                "' has no attribute '" + ref.attribute +
                                "'");
      }
      return index;
    };
    VIEWAUTH_ASSIGN_OR_RETURN(int lhs, resolve(cond.lhs));
    predicate_columns.insert(lhs);
    if (cond.rhs.is_attribute) {
      VIEWAUTH_ASSIGN_OR_RETURN(int rhs, resolve(cond.rhs.attribute));
      predicate_columns.insert(rhs);
      predicate.Add(SelectionAtom::ColumnColumn(lhs, cond.op, rhs));
    } else {
      predicate.Add(SelectionAtom::ColumnConst(lhs, cond.op,
                                               cond.rhs.constant));
    }
  }

  // Delete views whose projection covers the predicate's attributes.
  std::vector<const MetaTuple*> windows;
  for (const ViewDefinition* view :
       SingleRelationViews(user, relation, AccessMode::kDelete)) {
    const MetaTuple& meta = view->tuples[0];
    bool covers = true;
    for (int column : predicate_columns) {
      if (!meta.cells()[column].projected) {
        covers = false;
        break;
      }
    }
    if (covers) windows.push_back(&meta);
  }
  if (windows.empty() && !conditions.empty()) {
    return Status::PermissionDenied(
        "user '" + std::string(user) +
        "' holds no delete permission of '" + std::string(relation) +
        "' covering the predicate's attributes");
  }

  DeleteDecision decision;
  for (const Tuple& row : rel->rows()) {
    if (!predicate.Matches(row)) continue;
    bool allowed = false;
    for (const MetaTuple* window : windows) {
      if (Authorizer::RowSatisfies(*window, row)) {
        allowed = true;
        break;
      }
    }
    // An unconditional delete (no predicate) still needs a window per
    // row even without predicate-coverage filtering.
    if (!allowed && conditions.empty()) {
      for (const ViewDefinition* view :
           SingleRelationViews(user, relation, AccessMode::kDelete)) {
        if (Authorizer::RowSatisfies(view->tuples[0], row)) {
          allowed = true;
          break;
        }
      }
    }
    if (allowed) {
      decision.deletable.push_back(row);
    } else {
      ++decision.withheld;
    }
  }
  return decision;
}

Result<UpdateGuard::ModifyDecision> UpdateGuard::AuthorizeModify(
    std::string_view user, std::string_view relation,
    const std::vector<ModifyStmt::Assignment>& assignments,
    const std::vector<Condition>& conditions) const {
  VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                            db_->GetRelation(relation));
  const RelationSchema& schema = rel->schema();

  // Resolve assignments (with literal coercion toward attribute types).
  std::vector<std::pair<int, Value>> resolved;
  std::set<int> touched_columns;
  for (const ModifyStmt::Assignment& assignment : assignments) {
    int index = schema.AttributeIndex(assignment.attribute);
    if (index < 0) {
      return Status::NotFound("relation '" + std::string(relation) +
                              "' has no attribute '" +
                              assignment.attribute + "'");
    }
    Value value = assignment.value;
    const ValueType expected = schema.attribute(index).type;
    if (!value.is_null() && value.is_string() &&
        expected != ValueType::kString) {
      VIEWAUTH_ASSIGN_OR_RETURN(value,
                                ParseValueAs(value.string_value(), expected));
    }
    touched_columns.insert(index);
    resolved.emplace_back(index, std::move(value));
  }

  // Resolve the predicate.
  ConjunctivePredicate predicate;
  for (const Condition& cond : conditions) {
    auto resolve = [&](const AttributeRef& ref) -> Result<int> {
      if (ref.relation != relation || ref.occurrence != 1) {
        return Status::InvalidArgument(
            "modify predicates may only reference the target relation");
      }
      int index = schema.AttributeIndex(ref.attribute);
      if (index < 0) {
        return Status::NotFound("relation '" + std::string(relation) +
                                "' has no attribute '" + ref.attribute +
                                "'");
      }
      return index;
    };
    VIEWAUTH_ASSIGN_OR_RETURN(int lhs, resolve(cond.lhs));
    touched_columns.insert(lhs);
    if (cond.rhs.is_attribute) {
      VIEWAUTH_ASSIGN_OR_RETURN(int rhs, resolve(cond.rhs.attribute));
      touched_columns.insert(rhs);
      predicate.Add(SelectionAtom::ColumnColumn(lhs, cond.op, rhs));
    } else {
      predicate.Add(
          SelectionAtom::ColumnConst(lhs, cond.op, cond.rhs.constant));
    }
  }

  // Modify views covering every touched attribute.
  std::vector<const MetaTuple*> windows;
  for (const ViewDefinition* view :
       SingleRelationViews(user, relation, AccessMode::kModify)) {
    const MetaTuple& meta = view->tuples[0];
    bool covers = true;
    for (int column : touched_columns) {
      if (!meta.cells()[column].projected) {
        covers = false;
        break;
      }
    }
    if (covers) windows.push_back(&meta);
  }
  if (windows.empty()) {
    return Status::PermissionDenied(
        "user '" + std::string(user) +
        "' holds no modify permission of '" + std::string(relation) +
        "' covering the touched attributes");
  }

  ModifyDecision decision;
  for (const Tuple& row : rel->rows()) {
    if (!predicate.Matches(row)) continue;
    Tuple updated = row;
    for (const auto& [index, value] : resolved) {
      updated.at(index) = value;
    }
    if (updated == row) continue;  // no-op change
    bool allowed = false;
    for (const MetaTuple* window : windows) {
      if (Authorizer::RowSatisfies(*window, row) &&
          Authorizer::RowSatisfies(*window, updated)) {
        allowed = true;
        break;
      }
    }
    if (allowed) {
      decision.changes.emplace_back(row, std::move(updated));
    } else {
      ++decision.withheld;
    }
  }
  return decision;
}

}  // namespace viewauth
