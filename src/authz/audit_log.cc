#include "authz/audit_log.h"

#include <sstream>

namespace viewauth {

std::string_view AuditOutcomeToString(AuditOutcome outcome) {
  switch (outcome) {
    case AuditOutcome::kFullAccess:
      return "full-access";
    case AuditOutcome::kPartial:
      return "partial";
    case AuditOutcome::kDenied:
      return "denied";
    case AuditOutcome::kInsertAllowed:
      return "insert-allowed";
    case AuditOutcome::kInsertDenied:
      return "insert-denied";
    case AuditOutcome::kDeleteApplied:
      return "delete-applied";
    case AuditOutcome::kModifyApplied:
      return "modify-applied";
    case AuditOutcome::kError:
      return "error";
  }
  return "?";
}

void AuditLog::Record(AuditEntry entry) {
  entry.sequence = next_sequence_++;
  entries_.push_back(std::move(entry));
}

Relation AuditLog::Materialize() const {
  RelationSchema schema =
      RelationSchema::Make("AUDIT",
                           {{"SEQ", ValueType::kInt64},
                            {"USER", ValueType::kString},
                            {"STATEMENT", ValueType::kString},
                            {"OUTCOME", ValueType::kString},
                            {"AFFECTED", ValueType::kInt64},
                            {"WITHHELD", ValueType::kInt64},
                            {"PERMITS", ValueType::kString}})
          .value();
  Relation out(std::move(schema));
  for (const AuditEntry& entry : entries_) {
    out.InsertUnchecked(Tuple(
        {Value::Int64(entry.sequence), Value::String(entry.user),
         Value::String(entry.statement),
         Value::String(std::string(AuditOutcomeToString(entry.outcome))),
         Value::Int64(entry.affected), Value::Int64(entry.withheld),
         Value::String(entry.permits)}));
  }
  return out;
}

std::string AuditLog::ToString(int last_n) const {
  std::ostringstream out;
  size_t begin = 0;
  if (last_n > 0 && static_cast<size_t>(last_n) < entries_.size()) {
    begin = entries_.size() - static_cast<size_t>(last_n);
  }
  for (size_t i = begin; i < entries_.size(); ++i) {
    const AuditEntry& e = entries_[i];
    out << "#" << e.sequence << " [" << e.user << "] "
        << AuditOutcomeToString(e.outcome);
    if (e.affected > 0 || e.withheld > 0) {
      out << " (" << e.affected << " affected";
      if (e.withheld > 0) out << ", " << e.withheld << " withheld";
      out << ")";
    }
    out << ": " << e.statement;
    if (!e.permits.empty()) out << "  -- " << e.permits;
    out << "\n";
  }
  return out.str();
}

}  // namespace viewauth
