#include "authz/authz_cache.h"

#include <sstream>

namespace viewauth {

namespace {
// Workloads touch few distinct (user, relation-set, options) shapes; a
// runaway key space indicates synthetic churn, so reset past this bound.
constexpr size_t kMaxEntries = 1024;
}  // namespace

std::string AuthzStats::ToString() const {
  std::ostringstream out;
  out << "authorization stats:\n"
      << "  retrieves:        " << retrieves << " (" << parallel_retrieves
      << " parallel)\n"
      << "  prepared cache:   " << prepared_hits << " hit(s), "
      << prepared_misses << " miss(es)\n"
      << "  mask cache:       " << mask_hits << " hit(s), " << mask_misses
      << " miss(es)\n"
      << "  mask compiles:    " << mask_compiles << "\n"
      << "  invalidations:    " << invalidations << "\n"
      << "  meta pruned:      " << meta_tuples_pruned << " tuple(s)\n"
      << "  wall times (us):  mask=" << mask_derivation_micros
      << " data=" << data_eval_micros << " apply=" << mask_apply_micros
      << " total=" << total_micros << "\n";
  return out.str();
}

std::optional<MetaRelation> AuthzCache::Lookup(
    std::map<std::string, Entry>* entries, const std::string& key,
    const AuthzGeneration& gen, std::atomic<long long>* hits,
    std::atomic<long long>* misses) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries->find(key);
  if (it != entries->end()) {
    if (it->second.gen == gen) {
      hits->fetch_add(1, std::memory_order_relaxed);
      return it->second.value;  // copy out under the lock
    }
    entries->erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  misses->fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void AuthzCache::Store(std::map<std::string, Entry>* entries,
                       std::string key, const AuthzGeneration& gen,
                       const MetaRelation& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries->size() > kMaxEntries) entries->clear();
  (*entries)[std::move(key)] = Entry{gen, value};
}

std::optional<MetaRelation> AuthzCache::LookupPrepared(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&prepared_, key, gen, &prepared_hits_, &prepared_misses_);
}

void AuthzCache::StorePrepared(std::string key, const AuthzGeneration& gen,
                               const MetaRelation& value) {
  Store(&prepared_, std::move(key), gen, value);
}

std::optional<MetaRelation> AuthzCache::LookupMask(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&masks_, key, gen, &mask_hits_, &mask_misses_);
}

void AuthzCache::StoreMask(std::string key, const AuthzGeneration& gen,
                           const MetaRelation& value) {
  Store(&masks_, std::move(key), gen, value);
}

std::shared_ptr<const CompiledMask> AuthzCache::LookupCompiledMask(
    const std::string& key, const AuthzGeneration& gen) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_.find(key);
  if (it != compiled_.end()) {
    if (it->second.gen == gen) return it->second.value;
    compiled_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void AuthzCache::StoreCompiledMask(std::string key,
                                   const AuthzGeneration& gen,
                                   std::shared_ptr<const CompiledMask> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (compiled_.size() > kMaxEntries) compiled_.clear();
  compiled_[std::move(key)] = CompiledEntry{gen, std::move(value)};
}

void AuthzCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (prepared_.empty() && masks_.empty() && compiled_.empty()) return;
  prepared_.clear();
  masks_.clear();
  compiled_.clear();
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountRetrieve(bool parallel) {
  retrieves_.fetch_add(1, std::memory_order_relaxed);
  if (parallel) parallel_retrieves_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountMaskCompile() {
  mask_compiles_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountPruned(long long tuples) {
  if (tuples > 0) {
    meta_tuples_pruned_.fetch_add(tuples, std::memory_order_relaxed);
  }
}

void AuthzCache::AddStageTimes(long long mask_micros, long long data_micros,
                               long long apply_micros,
                               long long total_micros) {
  mask_derivation_micros_.fetch_add(mask_micros, std::memory_order_relaxed);
  data_eval_micros_.fetch_add(data_micros, std::memory_order_relaxed);
  mask_apply_micros_.fetch_add(apply_micros, std::memory_order_relaxed);
  total_micros_.fetch_add(total_micros, std::memory_order_relaxed);
}

AuthzStats AuthzCache::Snapshot() const {
  AuthzStats stats;
  stats.retrieves = retrieves_.load(std::memory_order_relaxed);
  stats.parallel_retrieves =
      parallel_retrieves_.load(std::memory_order_relaxed);
  stats.prepared_hits = prepared_hits_.load(std::memory_order_relaxed);
  stats.prepared_misses = prepared_misses_.load(std::memory_order_relaxed);
  stats.mask_hits = mask_hits_.load(std::memory_order_relaxed);
  stats.mask_misses = mask_misses_.load(std::memory_order_relaxed);
  stats.mask_compiles = mask_compiles_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.meta_tuples_pruned =
      meta_tuples_pruned_.load(std::memory_order_relaxed);
  stats.mask_derivation_micros =
      mask_derivation_micros_.load(std::memory_order_relaxed);
  stats.data_eval_micros = data_eval_micros_.load(std::memory_order_relaxed);
  stats.mask_apply_micros =
      mask_apply_micros_.load(std::memory_order_relaxed);
  stats.total_micros = total_micros_.load(std::memory_order_relaxed);
  return stats;
}

void AuthzCache::ResetStats() {
  retrieves_.store(0, std::memory_order_relaxed);
  parallel_retrieves_.store(0, std::memory_order_relaxed);
  prepared_hits_.store(0, std::memory_order_relaxed);
  prepared_misses_.store(0, std::memory_order_relaxed);
  mask_hits_.store(0, std::memory_order_relaxed);
  mask_misses_.store(0, std::memory_order_relaxed);
  mask_compiles_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  meta_tuples_pruned_.store(0, std::memory_order_relaxed);
  mask_derivation_micros_.store(0, std::memory_order_relaxed);
  data_eval_micros_.store(0, std::memory_order_relaxed);
  mask_apply_micros_.store(0, std::memory_order_relaxed);
  total_micros_.store(0, std::memory_order_relaxed);
}

}  // namespace viewauth
