#include "authz/authz_cache.h"

#include <sstream>

namespace viewauth {

namespace {
// Workloads touch few distinct (user, relation-set, options) shapes; a
// runaway key space indicates synthetic churn, so reset past this bound.
constexpr size_t kMaxEntries = 1024;
}  // namespace

std::string AuthzStats::ToString() const {
  std::ostringstream out;
  out << "authorization stats:\n"
      << "  retrieves:        " << retrieves << " (" << parallel_retrieves
      << " parallel)\n"
      << "  prepared cache:   " << prepared_hits << " hit(s), "
      << prepared_misses << " miss(es)\n"
      << "  mask cache:       " << mask_hits << " hit(s), " << mask_misses
      << " miss(es)\n"
      << "  mask compiles:    " << mask_compiles << "\n"
      << "  invalidations:    " << invalidations << "\n"
      << "  meta pruned:      " << meta_tuples_pruned << " tuple(s)\n"
      << "  wall times (us):  mask=" << mask_derivation_micros
      << " data=" << data_eval_micros << " apply=" << mask_apply_micros
      << " total=" << total_micros << "\n"
      << "governor stats:\n"
      << "  deadline aborts:  " << deadline_exceeded << "\n"
      << "  budget aborts:    " << budget_exceeded << "\n"
      << "  cancellations:    " << cancelled << "\n"
      << "  clock probes:     " << governor_checks << "\n"
      << "admission stats:\n"
      << "  attempts:         " << admission_attempts << " (" << admitted
      << " admitted, " << queued << " queued)\n"
      << "  shed:             " << shed << " immediate, " << queue_timeouts
      << " queue timeout(s)\n";
  return out.str();
}

std::optional<MetaRelation> AuthzCache::Lookup(
    std::map<std::string, Entry>* entries, const std::string& key,
    const AuthzGeneration& gen, std::atomic<long long>* hits,
    std::atomic<long long>* misses) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries->find(key);
  if (it != entries->end()) {
    if (it->second.gen == gen) {
      hits->fetch_add(1, std::memory_order_relaxed);
      return it->second.value;  // copy out under the lock
    }
    entries->erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  misses->fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void AuthzCache::Store(std::map<std::string, Entry>* entries,
                       std::string key, const AuthzGeneration& gen,
                       const MetaRelation& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries->size() > kMaxEntries) entries->clear();
  (*entries)[std::move(key)] = Entry{gen, value};
}

std::optional<MetaRelation> AuthzCache::Peek(
    const std::map<std::string, Entry>& entries, const std::string& key,
    const AuthzGeneration& gen, bool* stale) {
  auto it = entries.find(key);
  if (it == entries.end()) return std::nullopt;
  if (it->second.gen == gen) return it->second.value;
  if (stale != nullptr) *stale = true;
  return std::nullopt;
}

std::optional<MetaRelation> AuthzCache::LookupPrepared(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&prepared_, key, gen, &prepared_hits_, &prepared_misses_);
}

void AuthzCache::StorePrepared(std::string key, const AuthzGeneration& gen,
                               const MetaRelation& value) {
  Store(&prepared_, std::move(key), gen, value);
}

std::optional<MetaRelation> AuthzCache::LookupMask(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&masks_, key, gen, &mask_hits_, &mask_misses_);
}

void AuthzCache::StoreMask(std::string key, const AuthzGeneration& gen,
                           const MetaRelation& value) {
  Store(&masks_, std::move(key), gen, value);
}

std::optional<MetaRelation> AuthzCache::PeekPrepared(
    const std::string& key, const AuthzGeneration& gen, bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Peek(prepared_, key, gen, stale);
}

std::optional<MetaRelation> AuthzCache::PeekMask(const std::string& key,
                                                 const AuthzGeneration& gen,
                                                 bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Peek(masks_, key, gen, stale);
}

std::shared_ptr<const CompiledMask> AuthzCache::PeekCompiledMask(
    const std::string& key, const AuthzGeneration& gen, bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_.find(key);
  if (it == compiled_.end()) return nullptr;
  if (it->second.gen == gen) return it->second.value;
  if (stale != nullptr) *stale = true;
  return nullptr;
}

std::shared_ptr<const CompiledMask> AuthzCache::LookupCompiledMask(
    const std::string& key, const AuthzGeneration& gen) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_.find(key);
  if (it != compiled_.end()) {
    if (it->second.gen == gen) return it->second.value;
    compiled_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void AuthzCache::StoreCompiledMask(std::string key,
                                   const AuthzGeneration& gen,
                                   std::shared_ptr<const CompiledMask> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (compiled_.size() > kMaxEntries) compiled_.clear();
  compiled_[std::move(key)] = CompiledEntry{gen, std::move(value)};
}

void AuthzCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (prepared_.empty() && masks_.empty() && compiled_.empty()) return;
  prepared_.clear();
  masks_.clear();
  compiled_.clear();
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountRetrieve(bool parallel) {
  retrieves_.fetch_add(1, std::memory_order_relaxed);
  if (parallel) parallel_retrieves_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountMaskCompile() {
  mask_compiles_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountPruned(long long tuples) {
  if (tuples > 0) {
    meta_tuples_pruned_.fetch_add(tuples, std::memory_order_relaxed);
  }
}

void AuthzCache::AddStageTimes(long long mask_micros, long long data_micros,
                               long long apply_micros,
                               long long total_micros) {
  mask_derivation_micros_.fetch_add(mask_micros, std::memory_order_relaxed);
  data_eval_micros_.fetch_add(data_micros, std::memory_order_relaxed);
  mask_apply_micros_.fetch_add(apply_micros, std::memory_order_relaxed);
  total_micros_.fetch_add(total_micros, std::memory_order_relaxed);
}

void AuthzCache::ApplyTxnCounters(const AuthzTxnCounters& c) {
  retrieves_.fetch_add(c.retrieves, std::memory_order_relaxed);
  parallel_retrieves_.fetch_add(c.parallel_retrieves,
                                std::memory_order_relaxed);
  prepared_hits_.fetch_add(c.prepared_hits, std::memory_order_relaxed);
  prepared_misses_.fetch_add(c.prepared_misses, std::memory_order_relaxed);
  mask_hits_.fetch_add(c.mask_hits, std::memory_order_relaxed);
  mask_misses_.fetch_add(c.mask_misses, std::memory_order_relaxed);
  mask_compiles_.fetch_add(c.mask_compiles, std::memory_order_relaxed);
  invalidations_.fetch_add(c.invalidations, std::memory_order_relaxed);
  meta_tuples_pruned_.fetch_add(c.meta_tuples_pruned,
                                std::memory_order_relaxed);
  mask_derivation_micros_.fetch_add(c.mask_derivation_micros,
                                    std::memory_order_relaxed);
  data_eval_micros_.fetch_add(c.data_eval_micros, std::memory_order_relaxed);
  mask_apply_micros_.fetch_add(c.mask_apply_micros,
                               std::memory_order_relaxed);
  total_micros_.fetch_add(c.total_micros, std::memory_order_relaxed);
}

void AuthzCache::CountGovernedAbort(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

void AuthzCache::AddGovernorChecks(long long checks) {
  if (checks > 0) {
    governor_checks_.fetch_add(checks, std::memory_order_relaxed);
  }
}

AuthzStats AuthzCache::Snapshot() const {
  AuthzStats stats;
  stats.retrieves = retrieves_.load(std::memory_order_relaxed);
  stats.parallel_retrieves =
      parallel_retrieves_.load(std::memory_order_relaxed);
  stats.prepared_hits = prepared_hits_.load(std::memory_order_relaxed);
  stats.prepared_misses = prepared_misses_.load(std::memory_order_relaxed);
  stats.mask_hits = mask_hits_.load(std::memory_order_relaxed);
  stats.mask_misses = mask_misses_.load(std::memory_order_relaxed);
  stats.mask_compiles = mask_compiles_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.meta_tuples_pruned =
      meta_tuples_pruned_.load(std::memory_order_relaxed);
  stats.mask_derivation_micros =
      mask_derivation_micros_.load(std::memory_order_relaxed);
  stats.data_eval_micros = data_eval_micros_.load(std::memory_order_relaxed);
  stats.mask_apply_micros =
      mask_apply_micros_.load(std::memory_order_relaxed);
  stats.total_micros = total_micros_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.budget_exceeded = budget_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.governor_checks = governor_checks_.load(std::memory_order_relaxed);
  return stats;
}

void AuthzCache::ResetStats() {
  retrieves_.store(0, std::memory_order_relaxed);
  parallel_retrieves_.store(0, std::memory_order_relaxed);
  prepared_hits_.store(0, std::memory_order_relaxed);
  prepared_misses_.store(0, std::memory_order_relaxed);
  mask_hits_.store(0, std::memory_order_relaxed);
  mask_misses_.store(0, std::memory_order_relaxed);
  mask_compiles_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  meta_tuples_pruned_.store(0, std::memory_order_relaxed);
  mask_derivation_micros_.store(0, std::memory_order_relaxed);
  data_eval_micros_.store(0, std::memory_order_relaxed);
  mask_apply_micros_.store(0, std::memory_order_relaxed);
  total_micros_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  budget_exceeded_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  governor_checks_.store(0, std::memory_order_relaxed);
}

// --- AuthzCacheTxn --------------------------------------------------------

const MetaRelation* AuthzCacheTxn::FindPending(
    const std::vector<PendingEntry>& pending, const std::string& key) {
  // Latest store wins; the vectors stay tiny (a handful of keys per
  // retrieve), so a reverse linear scan beats a map.
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    if (it->key == key) return &it->value;
  }
  return nullptr;
}

std::optional<MetaRelation> AuthzCacheTxn::LookupPrepared(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const MetaRelation* pending = FindPending(prepared_, key)) {
    ++counters_.prepared_hits;
    return *pending;
  }
  bool stale = false;
  std::optional<MetaRelation> hit = cache_->PeekPrepared(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  if (hit.has_value()) {
    ++counters_.prepared_hits;
  } else {
    ++counters_.prepared_misses;
  }
  return hit;
}

void AuthzCacheTxn::StorePrepared(std::string key, const AuthzGeneration& gen,
                                  const MetaRelation& value) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  prepared_.push_back(PendingEntry{std::move(key), gen, value});
}

std::optional<MetaRelation> AuthzCacheTxn::LookupMask(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const MetaRelation* pending = FindPending(masks_, key)) {
    ++counters_.mask_hits;
    return *pending;
  }
  bool stale = false;
  std::optional<MetaRelation> hit = cache_->PeekMask(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  if (hit.has_value()) {
    ++counters_.mask_hits;
  } else {
    ++counters_.mask_misses;
  }
  return hit;
}

void AuthzCacheTxn::StoreMask(std::string key, const AuthzGeneration& gen,
                              const MetaRelation& value) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  masks_.push_back(PendingEntry{std::move(key), gen, value});
}

std::shared_ptr<const CompiledMask> AuthzCacheTxn::LookupCompiledMask(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = compiled_.rbegin(); it != compiled_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  bool stale = false;
  std::shared_ptr<const CompiledMask> hit =
      cache_->PeekCompiledMask(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  return hit;
}

void AuthzCacheTxn::StoreCompiledMask(
    std::string key, const AuthzGeneration& gen,
    std::shared_ptr<const CompiledMask> value) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  compiled_.push_back(PendingCompiled{std::move(key), gen, std::move(value)});
}

void AuthzCacheTxn::CountRetrieve(bool parallel) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.retrieves;
  if (parallel) ++counters_.parallel_retrieves;
}

void AuthzCacheTxn::CountPruned(long long tuples) {
  if (tuples <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.meta_tuples_pruned += tuples;
}

void AuthzCacheTxn::CountMaskCompile() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.mask_compiles;
}

void AuthzCacheTxn::AddStageTimes(long long mask_micros, long long data_micros,
                                  long long apply_micros,
                                  long long total_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.mask_derivation_micros += mask_micros;
  counters_.data_eval_micros += data_micros;
  counters_.mask_apply_micros += apply_micros;
  counters_.total_micros += total_micros;
}

void AuthzCacheTxn::Commit() {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (committed_) return;
  committed_ = true;
  for (PendingEntry& e : prepared_) {
    cache_->StorePrepared(std::move(e.key), e.gen, e.value);
  }
  for (PendingEntry& e : masks_) {
    cache_->StoreMask(std::move(e.key), e.gen, e.value);
  }
  for (PendingCompiled& e : compiled_) {
    cache_->StoreCompiledMask(std::move(e.key), e.gen, std::move(e.value));
  }
  prepared_.clear();
  masks_.clear();
  compiled_.clear();
  cache_->ApplyTxnCounters(counters_);
  counters_ = AuthzTxnCounters{};
}

}  // namespace viewauth
