#include "authz/authz_cache.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "meta/view_store.h"

namespace viewauth {

namespace {
// Workloads touch few distinct (user, relation-set, options) shapes; a
// runaway key space indicates synthetic churn, so reset past this bound.
constexpr size_t kMaxEntries = 1024;

// Does some recorded scope select an entry with this relation read set?
// (The dependency test: scope ⊆ relations.)
bool ScopeMatches(const std::vector<std::set<std::string>>& scopes,
                  const std::set<std::string>& relations) {
  for (const std::set<std::string>& scope : scopes) {
    if (!scope.empty() &&
        std::includes(relations.begin(), relations.end(), scope.begin(),
                      scope.end())) {
      return true;
    }
  }
  return false;
}
}  // namespace

std::string AuthzStats::ToString() const {
  std::ostringstream out;
  out << "authorization stats:\n"
      << "  retrieves:        " << retrieves << " (" << parallel_retrieves
      << " parallel)\n"
      << "  prepared cache:   " << prepared_hits << " hit(s), "
      << prepared_misses << " miss(es)\n"
      << "  mask cache:       " << mask_hits << " hit(s), " << mask_misses
      << " miss(es)\n"
      << "  mask compiles:    " << mask_compiles << "\n"
      << "  vectorized:       " << batches_evaluated << " batch(es), "
      << mask_batch_applies << " mask kernel(s)\n"
      << "  invalidations:    " << invalidations << " entry(ies) ("
      << invalidations_exact << " exact event(s), " << invalidations_over
      << " over)\n"
      << "  inval precision:  " << entries_invalidated << " dropped, "
      << entries_retained << " retained\n"
      << "  meta pruned:      " << meta_tuples_pruned << " tuple(s)\n"
      << "  wall times (us):  mask=" << mask_derivation_micros
      << " data=" << data_eval_micros << " apply=" << mask_apply_micros
      << " total=" << total_micros << "\n"
      << "governor stats:\n"
      << "  deadline aborts:  " << deadline_exceeded << "\n"
      << "  budget aborts:    " << budget_exceeded << "\n"
      << "  cancellations:    " << cancelled << "\n"
      << "  clock probes:     " << governor_checks << "\n"
      << "admission stats:\n"
      << "  attempts:         " << admission_attempts << " (" << admitted
      << " admitted, " << queued << " queued)\n"
      << "  shed:             " << shed << " immediate, " << queue_timeouts
      << " queue timeout(s)\n";
  return out.str();
}

std::optional<MetaRelation> AuthzCache::Lookup(
    std::map<std::string, Entry>* entries, MapId map_id,
    const std::string& key, const AuthzGeneration& gen,
    std::atomic<long long>* hits, std::atomic<long long>* misses) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries->find(key);
  if (it != entries->end()) {
    // Catalog staleness is handled eagerly by SyncCatalog; the lazy
    // check here covers the schema half (direct DDL by engineless
    // callers). A reader pinned to an older snapshot additionally
    // requires entry.catalog <= its own catalog version: an entry that
    // survived journal replay up to the synced sequence is unaffected by
    // every mutation after its store point, a superset of the mutations
    // after any older snapshot — so older entries are valid for old
    // readers, while an entry derived *after* the reader's snapshot may
    // reflect entitlements the snapshot never had.
    if (it->second.gen.schema == gen.schema) {
      if (it->second.gen.catalog <= gen.catalog) {
        hits->fetch_add(1, std::memory_order_relaxed);
        return it->second.value;  // copy out under the lock
      }
      // From the cache's point of view the entry is current (a newer
      // reader will hit it); this old-snapshot reader just misses.
      misses->fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    IndexEraseLocked(map_id, it->first, it->second.deps.user);
    entries->erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  misses->fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void AuthzCache::Store(std::map<std::string, Entry>* entries, MapId map_id,
                       std::string key, const AuthzGeneration& gen,
                       const MetaRelation& value, AuthzDependencies deps) {
  std::lock_guard<std::mutex> lock(mutex_);
  // An entry derived against a catalog sequence the cache has already
  // synced past may be missing invalidations that were replayed in the
  // meantime; admitting it would be unsound. Reachable under snapshot
  // isolation: a retrieve pinned to an old snapshot commits its txn
  // after a newer mutation synced the cache forward — its fills are
  // simply dropped.
  if (gen.catalog != synced_catalog_seq_) return;
  if (entries->size() > kMaxEntries) ClearMapLocked(map_id);
  auto it = entries->find(key);
  if (it != entries->end()) {
    IndexEraseLocked(map_id, it->first, it->second.deps.user);
  }
  IndexInsertLocked(map_id, key, deps.user);
  (*entries)[std::move(key)] = Entry{gen, value, std::move(deps)};
}

std::optional<MetaRelation> AuthzCache::Peek(
    const std::map<std::string, Entry>& entries, const std::string& key,
    const AuthzGeneration& gen, bool* stale) {
  auto it = entries.find(key);
  if (it == entries.end()) return std::nullopt;
  if (it->second.gen.schema == gen.schema) {
    if (it->second.gen.catalog <= gen.catalog) return it->second.value;
    // Entry from a catalog version newer than this reader's snapshot:
    // not usable here, but not stale either (see Lookup).
    return std::nullopt;
  }
  if (stale != nullptr) *stale = true;
  return std::nullopt;
}

std::optional<MetaRelation> AuthzCache::LookupPrepared(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&prepared_, kPrepared, key, gen, &prepared_hits_,
                &prepared_misses_);
}

void AuthzCache::StorePrepared(std::string key, const AuthzGeneration& gen,
                               const MetaRelation& value,
                               AuthzDependencies deps) {
  Store(&prepared_, kPrepared, std::move(key), gen, value, std::move(deps));
}

std::optional<MetaRelation> AuthzCache::LookupMask(
    const std::string& key, const AuthzGeneration& gen) {
  return Lookup(&masks_, kMasks, key, gen, &mask_hits_, &mask_misses_);
}

void AuthzCache::StoreMask(std::string key, const AuthzGeneration& gen,
                           const MetaRelation& value,
                           AuthzDependencies deps) {
  Store(&masks_, kMasks, std::move(key), gen, value, std::move(deps));
}

std::optional<MetaRelation> AuthzCache::PeekPrepared(
    const std::string& key, const AuthzGeneration& gen, bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Peek(prepared_, key, gen, stale);
}

std::optional<MetaRelation> AuthzCache::PeekMask(const std::string& key,
                                                 const AuthzGeneration& gen,
                                                 bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Peek(masks_, key, gen, stale);
}

std::shared_ptr<const CompiledMask> AuthzCache::PeekCompiledMask(
    const std::string& key, const AuthzGeneration& gen, bool* stale) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_.find(key);
  if (it == compiled_.end()) return nullptr;
  if (it->second.gen.schema == gen.schema) {
    if (it->second.gen.catalog <= gen.catalog) return it->second.value;
    return nullptr;
  }
  if (stale != nullptr) *stale = true;
  return nullptr;
}

std::shared_ptr<const CompiledMask> AuthzCache::LookupCompiledMask(
    const std::string& key, const AuthzGeneration& gen) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_.find(key);
  if (it != compiled_.end()) {
    if (it->second.gen.schema == gen.schema) {
      if (it->second.gen.catalog <= gen.catalog) return it->second.value;
      return nullptr;  // newer than this reader's snapshot (see Lookup)
    }
    IndexEraseLocked(kCompiled, it->first, it->second.deps.user);
    compiled_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void AuthzCache::StoreCompiledMask(std::string key,
                                   const AuthzGeneration& gen,
                                   std::shared_ptr<const CompiledMask> value,
                                   AuthzDependencies deps) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gen.catalog != synced_catalog_seq_) return;
  if (compiled_.size() > kMaxEntries) ClearMapLocked(kCompiled);
  auto it = compiled_.find(key);
  if (it != compiled_.end()) {
    IndexEraseLocked(kCompiled, it->first, it->second.deps.user);
  }
  IndexInsertLocked(kCompiled, key, deps.user);
  compiled_[std::move(key)] =
      CompiledEntry{gen, std::move(value), std::move(deps)};
}

// --- dependency index and selective invalidation --------------------------

void AuthzCache::IndexInsertLocked(MapId map_id, const std::string& key,
                                   const std::string& user) {
  by_user_[user].keys[map_id].insert(key);
}

void AuthzCache::IndexEraseLocked(MapId map_id, const std::string& key,
                                  const std::string& user) {
  auto it = by_user_.find(user);
  if (it == by_user_.end()) return;
  it->second.keys[map_id].erase(key);
  if (it->second.keys[kPrepared].empty() && it->second.keys[kMasks].empty() &&
      it->second.keys[kCompiled].empty()) {
    by_user_.erase(it);
  }
}

long long AuthzCache::ClearMapLocked(MapId map_id) {
  long long dropped = 0;
  switch (map_id) {
    case kPrepared:
      dropped = static_cast<long long>(prepared_.size());
      prepared_.clear();
      break;
    case kMasks:
      dropped = static_cast<long long>(masks_.size());
      masks_.clear();
      break;
    case kCompiled:
      dropped = static_cast<long long>(compiled_.size());
      compiled_.clear();
      break;
  }
  for (auto it = by_user_.begin(); it != by_user_.end();) {
    it->second.keys[map_id].clear();
    const bool empty = it->second.keys[kPrepared].empty() &&
                       it->second.keys[kMasks].empty() &&
                       it->second.keys[kCompiled].empty();
    it = empty ? by_user_.erase(it) : std::next(it);
  }
  return dropped;
}

void AuthzCache::DropAllLocked() {
  const long long total = static_cast<long long>(
      prepared_.size() + masks_.size() + compiled_.size());
  prepared_.clear();
  masks_.clear();
  compiled_.clear();
  by_user_.clear();
  if (total > 0) {
    invalidations_.fetch_add(total, std::memory_order_relaxed);
    entries_invalidated_.fetch_add(total, std::memory_order_relaxed);
    invalidations_over_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuthzCache::ApplyCatalogMutationLocked(const CatalogMutation& record) {
  // Records that cannot select any retrieval entry (fresh view
  // definitions, update-mode grants, revocation-record bookkeeping)
  // are exact by construction and not counted as events.
  if (record.users.empty() || record.scopes.empty()) return;

  long long dropped = 0;
  for (const std::string& user : record.users) {
    auto ref = by_user_.find(user);
    if (ref == by_user_.end()) continue;
    for (int m = 0; m < 3; ++m) {
      std::vector<std::string> doomed;
      for (const std::string& key : ref->second.keys[m]) {
        const AuthzDependencies* deps = nullptr;
        if (m == kCompiled) {
          auto it = compiled_.find(key);
          if (it != compiled_.end()) deps = &it->second.deps;
        } else {
          auto& entries = (m == kPrepared) ? prepared_ : masks_;
          auto it = entries.find(key);
          if (it != entries.end()) deps = &it->second.deps;
        }
        if (deps != nullptr && ScopeMatches(record.scopes, deps->relations)) {
          doomed.push_back(key);
        }
      }
      for (const std::string& key : doomed) {
        if (m == kCompiled) {
          compiled_.erase(key);
        } else {
          ((m == kPrepared) ? prepared_ : masks_).erase(key);
        }
        ref->second.keys[m].erase(key);
        ++dropped;
      }
    }
    if (ref->second.keys[kPrepared].empty() &&
        ref->second.keys[kMasks].empty() &&
        ref->second.keys[kCompiled].empty()) {
      by_user_.erase(ref);
    }
  }

  invalidations_exact_.fetch_add(1, std::memory_order_relaxed);
  const long long survivors =
      static_cast<long long>(prepared_.size() + masks_.size() +
                             compiled_.size());
  entries_retained_.fetch_add(survivors, std::memory_order_relaxed);
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    entries_invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

void AuthzCache::SyncCatalog(const ViewCatalog& catalog) {
  std::lock_guard<std::mutex> lock(mutex_);
  const long long target = catalog.catalog_version();
  if (target <= synced_catalog_seq_) return;
  // A catalog older than our synced point needs nothing: it is a
  // snapshot of a catalog we already replayed past, and its readers are
  // screened at lookup by the entry.catalog <= reader.catalog rule —
  // moving the clock backward (or wiping) for them would let a later
  // Store from the newer catalog be rejected or, worse, re-admitted
  // under a reused sequence number.
  std::vector<CatalogMutation> records;
  if (!catalog.MutationsSince(synced_catalog_seq_, &records)) {
    // The bounded journal no longer reaches back to our synced point:
    // records were lost, so no sound selective answer exists.
    DropAllLocked();
  } else {
    for (const CatalogMutation& record : records) {
      ApplyCatalogMutationLocked(record);
    }
  }
  synced_catalog_seq_ = target;
  CheckIndexLocked();
}

long long AuthzCache::synced_catalog_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return synced_catalog_seq_;
}

void AuthzCache::CheckIndexLocked() const {
#ifndef NDEBUG
  // Forward: every entry is indexed under its user.
  auto check_entry = [this](MapId m, const std::string& key,
                            const AuthzDependencies& deps) {
    auto it = by_user_.find(deps.user);
    assert(it != by_user_.end() && "cache entry missing from user index");
    assert(it->second.keys[m].contains(key) &&
           "cache entry key missing from user index");
  };
  for (const auto& [key, entry] : prepared_) {
    check_entry(kPrepared, key, entry.deps);
  }
  for (const auto& [key, entry] : masks_) check_entry(kMasks, key, entry.deps);
  for (const auto& [key, entry] : compiled_) {
    check_entry(kCompiled, key, entry.deps);
  }
  // Backward: every indexed key resolves to a live entry of that user.
  for (const auto& [user, refs] : by_user_) {
    for (const std::string& key : refs.keys[kPrepared]) {
      auto it = prepared_.find(key);
      assert(it != prepared_.end() && it->second.deps.user == user);
    }
    for (const std::string& key : refs.keys[kMasks]) {
      auto it = masks_.find(key);
      assert(it != masks_.end() && it->second.deps.user == user);
    }
    for (const std::string& key : refs.keys[kCompiled]) {
      auto it = compiled_.find(key);
      assert(it != compiled_.end() && it->second.deps.user == user);
    }
    assert((!refs.keys[kPrepared].empty() || !refs.keys[kMasks].empty() ||
            !refs.keys[kCompiled].empty()) &&
           "user index entry with no keys");
  }
#endif
}

void AuthzCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  DropAllLocked();
}

void AuthzCache::CountRetrieve(bool parallel) {
  retrieves_.fetch_add(1, std::memory_order_relaxed);
  if (parallel) parallel_retrieves_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountMaskCompile() {
  mask_compiles_.fetch_add(1, std::memory_order_relaxed);
}

void AuthzCache::CountBatches(long long batches, long long mask_applies) {
  if (batches > 0) {
    batches_evaluated_.fetch_add(batches, std::memory_order_relaxed);
  }
  if (mask_applies > 0) {
    mask_batch_applies_.fetch_add(mask_applies, std::memory_order_relaxed);
  }
}

void AuthzCache::CountPruned(long long tuples) {
  if (tuples > 0) {
    meta_tuples_pruned_.fetch_add(tuples, std::memory_order_relaxed);
  }
}

void AuthzCache::AddStageTimes(long long mask_micros, long long data_micros,
                               long long apply_micros,
                               long long total_micros) {
  mask_derivation_micros_.fetch_add(mask_micros, std::memory_order_relaxed);
  data_eval_micros_.fetch_add(data_micros, std::memory_order_relaxed);
  mask_apply_micros_.fetch_add(apply_micros, std::memory_order_relaxed);
  total_micros_.fetch_add(total_micros, std::memory_order_relaxed);
}

void AuthzCache::ApplyTxnCounters(const AuthzTxnCounters& c) {
  retrieves_.fetch_add(c.retrieves, std::memory_order_relaxed);
  parallel_retrieves_.fetch_add(c.parallel_retrieves,
                                std::memory_order_relaxed);
  prepared_hits_.fetch_add(c.prepared_hits, std::memory_order_relaxed);
  prepared_misses_.fetch_add(c.prepared_misses, std::memory_order_relaxed);
  mask_hits_.fetch_add(c.mask_hits, std::memory_order_relaxed);
  mask_misses_.fetch_add(c.mask_misses, std::memory_order_relaxed);
  mask_compiles_.fetch_add(c.mask_compiles, std::memory_order_relaxed);
  batches_evaluated_.fetch_add(c.batches_evaluated,
                               std::memory_order_relaxed);
  mask_batch_applies_.fetch_add(c.mask_batch_applies,
                                std::memory_order_relaxed);
  invalidations_.fetch_add(c.invalidations, std::memory_order_relaxed);
  meta_tuples_pruned_.fetch_add(c.meta_tuples_pruned,
                                std::memory_order_relaxed);
  mask_derivation_micros_.fetch_add(c.mask_derivation_micros,
                                    std::memory_order_relaxed);
  data_eval_micros_.fetch_add(c.data_eval_micros, std::memory_order_relaxed);
  mask_apply_micros_.fetch_add(c.mask_apply_micros,
                               std::memory_order_relaxed);
  total_micros_.fetch_add(c.total_micros, std::memory_order_relaxed);
}

void AuthzCache::CountGovernedAbort(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

void AuthzCache::AddGovernorChecks(long long checks) {
  if (checks > 0) {
    governor_checks_.fetch_add(checks, std::memory_order_relaxed);
  }
}

AuthzStats AuthzCache::Snapshot() const {
  AuthzStats stats;
  stats.retrieves = retrieves_.load(std::memory_order_relaxed);
  stats.parallel_retrieves =
      parallel_retrieves_.load(std::memory_order_relaxed);
  stats.prepared_hits = prepared_hits_.load(std::memory_order_relaxed);
  stats.prepared_misses = prepared_misses_.load(std::memory_order_relaxed);
  stats.mask_hits = mask_hits_.load(std::memory_order_relaxed);
  stats.mask_misses = mask_misses_.load(std::memory_order_relaxed);
  stats.mask_compiles = mask_compiles_.load(std::memory_order_relaxed);
  stats.batches_evaluated =
      batches_evaluated_.load(std::memory_order_relaxed);
  stats.mask_batch_applies =
      mask_batch_applies_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.entries_invalidated =
      entries_invalidated_.load(std::memory_order_relaxed);
  stats.entries_retained = entries_retained_.load(std::memory_order_relaxed);
  stats.invalidations_exact =
      invalidations_exact_.load(std::memory_order_relaxed);
  stats.invalidations_over =
      invalidations_over_.load(std::memory_order_relaxed);
  stats.meta_tuples_pruned =
      meta_tuples_pruned_.load(std::memory_order_relaxed);
  stats.mask_derivation_micros =
      mask_derivation_micros_.load(std::memory_order_relaxed);
  stats.data_eval_micros = data_eval_micros_.load(std::memory_order_relaxed);
  stats.mask_apply_micros =
      mask_apply_micros_.load(std::memory_order_relaxed);
  stats.total_micros = total_micros_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.budget_exceeded = budget_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.governor_checks = governor_checks_.load(std::memory_order_relaxed);
  return stats;
}

void AuthzCache::ResetStats() {
  retrieves_.store(0, std::memory_order_relaxed);
  parallel_retrieves_.store(0, std::memory_order_relaxed);
  prepared_hits_.store(0, std::memory_order_relaxed);
  prepared_misses_.store(0, std::memory_order_relaxed);
  mask_hits_.store(0, std::memory_order_relaxed);
  mask_misses_.store(0, std::memory_order_relaxed);
  mask_compiles_.store(0, std::memory_order_relaxed);
  batches_evaluated_.store(0, std::memory_order_relaxed);
  mask_batch_applies_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  entries_invalidated_.store(0, std::memory_order_relaxed);
  entries_retained_.store(0, std::memory_order_relaxed);
  invalidations_exact_.store(0, std::memory_order_relaxed);
  invalidations_over_.store(0, std::memory_order_relaxed);
  meta_tuples_pruned_.store(0, std::memory_order_relaxed);
  mask_derivation_micros_.store(0, std::memory_order_relaxed);
  data_eval_micros_.store(0, std::memory_order_relaxed);
  mask_apply_micros_.store(0, std::memory_order_relaxed);
  total_micros_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  budget_exceeded_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  governor_checks_.store(0, std::memory_order_relaxed);
}

// --- AuthzCacheTxn --------------------------------------------------------

const MetaRelation* AuthzCacheTxn::FindPending(
    const std::vector<PendingEntry>& pending, const std::string& key) {
  // Latest store wins; the vectors stay tiny (a handful of keys per
  // retrieve), so a reverse linear scan beats a map.
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    if (it->key == key) return &it->value;
  }
  return nullptr;
}

std::optional<MetaRelation> AuthzCacheTxn::LookupPrepared(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const MetaRelation* pending = FindPending(prepared_, key)) {
    ++counters_.prepared_hits;
    return *pending;
  }
  bool stale = false;
  std::optional<MetaRelation> hit = cache_->PeekPrepared(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  if (hit.has_value()) {
    ++counters_.prepared_hits;
  } else {
    ++counters_.prepared_misses;
  }
  return hit;
}

void AuthzCacheTxn::StorePrepared(std::string key, const AuthzGeneration& gen,
                                  const MetaRelation& value,
                                  AuthzDependencies deps) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  prepared_.push_back(
      PendingEntry{std::move(key), gen, value, std::move(deps)});
}

std::optional<MetaRelation> AuthzCacheTxn::LookupMask(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const MetaRelation* pending = FindPending(masks_, key)) {
    ++counters_.mask_hits;
    return *pending;
  }
  bool stale = false;
  std::optional<MetaRelation> hit = cache_->PeekMask(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  if (hit.has_value()) {
    ++counters_.mask_hits;
  } else {
    ++counters_.mask_misses;
  }
  return hit;
}

void AuthzCacheTxn::StoreMask(std::string key, const AuthzGeneration& gen,
                              const MetaRelation& value,
                              AuthzDependencies deps) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  masks_.push_back(PendingEntry{std::move(key), gen, value, std::move(deps)});
}

std::shared_ptr<const CompiledMask> AuthzCacheTxn::LookupCompiledMask(
    const std::string& key, const AuthzGeneration& gen) {
  if (cache_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = compiled_.rbegin(); it != compiled_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  bool stale = false;
  std::shared_ptr<const CompiledMask> hit =
      cache_->PeekCompiledMask(key, gen, &stale);
  if (stale) ++counters_.invalidations;
  return hit;
}

void AuthzCacheTxn::StoreCompiledMask(
    std::string key, const AuthzGeneration& gen,
    std::shared_ptr<const CompiledMask> value, AuthzDependencies deps) {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  compiled_.push_back(
      PendingCompiled{std::move(key), gen, std::move(value), std::move(deps)});
}

void AuthzCacheTxn::CountRetrieve(bool parallel) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.retrieves;
  if (parallel) ++counters_.parallel_retrieves;
}

void AuthzCacheTxn::CountPruned(long long tuples) {
  if (tuples <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.meta_tuples_pruned += tuples;
}

void AuthzCacheTxn::CountMaskCompile() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.mask_compiles;
}

void AuthzCacheTxn::CountBatches(long long batches, long long mask_applies) {
  if (batches <= 0 && mask_applies <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.batches_evaluated += batches;
  counters_.mask_batch_applies += mask_applies;
}

void AuthzCacheTxn::AddStageTimes(long long mask_micros, long long data_micros,
                                  long long apply_micros,
                                  long long total_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.mask_derivation_micros += mask_micros;
  counters_.data_eval_micros += data_micros;
  counters_.mask_apply_micros += apply_micros;
  counters_.total_micros += total_micros;
}

void AuthzCacheTxn::Commit() {
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (committed_) return;
  committed_ = true;
  for (PendingEntry& e : prepared_) {
    cache_->StorePrepared(std::move(e.key), e.gen, e.value,
                          std::move(e.deps));
  }
  for (PendingEntry& e : masks_) {
    cache_->StoreMask(std::move(e.key), e.gen, e.value, std::move(e.deps));
  }
  for (PendingCompiled& e : compiled_) {
    cache_->StoreCompiledMask(std::move(e.key), e.gen, std::move(e.value),
                              std::move(e.deps));
  }
  prepared_.clear();
  masks_.clear();
  compiled_.clear();
  cache_->ApplyTxnCounters(counters_);
  counters_ = AuthzTxnCounters{};
}

}  // namespace viewauth
