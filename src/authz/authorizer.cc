#include "authz/authorizer.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>

#include "algebra/latemat.h"
#include "algebra/optimizer.h"
#include "algebra/vectorized.h"
#include "storage/column_batch.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "meta/self_join.h"

namespace viewauth {

namespace {

using SteadyClock = std::chrono::steady_clock;

long long MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             SteadyClock::now() - start)
      .count();
}

// Cache key of a derived mask: the user, the delivery flavor (final or
// wide), every option that changes the derived tuples, and the query's
// canonical signature.
std::string MaskCacheKey(std::string_view user, const ConjunctiveQuery& query,
                         const AuthorizationOptions& o, bool wide) {
  std::string key(user);
  key += wide ? "|W|" : "|F|";
  key += o.padding ? 'p' : '-';
  key += o.four_case ? 'f' : '-';
  key += o.subsumption ? 's' : '-';
  key += o.prune_dangling ? 'd' : '-';
  key += o.self_joins ? std::to_string(o.self_join_rounds) : "0";
  key += "|";
  key += query.CanonicalSignature();
  return key;
}

// The data-side evaluation (S), timed. Runs on a pool worker during
// parallel retrieves; never waits on anything.
struct TimedEval {
  Result<Relation> relation = Relation();
  EvalStats stats;
  long long micros = 0;
};

TimedEval EvaluateData(const ConjunctiveQuery& query,
                       const DatabaseInstance& db, const char* name,
                       const AuthorizationOptions& options,
                       ExecContext* ctx) {
  TimedEval out;
  const auto start = SteadyClock::now();
  if (!options.use_optimized_data_plan) {
    out.relation = EvaluateCanonical(query, db, name, &out.stats, ctx);
  } else if (options.use_vectorized_data_plan) {
    out.relation = EvaluateVectorized(query, db, name, &out.stats, ctx);
  } else if (options.use_latemat_data_plan) {
    out.relation = EvaluateLateMaterialized(query, db, name, &out.stats, ctx);
  } else {
    out.relation = EvaluateOptimized(query, db, name, &out.stats, ctx);
  }
  out.micros = MicrosSince(start);
  return out;
}

// The read set of a mask derived for (user, query): the query's base
// relations plus every granted view the derivation folded in — exactly
// the views PrunedMetaRelationGoverned's coverage filter admits (the
// view's relations all appear in the query). This is what selective
// invalidation matches catalog mutations against.
AuthzDependencies CaptureReadSet(const ViewCatalog& catalog,
                                 std::string_view user,
                                 const ConjunctiveQuery& query) {
  AuthzDependencies deps;
  deps.user = std::string(user);
  for (const MembershipAtom& atom : query.atoms()) {
    deps.relations.insert(atom.relation);
  }
  for (const ViewDefinition* view : catalog.PermittedViews(user)) {
    const bool covered = std::all_of(
        view->relations.begin(), view->relations.end(),
        [&](const std::string& r) { return deps.relations.contains(r); });
    if (covered) deps.views.insert(view->name);
  }
  return deps;
}

// The compiled form of a derived mask, cached under the same key and
// generation as the mask itself (compiled_ is a separate map, so the key
// may be shared). Compiling is cheap relative to derivation but still
// worth caching: warm retrieves then skip even the one-pass compile.
// Routed through the retrieve's txn so an abort leaves no compiled entry.
std::shared_ptr<const CompiledMask> ObtainCompiledMask(
    AuthzCacheTxn* txn, bool use_cache, const std::string& key,
    const AuthzGeneration& gen, const MetaRelation& mask,
    AuthzDependencies deps) {
  if (use_cache) {
    if (std::shared_ptr<const CompiledMask> cached =
            txn->LookupCompiledMask(key, gen)) {
      return cached;
    }
  }
  auto compiled =
      std::make_shared<const CompiledMask>(CompiledMask::Compile(mask));
  txn->CountMaskCompile();
  if (use_cache) {
    txn->StoreCompiledMask(key, gen, compiled, std::move(deps));
  }
  return compiled;
}

}  // namespace

std::string InferredPermit::ToString() const {
  std::string out = "permit (" + Join(columns, ", ") + ")";
  if (!where.empty()) out += " where " + where;
  return out;
}

AuthzGeneration Authorizer::CurrentGeneration() const {
  // Reading the clock brings the cache up to date with the catalog's
  // mutation journal first. This is what keeps callers that mutate the
  // catalog directly (no engine routing) sound: any entitlement change
  // is replayed — selectively — before the generation it stamps on new
  // entries is observed.
  if (cache_ != nullptr) cache_->SyncCatalog(*catalog_);
  return AuthzGeneration{catalog_->catalog_version(), db_->ddl_version()};
}

Result<MetaRelation> Authorizer::PrunedMetaRelation(
    std::string_view user, const ConjunctiveQuery& query, int atom,
    const AuthorizationOptions& options) const {
  std::optional<ExecContext> local;
  const ExecLimits limits = ExecLimitsOf(options);
  if (limits.any()) local.emplace(limits);
  AuthzCacheTxn txn(cache_);
  Result<MetaRelation> result = PrunedMetaRelationGoverned(
      user, query, atom, options, local.has_value() ? &*local : nullptr,
      &txn);
  if (result.ok()) txn.Commit();
  return result;
}

Result<MetaRelation> Authorizer::PrunedMetaRelationGoverned(
    std::string_view user, const ConjunctiveQuery& query, int atom,
    const AuthorizationOptions& options, ExecContext* ctx,
    AuthzCacheTxn* txn) const {
  if (atom < 0 || atom >= static_cast<int>(query.atoms().size())) {
    return Status::InvalidArgument("atom index out of range");
  }
  const std::string& relation = query.atoms()[atom].relation;
  const RelationSchema& schema = query.atom_schema(atom);

  std::set<std::string> query_relations;
  for (const MembershipAtom& a : query.atoms()) {
    query_relations.insert(a.relation);
  }

  // Cache lookup: the result depends only on the user, the target
  // relation, the set of query relations (the pruning scope), and the
  // self-join settings. Freshness is the generation check.
  const bool use_cache = cache_ != nullptr && options.enable_authz_cache &&
                         options.use_meta_cache;
  std::string cache_key;
  AuthzGeneration gen;
  if (use_cache) {
    gen = CurrentGeneration();
    cache_key = std::string(user) + "|" + relation + "|";
    for (const std::string& r : query_relations) {
      cache_key += r;
      cache_key += ",";
    }
    cache_key += "|sj=";
    cache_key += options.self_joins
                     ? std::to_string(options.self_join_rounds)
                     : "0";
    if (std::optional<MetaRelation> cached =
            txn->LookupPrepared(cache_key, gen)) {
      return std::move(*cached);
    }
  }

  MetaRelation out(schema.attributes());
  // Read-set capture rides the existing walk: the views folded into the
  // prepared meta-relation are exactly the covered grants.
  AuthzDependencies deps;
  deps.user = std::string(user);
  deps.relations = query_relations;
  for (const ViewDefinition* view : catalog_->PermittedViews(user)) {
    // The paper's pruning: keep only views "defined in these relations in
    // their entirety" — every relation the view mentions must appear in
    // the query.
    bool covered = std::all_of(
        view->relations.begin(), view->relations.end(),
        [&](const std::string& r) { return query_relations.contains(r); });
    if (!covered) continue;
    deps.views.insert(view->name);
    for (size_t i = 0; i < view->tuples.size(); ++i) {
      if (view->tuple_relations[i] == relation) {
        out.Add(view->tuples[i]);
      }
    }
  }
  if (options.self_joins) {
    out = WithSelfJoins(out, schema, options.self_join_rounds);
  }
  // Charge the prepared meta-relation in one batch (self-join inference
  // can expand it well past the stored tuples).
  if (ctx != nullptr &&
      !ctx->Tick(out.size(),
                 static_cast<long long>(out.size()) * 64 * schema.arity())) {
    return ctx->status();
  }
  if (use_cache) {
    txn->StorePrepared(std::move(cache_key), gen, out, std::move(deps));
  }
  return out;
}

std::string MaskTrace::ToString() const {
  std::ostringstream out;
  out << "authorization trace:\n";
  for (const OperandStage& stage : operands) {
    out << "  " << stage.relation << "': " << stage.view_tuples
        << " stored tuple(s)";
    if (stage.with_self_joins != stage.view_tuples) {
      out << " -> " << stage.with_self_joins << " with self-joins";
    }
    out << "\n";
  }
  out << "  products: " << after_products << " combined tuple(s), "
      << after_dangling_prune << " after pruning\n";
  for (const SelectionStage& stage : selections) {
    out << "  select " << stage.predicate << ": " << stage.before
        << " -> " << stage.after << "\n";
  }
  out << "  projection: " << after_projection << " tuple(s)\n"
      << "  final mask: " << final_mask << " tuple(s)\n";
  return out.str();
}

Result<MaskTrace> Authorizer::Explain(std::string_view user,
                                      const ConjunctiveQuery& query,
                                      const AuthorizationOptions& options)
    const {
  MaskTrace trace;
  VIEWAUTH_RETURN_NOT_OK(
      DeriveMask(user, query, options, nullptr, &trace).status());
  return trace;
}

Result<MetaRelation> Authorizer::DeriveWideMask(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, MetaRelation* product_stage,
    MaskTrace* trace) const {
  std::optional<ExecContext> local;
  const ExecLimits limits = ExecLimitsOf(options);
  if (limits.any()) local.emplace(limits);
  AuthzCacheTxn txn(cache_);
  Result<MetaRelation> result = DeriveWideMaskGoverned(
      user, query, options, product_stage, trace,
      local.has_value() ? &*local : nullptr, &txn);
  if (result.ok()) txn.Commit();
  return result;
}

Result<MetaRelation> Authorizer::DeriveWideMaskGoverned(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, MetaRelation* product_stage,
    MaskTrace* trace, ExecContext* ctx, AuthzCacheTxn* txn) const {
  MetaOpOptions op_options;
  op_options.padding = options.padding;
  op_options.four_case = options.four_case;

  // Per-relation meta-relations are identical for repeated occurrences;
  // compute once per relation name. The per-relation preparations are
  // independent, so without tracing they fan out across the pool when
  // the query spans more than one relation.
  std::vector<std::pair<std::string, int>> distinct;  // relation, first atom
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const std::string& rel = query.atoms()[a].relation;
    bool seen = false;
    for (const auto& d : distinct) {
      if (d.first == rel) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.emplace_back(rel, static_cast<int>(a));
  }
  std::map<std::string, MetaRelation> per_relation;
  // A saturated pool degrades gracefully to inline preparation: with the
  // bounded submission queue, fanning out from within an already-full
  // pool would only trade queue waits for inline work.
  if (options.parallel_meta_evaluation && trace == nullptr &&
      distinct.size() > 1 && !GlobalThreadPool().Saturated()) {
    std::vector<std::future<Result<MetaRelation>>> futures;
    futures.reserve(distinct.size());
    for (const auto& [rel, atom] : distinct) {
      (void)rel;
      // ctx and txn are internally synchronized; the workers share both.
      futures.push_back(
          GlobalThreadPool().Submit([this, user, &query, atom = atom,
                                     &options, ctx, txn] {
            return PrunedMetaRelationGoverned(user, query, atom, options,
                                              ctx, txn);
          }));
    }
    // Collect every future before acting on errors: the tasks reference
    // this call's locals.
    std::vector<Result<MetaRelation>> prepared;
    prepared.reserve(futures.size());
    for (std::future<Result<MetaRelation>>& f : futures) {
      prepared.push_back(f.get());
    }
    for (size_t i = 0; i < prepared.size(); ++i) {
      VIEWAUTH_RETURN_NOT_OK(prepared[i].status());
      per_relation.emplace(distinct[i].first, std::move(*prepared[i]));
    }
  } else {
    for (const auto& [rel, atom] : distinct) {
      if (trace != nullptr) {
        AuthorizationOptions bare = options;
        bare.self_joins = false;
        bare.use_meta_cache = false;
        VIEWAUTH_ASSIGN_OR_RETURN(
            MetaRelation stored,
            PrunedMetaRelationGoverned(user, query, atom, bare, ctx, txn));
        trace->operands.push_back(
            MaskTrace::OperandStage{rel, stored.size(), 0});
      }
      VIEWAUTH_ASSIGN_OR_RETURN(
          MetaRelation meta,
          PrunedMetaRelationGoverned(user, query, atom, options, ctx, txn));
      if (trace != nullptr) {
        trace->operands.back().with_self_joins = meta.size();
      }
      per_relation.emplace(rel, std::move(meta));
    }
  }

  // S' step 1: all products first (the paper's canonical strategy).
  // Intermediate duplicate elimination keeps the padded products from
  // stacking combinatorially, and hopeless tuples — those missing an
  // atom of a relation that no remaining operand ranges over — are
  // pruned early rather than multiplied.
  const std::map<AtomId, ViewCatalog::AtomInfo>& atom_info =
      catalog_->atom_info();
  auto prune_hopeless = [&](MetaRelation rel, size_t next_atom_index) {
    std::map<std::string, int> remaining;
    for (size_t a = next_atom_index; a < query.atoms().size(); ++a) {
      ++remaining[query.atoms()[a].relation];
    }
    MetaRelation out(rel.columns());
    for (MetaTuple& tuple : rel.tuples()) {
      // Any operand tuple carries at most one atom of a given view (the
      // self-join refinement never pairs a view with itself), so needing
      // more atoms of one view over relation X than there are X slots
      // left is hopeless.
      std::set<AtomId> missing;
      for (VarId var : tuple.CellVars()) {
        auto it = tuple.var_atoms().find(var);
        if (it == tuple.var_atoms().end()) continue;
        for (AtomId atom : it->second) {
          if (!tuple.origin_atoms().contains(atom)) missing.insert(atom);
        }
      }
      std::map<std::pair<std::string, std::string>, int> needed;
      for (AtomId atom : missing) {
        auto info = atom_info.find(atom);
        if (info != atom_info.end()) {
          ++needed[{info->second.view, info->second.relation}];
        }
      }
      bool hopeless = false;
      for (const auto& [view_relation, count] : needed) {
        auto rem = remaining.find(view_relation.second);
        if (rem == remaining.end() || rem->second < count) {
          hopeless = true;
          break;
        }
      }
      if (!hopeless) out.Add(std::move(tuple));
    }
    return out;
  };

  long long pruned = 0;  // hopeless + dangling tuples removed
  MetaRelation current;
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const MetaRelation& operand = per_relation.at(query.atoms()[a].relation);
    if (a == 0) {
      current = operand;
    } else {
      current = RemoveDuplicates(
          MetaProduct(current, operand, op_options, ctx));
      if (ctx != nullptr && !ctx->ok()) return ctx->status();
    }
    if (options.prune_dangling) {
      const int before = current.size();
      current = prune_hopeless(std::move(current), a + 1);
      pruned += before - current.size();
    }
  }

  if (trace != nullptr) trace->after_products = current.size();

  // Prune combined tuples that reference meta-tuples outside the result,
  // and tuples that project nothing (padding residue): no later operator
  // ever adds a projected column, so they can never contribute to the
  // mask.
  if (options.prune_dangling) {
    const int before = current.size();
    current = PruneDanglingTuples(current);
    pruned += before - current.size();
  }
  {
    MetaRelation projecting(current.columns());
    for (MetaTuple& tuple : current.tuples()) {
      bool any_star = false;
      for (const MetaCell& cell : tuple.cells()) {
        if (cell.projected) {
          any_star = true;
          break;
        }
      }
      if (any_star) projecting.Add(std::move(tuple));
    }
    current = std::move(projecting);
  }
  current = RemoveDuplicates(current);
  if (trace != nullptr) trace->after_dangling_prune = current.size();
  if (product_stage != nullptr) *product_stage = current;

  // S' step 2: selections.
  std::vector<std::string> product_names = query.ProductColumnNames();
  for (const CalculusCondition& cond : query.conditions()) {
    MetaSelection sel =
        cond.rhs_is_column
            ? MetaSelection::ColumnColumn(query.FlatIndex(cond.lhs), cond.op,
                                          query.FlatIndex(cond.rhs_column))
            : MetaSelection::ColumnConst(query.FlatIndex(cond.lhs), cond.op,
                                         cond.rhs_const);
    const int before = current.size();
    current = MetaSelect(current, sel, op_options,
                         catalog_->synthetic_allocator(), ctx);
    if (ctx != nullptr && !ctx->ok()) return ctx->status();
    if (trace != nullptr) {
      std::string predicate =
          product_names[static_cast<size_t>(query.FlatIndex(cond.lhs))];
      predicate += " ";
      predicate += ComparatorToString(cond.op);
      predicate += " ";
      predicate += cond.rhs_is_column
                       ? product_names[static_cast<size_t>(
                             query.FlatIndex(cond.rhs_column))]
                       : cond.rhs_const.ToDisplayString(false);
      trace->selections.push_back(MaskTrace::SelectionStage{
          std::move(predicate), before, current.size()});
    }
  }

  // Four-case post-pass: a conjunction of query predicates may jointly
  // imply a tuple's restriction even when no single predicate does
  // (the paper's case "between 400,000 and 500,000" against the view
  // "between 300,000 and 600,000"). Express the query's full selection
  // over column terms and clear implied cells.
  if (options.four_case) {
    // The implied-restriction pass may call the constraint solver per
    // tuple; probe the deadline once before entering it.
    if (ctx != nullptr && !ctx->CheckNow()) return ctx->status();
    auto column_term = [](int col) -> TermId { return -(col + 1); };
    ConstraintSet lambda;
    {
      int col = 0;
      for (size_t a = 0; a < query.atoms().size(); ++a) {
        const RelationSchema& rel = query.atom_schema(static_cast<int>(a));
        for (int i = 0; i < rel.arity(); ++i, ++col) {
          lambda.DeclareTermType(column_term(col), rel.attribute(i).type);
        }
      }
    }
    for (const CalculusCondition& cond : query.conditions()) {
      if (cond.rhs_is_column) {
        lambda.AddTermTerm(column_term(query.FlatIndex(cond.lhs)), cond.op,
                           column_term(query.FlatIndex(cond.rhs_column)));
      } else {
        lambda.AddTermConst(column_term(query.FlatIndex(cond.lhs)), cond.op,
                            cond.rhs_const);
      }
    }
    ClearImpliedRestrictions(&current, lambda, column_term);
  }

  txn->CountPruned(pruned);
  return current;
}

Result<MetaRelation> Authorizer::DeriveMask(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, MetaRelation* product_stage,
    MaskTrace* trace) const {
  std::optional<ExecContext> local;
  const ExecLimits limits = ExecLimitsOf(options);
  if (limits.any()) local.emplace(limits);
  AuthzCacheTxn txn(cache_);
  Result<MetaRelation> result = DeriveMaskGoverned(
      user, query, options, product_stage, trace,
      local.has_value() ? &*local : nullptr, &txn);
  if (result.ok()) txn.Commit();
  return result;
}

Result<MetaRelation> Authorizer::DeriveMaskGoverned(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, MetaRelation* product_stage,
    MaskTrace* trace, ExecContext* ctx, AuthzCacheTxn* txn) const {
  // The full S' run is cacheable whenever no intermediate stage was
  // requested: the mask depends only on the user, the query signature,
  // and the options folded into the key.
  const bool use_cache = cache_ != nullptr && options.enable_authz_cache &&
                         product_stage == nullptr && trace == nullptr;
  std::string cache_key;
  AuthzGeneration gen;
  if (use_cache) {
    gen = CurrentGeneration();
    cache_key = MaskCacheKey(user, query, options, /*wide=*/false);
    if (std::optional<MetaRelation> cached =
            txn->LookupMask(cache_key, gen)) {
      return std::move(*cached);
    }
  }

  VIEWAUTH_ASSIGN_OR_RETURN(
      MetaRelation current,
      DeriveWideMaskGoverned(user, query, options, product_stage, trace,
                             ctx, txn));

  // S' step 3: the final projection onto the requested columns.
  std::vector<int> keep;
  keep.reserve(query.targets().size());
  for (const ColumnRef& target : query.targets()) {
    keep.push_back(query.FlatIndex(target));
  }
  current = MetaProject(current, keep);
  if (trace != nullptr) trace->after_projection = current.size();

  // Rename the mask's columns to the answer's column names.
  std::vector<std::string> names = query.OutputColumnNames();
  std::vector<ValueType> types = query.OutputColumnTypes();
  std::vector<Attribute> columns;
  columns.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    columns.push_back(Attribute{names[i], types[i]});
  }
  MetaRelation mask(std::move(columns));
  for (MetaTuple& tuple : current.tuples()) {
    mask.Add(std::move(tuple));
  }

  // Products are done: provenance no longer matters, so tuples that
  // differ only in their origins collapse.
  mask = RemoveDuplicates(mask, /*respect_provenance=*/false);
  if (options.subsumption) mask = RemoveSubsumed(mask);
  if (trace != nullptr) trace->final_mask = mask.size();
  if (use_cache) {
    txn->StoreMask(std::move(cache_key), gen, mask,
                   CaptureReadSet(*catalog_, user, query));
  }
  return mask;
}

bool Authorizer::RowSatisfies(const MetaTuple& tuple, const Tuple& row) {
  // One pass over the cells: constant cells compare directly; every
  // variable cell binds its variable to the row's value, a variable
  // spanning several cells requiring equal values. (All checks are
  // conjunctive, so the merged pass decides identically to checking
  // constants first.)
  std::map<TermId, Value> assignment;
  for (int i = 0; i < tuple.arity(); ++i) {
    const MetaCell& cell = tuple.cells()[i];
    if (cell.kind == CellKind::kConst) {
      if (!row.at(i).Satisfies(Comparator::kEq, cell.constant)) return false;
    } else if (cell.kind == CellKind::kVar) {
      if (row.at(i).is_null()) return false;
      auto [it, inserted] = assignment.emplace(cell.var, row.at(i));
      if (!inserted && !it->second.Satisfies(Comparator::kEq, row.at(i))) {
        return false;
      }
    }
  }
  if (assignment.empty() && tuple.constraints().atom_count() == 0) {
    return true;
  }

  // Fast path: when every constrained term has a cell binding, the atoms
  // evaluate directly — no solver involved.
  bool total = true;
  for (TermId term : tuple.constraints().MentionedTerms()) {
    if (!assignment.contains(term)) {
      total = false;
      break;
    }
  }
  if (total) return tuple.constraints().Satisfied(assignment);

  // Store-only (existential) variables remain: delegate to the solver.
  ConstraintSet check = tuple.constraints();
  for (const auto& [var, value] : assignment) {
    check.AddTermConst(var, Comparator::kEq, value);
  }
  return check.IsSatisfiable();
}

Relation Authorizer::ApplyMask(const Relation& answer,
                               const MetaRelation& mask,
                               bool drop_fully_masked_rows,
                               ExecContext* ctx) {
  return ApplyMask(answer, CompiledMask::Compile(mask),
                   drop_fully_masked_rows, ctx);
}

Relation Authorizer::ApplyMask(const Relation& answer,
                               const CompiledMask& mask,
                               bool drop_fully_masked_rows,
                               ExecContext* ctx) {
  Relation out(answer.schema());
  if (mask.tuples.empty()) return out;

  // Each mask tuple is a separate permitted view of the answer; its rows
  // are delivered with exactly its projected columns. Portions from
  // different mask tuples are NOT merged cell-wise into one row: showing
  // tuple-1's columns and tuple-2's columns side by side would reveal
  // their association, which is derivable from the permitted views only
  // when a (self-)joined mask tuple grants the combination explicitly.
  ExecMeter meter(ctx);
  for (const Tuple& row : answer.rows()) {
    if (!meter.TickRows(1)) break;
    bool any = false;
    for (const CompiledMaskTuple& tuple : mask.tuples) {
      if (!tuple.any_projected()) continue;
      if (!tuple.Satisfies(row)) continue;
      any = true;
      std::vector<Value> values;
      values.reserve(static_cast<size_t>(row.arity()));
      for (int i = 0; i < row.arity(); ++i) {
        values.push_back(tuple.IsProjected(i) ? row.at(i) : Value::Null());
      }
      out.InsertUnchecked(Tuple(std::move(values)));
    }
    if (!any && !drop_fully_masked_rows) {
      out.InsertUnchecked(
          Tuple(std::vector<Value>(static_cast<size_t>(row.arity()))));
    }
  }
  return out;
}

Relation Authorizer::ApplyMaskVectorized(const Relation& answer,
                                         const CompiledMask& mask,
                                         bool drop_fully_masked_rows,
                                         ExecContext* ctx, EvalStats* stats) {
  Relation out(answer.schema());
  if (mask.tuples.empty()) return out;
  const int arity = answer.schema().arity();
  const size_t num_tuples = mask.tuples.size();

  // Per batch: one bitmap word-run per mask tuple recording which batch
  // ordinals it accepted. The kernels run tuple-major (so each gathered
  // column is reused across tuples), while delivery below runs row-major
  // — identical delivery order to the tuple-at-a-time ApplyMask.
  const size_t words = (kColumnBatchRows + 63) / 64;
  std::vector<uint64_t> bits(num_tuples * words);
  ColumnBatch batch;
  std::vector<uint32_t> sel;
  ExecMeter meter(ctx);
  const std::vector<Tuple>& rows = answer.rows();
  for (size_t wb = 0; wb < rows.size(); wb += kColumnBatchRows) {
    const size_t n = std::min<size_t>(kColumnBatchRows, rows.size() - wb);
    if (!meter.TickRows(static_cast<long long>(n))) break;
    batch.ResetDense(rows, wb, n, arity);
    std::fill(bits.begin(), bits.end(), 0);
    bool any_delivery = false;
    for (size_t t = 0; t < num_tuples; ++t) {
      const CompiledMaskTuple& tuple = mask.tuples[t];
      if (!tuple.any_projected()) continue;
      ResetSelection(&sel, n);
      tuple.FilterBatch(&batch, &sel);
      if (stats != nullptr) ++stats->mask_batch_applies;
      for (uint32_t i : sel) {
        bits[t * words + i / 64] |= uint64_t{1} << (i % 64);
        any_delivery = true;
      }
    }
    if (!any_delivery && drop_fully_masked_rows) continue;
    for (size_t i = 0; i < n; ++i) {
      bool any = false;
      const Tuple& row = rows[wb + i];
      for (size_t t = 0; t < num_tuples; ++t) {
        if (((bits[t * words + i / 64] >> (i % 64)) & 1) == 0) continue;
        any = true;
        const CompiledMaskTuple& tuple = mask.tuples[t];
        std::vector<Value> values;
        values.reserve(static_cast<size_t>(arity));
        for (int c = 0; c < arity; ++c) {
          values.push_back(tuple.IsProjected(c) ? row.at(c) : Value::Null());
        }
        out.InsertUnchecked(Tuple(std::move(values)));
      }
      if (!any && !drop_fully_masked_rows) {
        out.InsertUnchecked(
            Tuple(std::vector<Value>(static_cast<size_t>(arity))));
      }
    }
  }
  return out;
}

Relation Authorizer::ApplyWideMask(const Relation& wide_answer,
                                   const MetaRelation& wide_mask,
                                   const std::vector<int>& target_columns,
                                   const RelationSchema& answer_schema,
                                   bool drop_fully_masked_rows,
                                   ExecContext* ctx) {
  return ApplyWideMask(wide_answer, CompiledMask::Compile(wide_mask),
                       target_columns, answer_schema, drop_fully_masked_rows,
                       ctx);
}

Relation Authorizer::ApplyWideMask(const Relation& wide_answer,
                                   const CompiledMask& wide_mask,
                                   const std::vector<int>& target_columns,
                                   const RelationSchema& answer_schema,
                                   bool drop_fully_masked_rows,
                                   ExecContext* ctx) {
  Relation out(answer_schema);
  const int width = static_cast<int>(target_columns.size());

  // Per tuple: which answer positions it grants.
  std::vector<std::vector<bool>> grants(wide_mask.tuples.size());
  std::vector<bool> tuple_relevant(wide_mask.tuples.size(), false);
  for (size_t t = 0; t < wide_mask.tuples.size(); ++t) {
    const CompiledMaskTuple& tuple = wide_mask.tuples[t];
    grants[t].assign(static_cast<size_t>(width), false);
    for (int i = 0; i < width; ++i) {
      if (tuple.IsProjected(target_columns[static_cast<size_t>(i)])) {
        grants[t][static_cast<size_t>(i)] = true;
        tuple_relevant[t] = true;
      }
    }
  }

  ExecMeter meter(ctx);
  for (const Tuple& wide_row : wide_answer.rows()) {
    if (!meter.TickRows(1)) break;
    bool any = false;
    for (size_t t = 0; t < wide_mask.tuples.size(); ++t) {
      if (!tuple_relevant[t]) continue;
      if (!wide_mask.tuples[t].Satisfies(wide_row)) continue;
      any = true;
      std::vector<Value> values;
      values.reserve(static_cast<size_t>(width));
      for (int i = 0; i < width; ++i) {
        values.push_back(grants[t][static_cast<size_t>(i)]
                             ? wide_row.at(
                                   target_columns[static_cast<size_t>(i)])
                             : Value::Null());
      }
      out.InsertUnchecked(Tuple(std::move(values)));
    }
    if (!any && !drop_fully_masked_rows) {
      out.InsertUnchecked(
          Tuple(std::vector<Value>(static_cast<size_t>(width))));
    }
  }
  return out;
}

Relation Authorizer::ApplyWideMaskVectorized(
    const Relation& wide_answer, const CompiledMask& wide_mask,
    const std::vector<int>& target_columns,
    const RelationSchema& answer_schema, bool drop_fully_masked_rows,
    ExecContext* ctx, EvalStats* stats) {
  Relation out(answer_schema);
  const int width = static_cast<int>(target_columns.size());
  const int wide_arity = wide_answer.schema().arity();
  const size_t num_tuples = wide_mask.tuples.size();

  // Per tuple: which answer positions it grants (same precomputation as
  // the tuple-at-a-time ApplyWideMask).
  std::vector<std::vector<bool>> grants(num_tuples);
  std::vector<bool> tuple_relevant(num_tuples, false);
  for (size_t t = 0; t < num_tuples; ++t) {
    const CompiledMaskTuple& tuple = wide_mask.tuples[t];
    grants[t].assign(static_cast<size_t>(width), false);
    for (int i = 0; i < width; ++i) {
      if (tuple.IsProjected(target_columns[static_cast<size_t>(i)])) {
        grants[t][static_cast<size_t>(i)] = true;
        tuple_relevant[t] = true;
      }
    }
  }

  const size_t words = (kColumnBatchRows + 63) / 64;
  std::vector<uint64_t> bits(num_tuples * words);
  ColumnBatch batch;
  std::vector<uint32_t> sel;
  ExecMeter meter(ctx);
  const std::vector<Tuple>& rows = wide_answer.rows();
  for (size_t wb = 0; wb < rows.size(); wb += kColumnBatchRows) {
    const size_t n = std::min<size_t>(kColumnBatchRows, rows.size() - wb);
    if (!meter.TickRows(static_cast<long long>(n))) break;
    batch.ResetDense(rows, wb, n, wide_arity);
    std::fill(bits.begin(), bits.end(), 0);
    bool any_delivery = false;
    for (size_t t = 0; t < num_tuples; ++t) {
      if (!tuple_relevant[t]) continue;
      ResetSelection(&sel, n);
      wide_mask.tuples[t].FilterBatch(&batch, &sel);
      if (stats != nullptr) ++stats->mask_batch_applies;
      for (uint32_t i : sel) {
        bits[t * words + i / 64] |= uint64_t{1} << (i % 64);
        any_delivery = true;
      }
    }
    if (!any_delivery && drop_fully_masked_rows) continue;
    for (size_t i = 0; i < n; ++i) {
      bool any = false;
      const Tuple& wide_row = rows[wb + i];
      for (size_t t = 0; t < num_tuples; ++t) {
        if (((bits[t * words + i / 64] >> (i % 64)) & 1) == 0) continue;
        any = true;
        std::vector<Value> values;
        values.reserve(static_cast<size_t>(width));
        for (int c = 0; c < width; ++c) {
          values.push_back(grants[t][static_cast<size_t>(c)]
                               ? wide_row.at(
                                     target_columns[static_cast<size_t>(c)])
                               : Value::Null());
        }
        out.InsertUnchecked(Tuple(std::move(values)));
      }
      if (!any && !drop_fully_masked_rows) {
        out.InsertUnchecked(
            Tuple(std::vector<Value>(static_cast<size_t>(width))));
      }
    }
  }
  return out;
}

std::vector<InferredPermit> Authorizer::DescribeWideMask(
    const MetaRelation& wide_mask, const ConjunctiveQuery& query) const {
  // Display names: requested columns use the answer's names; additional
  // attributes use qualified product names.
  std::vector<std::string> product_names = query.ProductColumnNames();
  std::vector<std::string> answer_names = query.OutputColumnNames();
  std::map<int, std::string> display;
  for (int c = 0; c < query.TotalColumns(); ++c) {
    display[c] = product_names[static_cast<size_t>(c)];
  }
  std::set<int> requested;
  for (size_t i = 0; i < query.targets().size(); ++i) {
    int flat = query.FlatIndex(query.targets()[i]);
    requested.insert(flat);
    display[flat] = answer_names[i];
  }

  std::vector<InferredPermit> permits;
  std::set<std::string> seen;
  for (const MetaTuple& tuple : wide_mask.tuples()) {
    InferredPermit permit;
    for (int i = 0; i < tuple.arity(); ++i) {
      if (tuple.cells()[i].projected && requested.contains(i)) {
        permit.columns.push_back(display[i]);
      }
    }
    if (permit.columns.empty()) continue;

    std::vector<std::string> where_parts;
    for (int i = 0; i < tuple.arity(); ++i) {
      const MetaCell& cell = tuple.cells()[i];
      if (cell.kind == CellKind::kConst) {
        where_parts.push_back(display[i] + " = " +
                              cell.constant.ToDisplayString(false));
      }
    }
    std::map<VarId, std::vector<int>> var_cols;
    for (int i = 0; i < tuple.arity(); ++i) {
      const MetaCell& cell = tuple.cells()[i];
      if (cell.kind == CellKind::kVar) var_cols[cell.var].push_back(i);
    }
    for (const auto& [var, cols] : var_cols) {
      (void)var;
      for (size_t k = 1; k < cols.size(); ++k) {
        where_parts.push_back(display[cols[0]] + " = " +
                              display[cols[k]]);
      }
    }
    std::set<VarId> vars = tuple.CellVars();
    std::vector<TermId> terms(vars.begin(), vars.end());
    auto namer = [&](TermId term) -> std::string {
      auto it = var_cols.find(term);
      if (it != var_cols.end()) return display[it->second[0]];
      return catalog_->VarName(term);
    };
    for (const ConstraintAtom& atom :
         tuple.constraints().ExportAtoms(terms)) {
      where_parts.push_back(atom.ToString(namer));
    }
    std::sort(where_parts.begin(), where_parts.end());
    where_parts.erase(std::unique(where_parts.begin(), where_parts.end()),
                      where_parts.end());
    permit.where = Join(where_parts, " and ");

    std::string rendered = permit.ToString();
    if (seen.insert(rendered).second) {
      permits.push_back(std::move(permit));
    }
  }
  return permits;
}

std::vector<InferredPermit> Authorizer::DescribeMask(
    const MetaRelation& mask) const {
  std::vector<InferredPermit> permits;
  std::set<std::string> seen;
  for (const MetaTuple& tuple : mask.tuples()) {
    InferredPermit permit;
    for (int i = 0; i < tuple.arity(); ++i) {
      if (tuple.cells()[i].projected) {
        permit.columns.push_back(mask.columns()[i].name);
      }
    }
    if (permit.columns.empty()) continue;

    std::vector<std::string> where_parts;
    // Constant cells.
    for (int i = 0; i < tuple.arity(); ++i) {
      const MetaCell& cell = tuple.cells()[i];
      if (cell.kind == CellKind::kConst) {
        where_parts.push_back(mask.columns()[i].name + " = " +
                              cell.constant.ToDisplayString(false));
      }
    }
    // Shared variables: column equalities.
    std::map<VarId, std::vector<int>> var_cols;
    for (int i = 0; i < tuple.arity(); ++i) {
      const MetaCell& cell = tuple.cells()[i];
      if (cell.kind == CellKind::kVar) var_cols[cell.var].push_back(i);
    }
    for (const auto& [var, cols] : var_cols) {
      (void)var;
      for (size_t k = 1; k < cols.size(); ++k) {
        where_parts.push_back(mask.columns()[cols[0]].name + " = " +
                              mask.columns()[cols[k]].name);
      }
    }
    // Comparative constraints on cell variables, rendered with column
    // names.
    std::set<VarId> vars = tuple.CellVars();
    std::vector<TermId> terms(vars.begin(), vars.end());
    auto namer = [&](TermId term) -> std::string {
      auto it = var_cols.find(term);
      if (it != var_cols.end()) return mask.columns()[it->second[0]].name;
      return catalog_->VarName(term);
    };
    for (const ConstraintAtom& atom : tuple.constraints().ExportAtoms(terms)) {
      where_parts.push_back(atom.ToString(namer));
    }

    std::sort(where_parts.begin(), where_parts.end());
    where_parts.erase(std::unique(where_parts.begin(), where_parts.end()),
                      where_parts.end());
    permit.where = Join(where_parts, " and ");

    std::string rendered = permit.ToString();
    if (seen.insert(rendered).second) {
      permits.push_back(std::move(permit));
    }
  }
  return permits;
}

Result<AuthorizationResult> Authorizer::RetrieveExtended(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, StageTimes* times,
    ExecContext* ctx, AuthzCacheTxn* txn) const {
  AuthorizationResult result;

  // Evaluate the answer *before* the final projection so that mask
  // predicates over non-requested attributes can be tested per row.
  // During parallel retrieves the data plan runs on the pool, concurrent
  // with mask derivation on this thread. Both sides share `ctx`: the
  // budget is symmetric across S and S' (a trip on either aborts both).
  // A saturated pool falls back to inline evaluation rather than queuing
  // behind every other session's work.
  ConjunctiveQuery wide_query = query.WithAllColumnsProjected();
  std::future<TimedEval> data_future;
  if (options.parallel_meta_evaluation && !GlobalThreadPool().Saturated()) {
    data_future =
        GlobalThreadPool().Submit([this, &wide_query, &options, ctx] {
          return EvaluateData(wide_query, *db_, "WIDE", options, ctx);
        });
  }

  // The post-processed wide mask (deduplicated, subsumption-reduced,
  // renamed to qualified product columns) is what gets cached: it is the
  // exact object every later stage consumes.
  const auto mask_start = SteadyClock::now();
  const bool use_cache = cache_ != nullptr && options.enable_authz_cache;
  std::string cache_key;
  AuthzGeneration gen;
  MetaRelation wide;
  bool have_mask = false;
  if (use_cache) {
    gen = CurrentGeneration();
    cache_key = MaskCacheKey(user, query, options, /*wide=*/true);
    if (std::optional<MetaRelation> cached =
            txn->LookupMask(cache_key, gen)) {
      wide = std::move(*cached);
      have_mask = true;
    }
  }
  if (!have_mask) {
    Result<MetaRelation> derived = DeriveWideMaskGoverned(
        user, query, options, nullptr, nullptr, ctx, txn);
    if (!derived.ok()) {
      // Drain the concurrent data evaluation before unwinding: the task
      // references this call's locals.
      if (data_future.valid()) data_future.get();
      return derived.status();
    }
    wide = std::move(*derived);
    wide = RemoveDuplicates(wide, /*respect_provenance=*/false);
    if (options.subsumption) wide = RemoveSubsumed(wide);
    // Qualified column names for the wide mask's display.
    {
      std::vector<std::string> names = query.ProductColumnNames();
      std::vector<Attribute> columns;
      columns.reserve(names.size());
      int col = 0;
      for (size_t a = 0; a < query.atoms().size(); ++a) {
        const RelationSchema& rel = query.atom_schema(static_cast<int>(a));
        for (int i = 0; i < rel.arity(); ++i, ++col) {
          columns.push_back(Attribute{names[static_cast<size_t>(col)],
                                      rel.attribute(i).type});
        }
      }
      MetaRelation renamed(std::move(columns));
      for (MetaTuple& tuple : wide.tuples()) renamed.Add(std::move(tuple));
      wide = std::move(renamed);
    }
    if (use_cache) {
      txn->StoreMask(std::move(cache_key), gen, wide,
                     CaptureReadSet(*catalog_, user, query));
    }
  }
  times->mask_micros = MicrosSince(mask_start);
  result.mask = wide;

  TimedEval data =
      data_future.valid()
          ? data_future.get()
          : EvaluateData(wide_query, *db_, "WIDE", options, ctx);
  times->data_micros = data.micros;
  VIEWAUTH_RETURN_NOT_OK(data.relation.status());
  if (ctx != nullptr && !ctx->ok()) return ctx->status();
  Relation wide_answer = std::move(*data.relation);
  result.data_stats = data.stats;

  std::vector<int> target_columns;
  target_columns.reserve(query.targets().size());
  for (const ColumnRef& target : query.targets()) {
    target_columns.push_back(query.FlatIndex(target));
  }
  VIEWAUTH_ASSIGN_OR_RETURN(RelationSchema answer_schema,
                            query.OutputSchema("ANSWER"));
  result.raw_answer = Relation(answer_schema);
  const long long answer_bytes =
      ApproxTupleBytes(static_cast<int>(target_columns.size()));
  {
    ExecMeter meter(ctx);
    for (const Tuple& row : wide_answer.rows()) {
      if (!meter.Tick(1, answer_bytes)) return ctx->status();
      result.raw_answer.InsertUnchecked(row.Project(target_columns));
    }
  }
  result.data_stats.output_rows = result.raw_answer.size();

  // Denied when no tuple grants any requested column.
  std::set<int> requested(target_columns.begin(), target_columns.end());
  bool anything = false;
  for (const MetaTuple& tuple : wide.tuples()) {
    for (int col : requested) {
      if (tuple.cells()[col].projected) {
        anything = true;
        break;
      }
    }
    if (anything) break;
  }
  if (!anything) {
    result.denied = true;
    result.answer = Relation(answer_schema);
    return result;
  }

  // Full access: a tuple with every requested column projected and no
  // restriction at all.
  for (const MetaTuple& tuple : wide.tuples()) {
    bool clean = tuple.constraints().atom_count() == 0;
    for (const MetaCell& cell : tuple.cells()) {
      if (!cell.is_blank()) clean = false;
    }
    if (!clean) continue;
    bool covers = true;
    for (int col : requested) {
      if (!tuple.cells()[col].projected) covers = false;
    }
    if (covers) {
      result.full_access = true;
      break;
    }
  }
  if (result.full_access) {
    result.answer = result.raw_answer;
    return result;
  }

  const auto apply_start = SteadyClock::now();
  std::shared_ptr<const CompiledMask> compiled = ObtainCompiledMask(
      txn, use_cache,
      use_cache ? MaskCacheKey(user, query, options, /*wide=*/true)
                : std::string(),
      gen, wide,
      use_cache ? CaptureReadSet(*catalog_, user, query)
                : AuthzDependencies{});
  result.answer =
      options.use_optimized_data_plan && options.use_vectorized_data_plan
          ? ApplyWideMaskVectorized(wide_answer, *compiled, target_columns,
                                    answer_schema,
                                    options.drop_fully_masked_rows, ctx,
                                    &result.data_stats)
          : ApplyWideMask(wide_answer, *compiled, target_columns,
                          answer_schema, options.drop_fully_masked_rows, ctx);
  if (ctx != nullptr && !ctx->ok()) return ctx->status();
  result.permits = DescribeWideMask(wide, query);
  times->apply_micros = MicrosSince(apply_start);
  return result;
}

Result<AuthorizationResult> Authorizer::Retrieve(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, ExecContext* ctx) const {
  const auto start = SteadyClock::now();
  std::optional<ExecContext> local;
  if (ctx == nullptr) {
    const ExecLimits limits = ExecLimitsOf(options);
    if (limits.any()) {
      local.emplace(limits);
      ctx = &*local;
    }
  }
  StageTimes times;
  AuthzCacheTxn txn(cache_);
  Result<AuthorizationResult> result =
      options.extended_masks
          ? RetrieveExtended(user, query, options, &times, ctx, &txn)
          : RetrieveStandard(user, query, options, &times, ctx, &txn);
  // Belt and braces: a tripped context must never deliver an answer,
  // even if every stage individually missed the trip.
  if (result.ok() && ctx != nullptr && !ctx->ok()) result = ctx->status();
  if (cache_ != nullptr && ctx != nullptr) {
    // The governor's own books survive the abort (they record it);
    // everything else rides the txn and commits on success only, so an
    // aborted retrieve leaves cache contents and counters exactly as if
    // it had never run.
    cache_->AddGovernorChecks(ctx->checks());
  }
  if (result.ok()) {
    txn.CountRetrieve(options.parallel_meta_evaluation);
    txn.CountBatches(result->data_stats.batches_evaluated,
                     result->data_stats.mask_batch_applies);
    txn.AddStageTimes(times.mask_micros, times.data_micros,
                      times.apply_micros, MicrosSince(start));
    txn.Commit();
  } else if (cache_ != nullptr) {
    cache_->CountGovernedAbort(result.status().code());
  }
  return result;
}

Result<AuthorizationResult> Authorizer::RetrieveStandard(
    std::string_view user, const ConjunctiveQuery& query,
    const AuthorizationOptions& options, StageTimes* times,
    ExecContext* ctx, AuthzCacheTxn* txn) const {
  AuthorizationResult result;

  // During parallel retrieves the S data plan runs on the pool while
  // this thread derives the S' mask. Both sides share `ctx` — the budget
  // is symmetric across the commutative diagram, so tripping on either
  // aborts the whole retrieve. A saturated pool falls back to inline
  // evaluation rather than queuing behind other sessions' work.
  std::future<TimedEval> data_future;
  if (options.parallel_meta_evaluation && !GlobalThreadPool().Saturated()) {
    data_future = GlobalThreadPool().Submit([this, &query, &options, ctx] {
      return EvaluateData(query, *db_, "ANSWER", options, ctx);
    });
  }

  const auto mask_start = SteadyClock::now();
  Result<MetaRelation> mask =
      DeriveMaskGoverned(user, query, options, nullptr, nullptr, ctx, txn);
  times->mask_micros = MicrosSince(mask_start);

  TimedEval data =
      data_future.valid()
          ? data_future.get()
          : EvaluateData(query, *db_, "ANSWER", options, ctx);
  times->data_micros = data.micros;

  // The data future is drained either way, so unwinding on a mask error
  // is safe.
  VIEWAUTH_RETURN_NOT_OK(mask.status());
  result.mask = std::move(*mask);
  VIEWAUTH_RETURN_NOT_OK(data.relation.status());
  if (ctx != nullptr && !ctx->ok()) return ctx->status();
  result.raw_answer = std::move(*data.relation);
  result.data_stats = data.stats;

  // Denied when no mask tuple projects any column: nothing at all may be
  // delivered (an empty mask is the common case; a mask of tuples with
  // no starred cells is equivalent).
  bool anything_projected = false;
  for (const MetaTuple& tuple : result.mask.tuples()) {
    for (const MetaCell& cell : tuple.cells()) {
      if (cell.projected) {
        anything_projected = true;
        break;
      }
    }
    if (anything_projected) break;
  }
  if (!anything_projected) {
    result.denied = true;
    result.answer = Relation(result.raw_answer.schema());
    return result;
  }

  // Full access: some mask tuple projects every column with no selection.
  for (const MetaTuple& tuple : result.mask.tuples()) {
    bool all_projected = true;
    for (const MetaCell& cell : tuple.cells()) {
      if (!cell.is_blank() || !cell.projected) {
        all_projected = false;
        break;
      }
    }
    if (all_projected && tuple.constraints().atom_count() == 0) {
      result.full_access = true;
      break;
    }
  }

  if (result.full_access) {
    result.answer = result.raw_answer;
    return result;  // delivered without accompanying permit statements
  }

  const auto apply_start = SteadyClock::now();
  const bool use_cache = cache_ != nullptr && options.enable_authz_cache;
  std::shared_ptr<const CompiledMask> compiled = ObtainCompiledMask(
      txn, use_cache,
      use_cache ? MaskCacheKey(user, query, options, /*wide=*/false)
                : std::string(),
      use_cache ? CurrentGeneration() : AuthzGeneration{}, result.mask,
      use_cache ? CaptureReadSet(*catalog_, user, query)
                : AuthzDependencies{});
  result.answer =
      options.use_optimized_data_plan && options.use_vectorized_data_plan
          ? ApplyMaskVectorized(result.raw_answer, *compiled,
                                options.drop_fully_masked_rows, ctx,
                                &result.data_stats)
          : ApplyMask(result.raw_answer, *compiled,
                      options.drop_fully_masked_rows, ctx);
  if (ctx != nullptr && !ctx->ok()) return ctx->status();
  result.permits = DescribeMask(result.mask);
  times->apply_micros = MicrosSince(apply_start);
  return result;
}

}  // namespace viewauth
