// Compiled mask tuples: the per-row satisfaction check of a mask tuple
// (Authorizer::RowSatisfies) precompiled into flat arrays.
//
// A MetaTuple answers "does this answer row fall inside the subview I
// define?" via its constant cells, its variable cells (cells sharing a
// VarId must hold equal values), and its comparative constraints. The
// interpretive check rebuilt a std::set<VarId> and a
// std::map<TermId, Value> for every row x mask-tuple pair — an
// allocation storm on the mask-application hot path.
//
// CompiledMaskTuple precomputes, once per mask tuple:
//   * the constant cells as a flat (column, value) list;
//   * the variable groups — cell indices sharing a VarId — as one flat
//     column array with group offsets;
//   * the projected-column bitmask (and the projected columns as a list);
//   * whether the constraint set is "total" over cell-bound terms, in
//     which case each constraint atom is compiled to direct column
//     comparisons and the solver is never consulted.
// Row checks are then flat-array scans with no per-row allocation. Only
// tuples whose constraints mention store-only (existential) variables
// still fall back to the constraint solver, and even that path reuses
// the precomputed group arrays instead of re-deriving CellVars per row.
//
// A CompiledMask owns copies of everything it needs (values, constraint
// sets), so it can outlive the MetaRelation it was compiled from — which
// is what lets the AuthzCache keep compiled masks alongside the derived
// masks themselves.

#ifndef VIEWAUTH_AUTHZ_COMPILED_MASK_H_
#define VIEWAUTH_AUTHZ_COMPILED_MASK_H_

#include <cstdint>
#include <vector>

#include "meta/meta_tuple.h"
#include "storage/tuple.h"

namespace viewauth {

class ColumnBatch;

class CompiledMaskTuple {
 public:
  explicit CompiledMaskTuple(const MetaTuple& tuple);

  // True when `row` satisfies the tuple's selection predicate. Exactly
  // equivalent to Authorizer::RowSatisfies(tuple, row) for the source
  // tuple (the differential tier asserts the pipelines agree).
  bool Satisfies(const Tuple& row) const;

  // Batch form of Satisfies for the vectorized mask-apply path: filters
  // `sel` (ordinals into `batch`) in place, keeping exactly the rows
  // Satisfies would accept. Each check runs as a per-column kernel over
  // the batch's gathered columns (storage/column_batch.h); only tuples
  // whose constraints mention store-only variables fall back to the
  // solver, and only for rows surviving every kernel.
  void FilterBatch(ColumnBatch* batch, std::vector<uint32_t>* sel) const;

  bool any_projected() const { return any_projected_; }
  const std::vector<int>& projected_cols() const { return projected_cols_; }
  // Bitmask over columns, 64 per word.
  bool IsProjected(int col) const {
    const size_t word = static_cast<size_t>(col) / 64;
    return word < projected_bits_.size() &&
           (projected_bits_[word] >> (static_cast<size_t>(col) % 64)) & 1;
  }

 private:
  struct ConstCheck {
    int col;
    Value value;
  };
  // A constraint atom compiled to column positions (the first cell of
  // each variable's group — the binding RowSatisfies would use).
  struct CompiledAtom {
    int lhs_col;
    Comparator op;
    bool rhs_is_col = false;
    int rhs_col = 0;
    Value rhs_const;
  };

  std::vector<ConstCheck> const_cells_;
  // Variable groups: group g spans var_cols_flat_[group_begin_[g] ..
  // group_begin_[g+1]); the group's binding cell is the first entry.
  std::vector<int> var_cols_flat_;
  std::vector<int> group_begin_;  // size = groups + 1
  std::vector<VarId> group_vars_;
  std::vector<uint64_t> projected_bits_;
  std::vector<int> projected_cols_;
  bool any_projected_ = false;
  // No variable cells and no constraints: consts decide alone.
  bool trivially_true_ = false;
  // Every constrained term is cell-bound: `atoms_` decides without the
  // solver.
  bool constraints_total_ = false;
  std::vector<CompiledAtom> atoms_;
  // Solver fallback (store-only existential variables remain). Owned
  // copy, populated only when !constraints_total_.
  ConstraintSet fallback_constraints_;
};

// A compiled mask: one compiled tuple per mask tuple, same order.
struct CompiledMask {
  std::vector<CompiledMaskTuple> tuples;

  static CompiledMask Compile(const MetaRelation& mask);
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_COMPILED_MASK_H_
