// AuditLog: a record of every authorization decision the engine makes.
//
// Access-control systems live and die by their audit trails; the paper's
// model makes particularly good audit material because each decision
// carries a precise description of the delivered portion (the inferred
// permit statements). The log stores one entry per decision and can
// materialize itself as a relation, so administrators inspect it with
// the same retrieve machinery (under their own permissions).

#ifndef VIEWAUTH_AUTHZ_AUDIT_LOG_H_
#define VIEWAUTH_AUTHZ_AUDIT_LOG_H_

#include <string>
#include <vector>

#include "storage/relation.h"

namespace viewauth {

enum class AuditOutcome {
  kFullAccess = 0,
  kPartial = 1,
  kDenied = 2,
  kInsertAllowed = 3,
  kInsertDenied = 4,
  kDeleteApplied = 5,
  kModifyApplied = 6,
  kError = 7,
};

std::string_view AuditOutcomeToString(AuditOutcome outcome);

struct AuditEntry {
  // Monotonic sequence number within the log.
  long long sequence = 0;
  std::string user;
  // The statement as submitted (normalized rendering).
  std::string statement;
  AuditOutcome outcome = AuditOutcome::kDenied;
  // Rows delivered / affected; withheld counterpart where applicable.
  int affected = 0;
  int withheld = 0;
  // The inferred permit statements accompanying a partial delivery.
  std::string permits;
};

class AuditLog {
 public:
  void Record(AuditEntry entry);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  int size() const { return static_cast<int>(entries_.size()); }
  void Clear() { entries_.clear(); }

  // AUDIT = (SEQ, USER, STATEMENT, OUTCOME, AFFECTED, WITHHELD, PERMITS).
  Relation Materialize() const;

  // Human-readable listing (most recent last).
  std::string ToString(int last_n = 0) const;

 private:
  std::vector<AuditEntry> entries_;
  long long next_sequence_ = 1;
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_AUDIT_LOG_H_
