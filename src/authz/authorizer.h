// The authorization process (paper Section 5, architecture of Figure 2).
//
// Given a user's query Q, the Authorizer:
//   1. prunes the stored views to those the user may access AND whose
//      defining relations all appear in Q;
//   2. (optionally) extends each per-relation meta-relation with inferred
//      self-joins;
//   3. runs the canonical algebra expression S' of Q — products, then
//      selections, then projections — on the meta-relations, pruning
//      dangling references after the products, yielding the mask A';
//   4. runs S (canonical or optimized) on the data, yielding the answer A;
//   5. applies the mask to the answer: a cell is delivered when some mask
//      tuple projects its column and the row satisfies that tuple's
//      selection; everything else is withheld (NULL);
//   6. renders the mask as inferred `permit` statements describing
//      exactly the delivered portion.

#ifndef VIEWAUTH_AUTHZ_AUTHORIZER_H_
#define VIEWAUTH_AUTHZ_AUTHORIZER_H_

#include <string>
#include <vector>

#include "algebra/evaluator.h"
#include "authz/authz_cache.h"
#include "calculus/conjunctive_query.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "meta/meta_tuple.h"
#include "meta/ops.h"
#include "meta/view_store.h"
#include "storage/relation.h"

namespace viewauth {

struct AuthorizationOptions {
  // Section 4.2 refinements; all on by default, individually switchable
  // for the ablation experiments.
  bool padding = true;
  bool four_case = true;
  bool self_joins = true;
  int self_join_rounds = 1;
  bool subsumption = true;
  // Dangling-reference pruning after products (required for soundness;
  // exposed only so the EXP-EX2 experiment can show what it removes).
  bool prune_dangling = true;
  // Rows with every cell withheld are dropped from the delivered answer.
  bool drop_fully_masked_rows = true;
  // Evaluate the data side with the optimized strategy (the paper's
  // "different strategy" remark); the canonical plan is used when false.
  bool use_optimized_data_plan = true;
  // Use the late-materialized join pipeline (algebra/latemat.h) as the
  // optimized data plan: intermediate joins carry row indices instead of
  // materialized tuples, and join keys hash in place. Same answers, bit
  // for bit — the differential tier asserts it. Effective only when
  // use_optimized_data_plan is true; the canonical plan ignores it.
  bool use_latemat_data_plan = true;
  // Use the vectorized columnar pipeline (algebra/vectorized.h) as the
  // optimized data plan and apply compiled masks batch-at-a-time through
  // selection vectors (no per-row materialization of filtered rows).
  // Same answers, bit for bit — the differential tier runs it as a
  // fourth leg. Takes precedence over use_latemat_data_plan; effective
  // only when use_optimized_data_plan is true.
  bool use_vectorized_data_plan = true;
  // The paper's conclusion (3), implemented: when true, masks may be
  // "expressed with additional attributes" — a mask tuple whose
  // restriction sits on a non-requested column is kept, the answer is
  // masked before the final projection (so the restriction can be tested
  // per row), and the inferred permit statement names the extra
  // attribute. Off by default: the paper's base algorithm yields only
  // masks expressible with the requested attributes.
  bool extended_masks = false;
  // Cache the pruned-and-self-joined per-relation meta-relations (the
  // paper: self-joins "should be stored with the original view
  // definitions, until these definitions are modified"). Subordinate to
  // enable_authz_cache; off only for the caching ablation benchmark.
  bool use_meta_cache = true;
  // Master switch for the authorization cache (authz/authz_cache.h):
  // prepared per-relation meta-relations and fully derived masks.
  // Effective only when the Authorizer was constructed with a cache.
  bool enable_authz_cache = true;
  // Evaluate the S' meta-plan and the S data plan concurrently, and fan
  // per-relation meta preparation out across the shared thread pool.
  bool parallel_meta_evaluation = true;
  // Run the static catalog analyzer (src/analysis) after every permit and
  // deny and append any finding anchored to the touched grant to the
  // statement's output — e.g. a permit that is subsumed the moment it is
  // issued, or a deny whose effect a group grant still re-grants. Off by
  // default; the REPL exposes it as `set analyze on`.
  bool analyze_grants = false;
  // Run the disclosure auditor (src/analysis/disclosure_auditor.h) after
  // every retrieve-mode permit and deny and append its findings for the
  // touched grant: on permit, the marginal disclosure the grant adds and
  // any inference channel it opens; on deny, whether the surviving
  // permits' closure makes the deny vacuous at the moment it is entered.
  // Off by default (closure computation is analyzer-grade, not
  // per-statement-grade); the REPL exposes it as `set audit on`.
  bool audit_grants = false;

  // --- execution governance (0 = unlimited throughout) ------------------
  // Per-statement wall-clock deadline. Both the S data plan and the S'
  // meta plan run under one shared ExecContext, so the deadline bounds
  // the whole retrieve, not one side of the commutative diagram.
  long long deadline_ms = 0;
  // Budget on rows processed (scanned + produced, data and meta alike).
  long long max_rows = 0;
  // Budget on approximate bytes materialized (ApproxTupleBytes-based).
  long long max_bytes = 0;
  // Admission control (enforced by the engine, not the authorizer):
  // at most this many retrieves run concurrently; excess waits.
  int max_concurrent = 0;
  // How many retrieves may wait for an admission slot before newcomers
  // are shed immediately with Unavailable.
  int admission_queue = 4;
  // How long a queued retrieve waits for a slot before giving up.
  long long admission_timeout_ms = 100;
};

// The governance limits of `options` as ExecContext input.
inline ExecLimits ExecLimitsOf(const AuthorizationOptions& options) {
  return ExecLimits{options.deadline_ms, options.max_rows,
                    options.max_bytes};
}

// A trace of the mask-derivation pipeline, for EXPLAIN-style output and
// diagnostics. Counters are tuple counts at each stage.
struct MaskTrace {
  struct OperandStage {
    std::string relation;
    int view_tuples = 0;       // stored tuples of usable views
    int with_self_joins = 0;   // after self-join inference
  };
  std::vector<OperandStage> operands;
  int after_products = 0;        // combined tuples before pruning
  int after_dangling_prune = 0;  // after hopeless/dangling pruning + dedup
  struct SelectionStage {
    std::string predicate;
    int before = 0;
    int after = 0;
  };
  std::vector<SelectionStage> selections;
  int after_projection = 0;
  int final_mask = 0;

  // Multi-line human-readable report.
  std::string ToString() const;
};

// One inferred permit statement, structured and rendered.
struct InferredPermit {
  std::vector<std::string> columns;
  std::string where;  // empty when unconditional

  // "permit (NUMBER, SPONSOR) where SPONSOR = Acme".
  std::string ToString() const;
};

struct AuthorizationResult {
  // The delivered relation: requested structure, withheld cells NULL.
  Relation answer;
  // The unmasked answer (diagnostics and experiments only; never shown
  // to the requesting user by the engine front-end).
  Relation raw_answer;
  // The mask A' over the answer columns.
  MetaRelation mask;
  std::vector<InferredPermit> permits;
  // True when the mask grants the entire answer (no permit statements
  // accompany the delivery, as in the paper's Example 3).
  bool full_access = false;
  // True when the mask is empty: nothing may be delivered.
  bool denied = false;
  EvalStats data_stats;
};

class Authorizer {
 public:
  // `cache` may be null (no caching, no stats — the bare pipeline).
  // When provided, it holds prepared meta-relations, derived masks and
  // the observability counters. Every store carries the entry's read
  // set (user, base relations, embedded granted views) so the cache can
  // invalidate selectively; the authorizer syncs the cache against the
  // catalog's mutation journal at the start of every retrieve, so
  // direct catalog mutations invalidate dependents even without an
  // engine routing the change, and schema (DDL) staleness is still
  // generation-checked per entry at lookup.
  Authorizer(const DatabaseInstance* db, ViewCatalog* catalog,
             AuthzCache* cache = nullptr)
      : db_(db), catalog_(catalog), cache_(cache) {}

  // Full pipeline for a user's retrieve. A non-null `ctx` governs both
  // sides (S and S') of the run; when `ctx` is null and the options carry
  // limits, a context is constructed locally. On a governed abort — or
  // any other failure — the authorization cache and its counters are left
  // exactly as if the retrieve had never run (writes are staged in an
  // AuthzCacheTxn and only committed on success); the governor's own
  // abort counters are the sole trace.
  Result<AuthorizationResult> Retrieve(std::string_view user,
                                       const ConjunctiveQuery& query,
                                       const AuthorizationOptions& options = {},
                                       ExecContext* ctx = nullptr) const;

  // Steps exposed for tests, experiments and benchmarks ----------------

  // The pruned per-atom meta-relations (step 1-2). `atom` indexes
  // query.atoms().
  Result<MetaRelation> PrunedMetaRelation(
      std::string_view user, const ConjunctiveQuery& query, int atom,
      const AuthorizationOptions& options = {}) const;

  // Runs S' end to end (steps 1-3), yielding the mask over the answer
  // columns.
  Result<MetaRelation> DeriveMask(std::string_view user,
                                  const ConjunctiveQuery& query,
                                  const AuthorizationOptions& options = {},
                                  // When non-null, receives the product
                                  // result after pruning (Example 2's
                                  // intermediate table).
                                  MetaRelation* product_stage = nullptr,
                                  MaskTrace* trace = nullptr) const;

  // Steps 1-2 plus selections, but before the final projection: the mask
  // over the full product columns. Restrictions on non-requested columns
  // are still present as cells, which is what the extended-mask delivery
  // needs.
  Result<MetaRelation> DeriveWideMask(
      std::string_view user, const ConjunctiveQuery& query,
      const AuthorizationOptions& options = {},
      MetaRelation* product_stage = nullptr,
      MaskTrace* trace = nullptr) const;

  // Runs the mask pipeline with tracing, returning the stage-by-stage
  // report (the mask itself is recomputed cheaply by callers who need
  // it).
  Result<MaskTrace> Explain(std::string_view user,
                            const ConjunctiveQuery& query,
                            const AuthorizationOptions& options = {}) const;

  // Renders wide-mask tuples as permit statements: the column list names
  // the delivered (requested) columns, while the qualification may name
  // additional attributes using qualified product column names.
  std::vector<InferredPermit> DescribeWideMask(
      const MetaRelation& wide_mask, const ConjunctiveQuery& query) const;

  // Step 5: masks `answer` (whose columns correspond to the mask's).
  // Compiles the mask on the fly; the overload below takes a compiled
  // mask (typically cached) and is the hot-path entry. A non-null `ctx`
  // ticks per answer row and stops masking once tripped; callers must
  // check ctx->status() before delivering the (then partial) result.
  static Relation ApplyMask(const Relation& answer, const MetaRelation& mask,
                            bool drop_fully_masked_rows,
                            ExecContext* ctx = nullptr);
  static Relation ApplyMask(const Relation& answer, const CompiledMask& mask,
                            bool drop_fully_masked_rows,
                            ExecContext* ctx = nullptr);

  // Extended-mask variant of step 5: `wide_answer` holds the
  // pre-projection rows (all product columns); each wide-mask tuple's
  // selection is tested against the full row, and the delivered rows are
  // the projections onto `target_columns` with non-projected cells
  // withheld. `answer_schema` names the delivered columns.
  static Relation ApplyWideMask(const Relation& wide_answer,
                                const MetaRelation& wide_mask,
                                const std::vector<int>& target_columns,
                                const RelationSchema& answer_schema,
                                bool drop_fully_masked_rows,
                                ExecContext* ctx = nullptr);
  static Relation ApplyWideMask(const Relation& wide_answer,
                                const CompiledMask& wide_mask,
                                const std::vector<int>& target_columns,
                                const RelationSchema& answer_schema,
                                bool drop_fully_masked_rows,
                                ExecContext* ctx = nullptr);

  // Vectorized step 5 (options.use_vectorized_data_plan): the answer is
  // walked in column batches, each relevant mask tuple runs its
  // FilterBatch kernel over a selection vector, and only authorized
  // (row, tuple) deliveries materialize. Row-for-row identical output
  // and identical governor charging to the tuple-at-a-time overloads. A
  // non-null `stats` counts mask_batch_applies.
  static Relation ApplyMaskVectorized(const Relation& answer,
                                      const CompiledMask& mask,
                                      bool drop_fully_masked_rows,
                                      ExecContext* ctx = nullptr,
                                      EvalStats* stats = nullptr);
  static Relation ApplyWideMaskVectorized(
      const Relation& wide_answer, const CompiledMask& wide_mask,
      const std::vector<int>& target_columns,
      const RelationSchema& answer_schema, bool drop_fully_masked_rows,
      ExecContext* ctx = nullptr, EvalStats* stats = nullptr);

  // True when `row` satisfies the selection predicate of `tuple`.
  static bool RowSatisfies(const MetaTuple& tuple, const Tuple& row);

  // Step 6: renders mask tuples as permit statements over the answer's
  // column names.
  std::vector<InferredPermit> DescribeMask(const MetaRelation& mask) const;

 private:
  // Per-retrieve wall times, accumulated into the cache's stats.
  struct StageTimes {
    long long mask_micros = 0;
    long long data_micros = 0;
    long long apply_micros = 0;
  };

  // The standard (projection-limited) delivery flow. `ctx` may be null;
  // `txn` never is — all cache traffic stages through it.
  Result<AuthorizationResult> RetrieveStandard(
      std::string_view user, const ConjunctiveQuery& query,
      const AuthorizationOptions& options, StageTimes* times,
      ExecContext* ctx, AuthzCacheTxn* txn) const;
  // The extended-mask delivery flow (options.extended_masks).
  Result<AuthorizationResult> RetrieveExtended(
      std::string_view user, const ConjunctiveQuery& query,
      const AuthorizationOptions& options, StageTimes* times,
      ExecContext* ctx, AuthzCacheTxn* txn) const;

  // Governed bodies of the public pipeline steps: the public methods are
  // thin wrappers that build a local context (when the options carry
  // limits) and a txn, and commit the txn on success.
  Result<MetaRelation> PrunedMetaRelationGoverned(
      std::string_view user, const ConjunctiveQuery& query, int atom,
      const AuthorizationOptions& options, ExecContext* ctx,
      AuthzCacheTxn* txn) const;
  Result<MetaRelation> DeriveWideMaskGoverned(
      std::string_view user, const ConjunctiveQuery& query,
      const AuthorizationOptions& options, MetaRelation* product_stage,
      MaskTrace* trace, ExecContext* ctx, AuthzCacheTxn* txn) const;
  Result<MetaRelation> DeriveMaskGoverned(
      std::string_view user, const ConjunctiveQuery& query,
      const AuthorizationOptions& options, MetaRelation* product_stage,
      MaskTrace* trace, ExecContext* ctx, AuthzCacheTxn* txn) const;

  // The current invalidation clock (catalog version, schema version).
  AuthzGeneration CurrentGeneration() const;

  const DatabaseInstance* db_;
  ViewCatalog* catalog_;
  AuthzCache* cache_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_AUTHZ_AUTHORIZER_H_
