// Admission control for retrieves: bounds how many run concurrently and
// how many may wait for a slot, shedding the rest immediately so an
// overloaded engine degrades by refusing work (Unavailable) instead of
// queueing unboundedly. Mutating statements are not admitted here — they
// already serialize on the engine's exclusive state lock.
//
// Outcomes are disjoint, so the counters reconcile exactly:
//   attempts == admitted + shed + queue_timeouts
// (`queued` counts admissions that waited before being admitted or
// timing out; it is not a terminal outcome.)

#ifndef VIEWAUTH_ENGINE_ADMISSION_H_
#define VIEWAUTH_ENGINE_ADMISSION_H_

#include <condition_variable>
#include <mutex>

#include "authz/authorizer.h"
#include "authz/authz_cache.h"
#include "common/result.h"

namespace viewauth {

class AdmissionController {
 public:
  // RAII admission slot: releasing (or destroying) the ticket frees the
  // slot and wakes one queued retrieve. Movable so it can be returned
  // through Result and held across the retrieve.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();

   private:
    AdmissionController* controller_ = nullptr;
  };

  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Tries to admit one retrieve under the limits in `options`
  // (max_concurrent <= 0 admits unconditionally). Blocks for at most
  // options.admission_timeout_ms when the queue has room; returns
  // Unavailable when shed (queue full) or timed out.
  Result<Ticket> Admit(const AuthorizationOptions& options);

  // Drain gate for graceful shutdown: while draining, new admissions
  // shed immediately with Unavailable and every queued waiter is woken
  // to the same verdict (counted as sheds), so a server can stop
  // accepting work without stranding threads in the queue. Retrieves
  // already admitted keep their tickets and finish normally.
  void SetDraining(bool draining);

  // Copies the admission counters into the stats snapshot.
  void FillStats(AuthzStats* stats) const;
  void ResetCounters();

 private:
  friend class Ticket;
  void Release();

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  bool draining_ = false;
  int in_flight_ = 0;
  int waiting_ = 0;
  long long attempts_ = 0;
  long long admitted_ = 0;
  long long queued_ = 0;
  long long shed_ = 0;
  long long queue_timeouts_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_ADMISSION_H_
