// The database front-end promised by the paper's conclusion (Section 6):
// "The user will define access authorization with permit statements, and
// the system will insert automatically the appropriate meta-tuples into
// the meta-relations. In response to a retrieve statement, the user will
// receive a derived relation, whose structure corresponds to the request
// but whose tuples include only permitted values, and a set of inferred
// permit statements describing the portion delivered."
//
// Engine owns the database instance, the view catalog and the authorizer,
// and executes surface-language statements, returning rendered output.
// Meta-relations and meta-tuple notation stay completely transparent.
//
// Concurrency model — versioned snapshots. Engine state (database
// instance + view catalog) lives in an immutable, refcounted EngineState.
// Retrieves (and explains, dumps, analyses) pin the published snapshot
// with one shared_ptr copy and then run lock-free end to end; they can
// never observe a half-applied mutation. Mutations serialize on the
// state mutex, fork the head (copy-on-write: the fork shares the
// database and catalog objects, and the statement clones only what it
// writes), and atomically install the new version on success — a failed
// statement simply drops the fork. The DurableEngine additionally defers
// publication until a commit batch is fsynced (SetDeferPublication), so
// readers also never observe an acknowledged-then-rolled-back state.
// The authorization cache is shared across snapshots; entries are keyed
// by catalog version so old-snapshot readers hit only entries their
// catalog version already covers (authz/authz_cache.h).

#ifndef VIEWAUTH_ENGINE_ENGINE_H_
#define VIEWAUTH_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/catalog_analyzer.h"
#include "analysis/disclosure_auditor.h"
#include "authz/audit_log.h"
#include "authz/authz_cache.h"
#include "authz/authorizer.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "engine/admission.h"
#include "meta/view_store.h"
#include "parser/ast.h"
#include "storage/relation.h"

namespace viewauth {

class Engine {
 public:
  Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The ambient user on whose behalf retrieve statements run when they
  // carry no `as USER` clause. DDL / view / permit statements are
  // administrator actions and are not gated (the paper scopes
  // administration out).
  void SetSessionUser(std::string user) { session_user_ = std::move(user); }
  const std::string& session_user() const { return session_user_; }

  AuthorizationOptions& options() { return options_; }

  // Executes one statement (parsing it first) and returns displayable
  // output: confirmations for DDL/DML, a rendered masked relation plus
  // inferred permit statements for retrieves.
  Result<std::string> Execute(const std::string& statement_text);
  Result<std::string> ExecuteParsed(const Statement& statement);
  // As above, with per-statement limits composed over options() —
  // strictest wins (TightenLimits). The wire server threads each
  // request's deadline through here; `limits` applies to retrieves (the
  // governed path) and may be null for "no override".
  Result<std::string> ExecuteParsed(const Statement& statement,
                                    const ExecLimits* limits);

  // Drain gate for graceful shutdown: while draining, new retrieves are
  // shed at admission with Unavailable (queued waiters wake to the same
  // verdict); retrieves already running finish normally.
  void SetDraining(bool draining) { admission_.SetDraining(draining); }

  // Executes a whole script, concatenating the statements' outputs.
  Result<std::string> ExecuteScript(const std::string& script_text);

  // Explains the authorization of a retrieve statement: parses it and
  // returns the stage-by-stage mask-derivation trace (no data touched).
  Result<std::string> ExplainRetrieve(const std::string& retrieve_text);

  // Serializes the complete engine state — schema, data, views, grants —
  // as a statement script; feeding it to a fresh engine's ExecuteScript
  // restores an equivalent state. Reads the published snapshot (under
  // deferred publication, the durable state).
  Result<std::string> DumpScript() const;

  // Runs the static catalog analyzer (src/analysis) over the current
  // views, grants, group memberships and recorded denies. Read-only,
  // lock-free against the published snapshot. The surface-language
  // `analyze` statement and the viewauth_lint tool both go through here.
  AnalysisReport AnalyzeCatalog(const AnalysisOptions& options = {}) const;

  // Runs the disclosure auditor (src/analysis/disclosure_auditor.h) over
  // the current catalog: per-user disclosure closures, inference-channel
  // and deny-bypass findings, and — when options.drift_since_seq >= 0 —
  // the journal-differential drift report. Read-only, lock-free against
  // the published snapshot. The surface-language `analyze audit`
  // statement and viewauth_lint --audit both go through here.
  AnalysisReport AuditCatalog(const DisclosureAuditOptions& options = {}) const;

  // Structured access to the most recent retrieve's result.
  const AuthorizationResult* last_result() const {
    return last_result_ ? &*last_result_ : nullptr;
  }

  // Direct access to the head state, for setup scripts and tests. These
  // bypass the snapshot fork: writing through db()/catalog() while a
  // retrieve runs concurrently, or while a DurableEngine batch is
  // staged, mutates shared objects in place — quiesced use only.
  DatabaseInstance& db() { return *live_->db; }
  const DatabaseInstance& db() const { return *live_->db; }
  ViewCatalog& catalog() { return *live_->catalog; }
  const Authorizer& authorizer() const { return *authorizer_; }
  // The mask-pipeline cache and its observability counters (the REPL's
  // \stats command reads the snapshot).
  AuthzCache& authz_cache() { return authz_cache_; }
  // Cache + governor counters merged with the admission controller's.
  AuthzStats authz_stats() const;
  void ResetAuthzStats();

  // Number of engine-state versions currently alive: the head, the
  // published snapshot when it differs, and every older version still
  // pinned by an in-flight retrieve. 1 when idle — the leak check the
  // concurrency tests assert after cancelled/aborted retrieves unwind.
  long long snapshots_live() const {
    return state_count_->load(std::memory_order_relaxed);
  }
  // Monotonic version number of the published snapshot.
  uint64_t published_version() const;

  // --- deferred publication (DurableEngine group commit) ----------------
  // With deferred publication on, a committed mutation advances only the
  // private head; retrieves keep reading the last published snapshot
  // until PublishStaged() installs the head. This is what keeps
  // not-yet-fsynced (and, after a batch abort, rolled-back) mutations
  // invisible to readers.
  void SetDeferPublication(bool defer);
  // Publishes the staged head (after the batch fsync succeeded).
  void PublishStaged();
  // Drops every staged-but-unpublished mutation, restoring the head to
  // the published snapshot (whole-batch abort). Wipes the authorization
  // cache: its journal sync may have advanced into the discarded catalog
  // versions, whose sequence numbers must never be reused underneath it.
  void DiscardStaged();

  // Cooperatively cancels every retrieve currently executing: each one
  // aborts at its next governor probe with Status::Cancelled, leaving no
  // trace in the authorization cache. Returns how many were signalled.
  int CancelActiveRetrieves();
  // Every user-attributed decision (retrieves, guarded updates) lands in
  // the audit log; administrative statements do not.
  const AuditLog& audit_log() const { return audit_log_; }
  AuditLog& audit_log() { return audit_log_; }

 private:
  // One immutable version of engine state. Forked per mutation; shared
  // members are cloned lazily (copy-on-write) by MutableDb /
  // MutableCatalog when the statement actually writes them.
  struct EngineState {
    std::shared_ptr<DatabaseInstance> db;
    std::shared_ptr<ViewCatalog> catalog;
    uint64_t version = 0;
  };

  Result<std::string> ExecuteRelation(const RelationStmt& stmt);
  Result<std::string> ExecuteInsert(const InsertStmt& stmt);
  Result<std::string> ExecuteView(const ViewStmt& stmt);
  Result<std::string> ExecutePermit(const PermitStmt& stmt);
  Result<std::string> ExecuteDeny(const DenyStmt& stmt);
  // The snapshot-pinned read path: `state` is the snapshot the retrieve
  // runs against, kept alive by the caller.
  Result<std::string> ExecuteRetrieve(const RetrieveStmt& stmt,
                                      const EngineState& state,
                                      const ExecLimits* limits = nullptr);
  Result<std::string> ExecuteDelete(const DeleteStmt& stmt);
  Result<std::string> ExecuteModify(const ModifyStmt& stmt);
  Result<std::string> ExecuteDrop(const DropStmt& stmt);
  Result<std::string> ExecuteMember(const MemberStmt& stmt);
  Result<std::string> ExecuteAnalyze(const AnalyzeStmt& stmt,
                                     const EngineState& state);

  // Allocates a tracked EngineState (snapshots_live accounting).
  std::shared_ptr<EngineState> MakeState(std::shared_ptr<DatabaseInstance> db,
                                         std::shared_ptr<ViewCatalog> catalog,
                                         uint64_t version);
  // The published snapshot, pinned (the lock-free read entry point).
  std::shared_ptr<const EngineState> SnapshotNow() const;
  // published_ = live_ and rebinds the authorizer. Requires state_mutex_.
  void PublishLocked();
  // Copy-on-write accessors for the statement being executed under
  // state_mutex_: clone the head's database / catalog if a snapshot
  // still shares it, then return the private object.
  DatabaseInstance& MutableDb();
  ViewCatalog& MutableCatalog();

  // RAII registration of a retrieve's ExecContext in the cancellation
  // registry (defined in engine.cc).
  class ActiveContextGuard;
  // When options_.analyze_grants is set, the analyzer findings anchored
  // to (view, user) rendered as report lines; empty otherwise. Reads the
  // head catalog; called only from mutations under state_mutex_.
  std::string GrantAnalysisNotes(const std::string& view,
                                 const std::string& user) const;
  // When options_.audit_grants is set, the disclosure auditor's verdict
  // on the grant just touched, rendered as report lines; empty otherwise.
  // On permit: the marginal closure facts the grant contributed and any
  // inference channel it participates in. On deny: whether the deny is
  // vacuous against the surviving permits' closure. Fires on both permit
  // and deny so a vacuous deny is flagged at entry, not at the next
  // whole-catalog audit.
  std::string GrantAuditNotes(const std::string& view,
                              const std::string& user, AccessMode mode,
                              bool is_deny) const;

  // Live count of EngineState objects (shared with their deleters, which
  // may outlive a hypothetical engine teardown while a reader drains).
  std::shared_ptr<std::atomic<long long>> state_count_ =
      std::make_shared<std::atomic<long long>>(0);
  // The mutation head. Equals published_ except while a DurableEngine
  // batch is staged under deferred publication.
  std::shared_ptr<EngineState> live_;
  // What SnapshotNow() hands to readers.
  std::shared_ptr<EngineState> published_;
  // Guards published_ (and the authorizer rebind) against concurrent
  // SnapshotNow readers; never held while executing anything.
  mutable std::mutex publish_mutex_;
  bool defer_publication_ = false;
  uint64_t next_version_ = 1;
  AuthzCache authz_cache_;
  // Bound to the published snapshot (the authorizer() accessor for
  // standalone inspection); retrieves build their own cheap Authorizer
  // over their pinned snapshot instead.
  std::unique_ptr<Authorizer> authorizer_;
  AuthorizationOptions options_;
  std::string session_user_ = "admin";
  std::optional<AuthorizationResult> last_result_;
  AuditLog audit_log_;
  // Serializes mutating statements (fork → execute → install). Retrieves
  // do not touch it — they read the published snapshot.
  std::mutex state_mutex_;
  // Serializes audit/last_result_ updates between concurrent retrieves.
  std::mutex result_mutex_;
  // Bounds concurrent retrieves per options_.max_concurrent; mutating
  // statements bypass it (they serialize on state_mutex_).
  AdmissionController admission_;
  // Execution contexts of in-flight retrieves, for CancelActiveRetrieves.
  std::mutex cancel_mutex_;
  std::vector<ExecContext*> active_contexts_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_ENGINE_H_
