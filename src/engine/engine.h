// The database front-end promised by the paper's conclusion (Section 6):
// "The user will define access authorization with permit statements, and
// the system will insert automatically the appropriate meta-tuples into
// the meta-relations. In response to a retrieve statement, the user will
// receive a derived relation, whose structure corresponds to the request
// but whose tuples include only permitted values, and a set of inferred
// permit statements describing the portion delivered."
//
// Engine owns the database instance, the view catalog and the authorizer,
// and executes surface-language statements, returning rendered output.
// Meta-relations and meta-tuple notation stay completely transparent.

#ifndef VIEWAUTH_ENGINE_ENGINE_H_
#define VIEWAUTH_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "analysis/catalog_analyzer.h"
#include "analysis/disclosure_auditor.h"
#include "authz/audit_log.h"
#include "authz/authz_cache.h"
#include "authz/authorizer.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "engine/admission.h"
#include "meta/view_store.h"
#include "parser/ast.h"
#include "storage/relation.h"

namespace viewauth {

class Engine {
 public:
  Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The ambient user on whose behalf retrieve statements run when they
  // carry no `as USER` clause. DDL / view / permit statements are
  // administrator actions and are not gated (the paper scopes
  // administration out).
  void SetSessionUser(std::string user) { session_user_ = std::move(user); }
  const std::string& session_user() const { return session_user_; }

  AuthorizationOptions& options() { return options_; }

  // Executes one statement (parsing it first) and returns displayable
  // output: confirmations for DDL/DML, a rendered masked relation plus
  // inferred permit statements for retrieves.
  Result<std::string> Execute(const std::string& statement_text);
  Result<std::string> ExecuteParsed(const Statement& statement);

  // Executes a whole script, concatenating the statements' outputs.
  Result<std::string> ExecuteScript(const std::string& script_text);

  // Explains the authorization of a retrieve statement: parses it and
  // returns the stage-by-stage mask-derivation trace (no data touched).
  Result<std::string> ExplainRetrieve(const std::string& retrieve_text);

  // Serializes the complete engine state — schema, data, views, grants —
  // as a statement script; feeding it to a fresh engine's ExecuteScript
  // restores an equivalent state.
  Result<std::string> DumpScript() const;

  // Runs the static catalog analyzer (src/analysis) over the current
  // views, grants, group memberships and recorded denies. Read-only;
  // takes the state lock shared. The surface-language `analyze`
  // statement and the viewauth_lint tool both go through here.
  AnalysisReport AnalyzeCatalog(const AnalysisOptions& options = {}) const;

  // Runs the disclosure auditor (src/analysis/disclosure_auditor.h) over
  // the current catalog: per-user disclosure closures, inference-channel
  // and deny-bypass findings, and — when options.drift_since_seq >= 0 —
  // the journal-differential drift report. Read-only; takes the state
  // lock shared. The surface-language `analyze audit` statement and
  // viewauth_lint --audit both go through here.
  AnalysisReport AuditCatalog(const DisclosureAuditOptions& options = {}) const;

  // Structured access to the most recent retrieve's result.
  const AuthorizationResult* last_result() const {
    return last_result_ ? &*last_result_ : nullptr;
  }

  DatabaseInstance& db() { return db_; }
  const DatabaseInstance& db() const { return db_; }
  ViewCatalog& catalog() { return *catalog_; }
  const Authorizer& authorizer() const { return *authorizer_; }
  // The mask-pipeline cache and its observability counters (the REPL's
  // \stats command reads the snapshot).
  AuthzCache& authz_cache() { return authz_cache_; }
  // Cache + governor counters merged with the admission controller's.
  AuthzStats authz_stats() const;
  void ResetAuthzStats();

  // Cooperatively cancels every retrieve currently executing: each one
  // aborts at its next governor probe with Status::Cancelled, leaving no
  // trace in the authorization cache. Returns how many were signalled.
  int CancelActiveRetrieves();
  // Every user-attributed decision (retrieves, guarded updates) lands in
  // the audit log; administrative statements do not.
  const AuditLog& audit_log() const { return audit_log_; }
  AuditLog& audit_log() { return audit_log_; }

 private:
  Result<std::string> ExecuteRelation(const RelationStmt& stmt);
  Result<std::string> ExecuteInsert(const InsertStmt& stmt);
  Result<std::string> ExecuteView(const ViewStmt& stmt);
  Result<std::string> ExecutePermit(const PermitStmt& stmt);
  Result<std::string> ExecuteDeny(const DenyStmt& stmt);
  Result<std::string> ExecuteRetrieve(const RetrieveStmt& stmt);
  Result<std::string> ExecuteDelete(const DeleteStmt& stmt);
  Result<std::string> ExecuteModify(const ModifyStmt& stmt);
  Result<std::string> ExecuteDrop(const DropStmt& stmt);
  Result<std::string> ExecuteMember(const MemberStmt& stmt);
  Result<std::string> ExecuteAnalyze(const AnalyzeStmt& stmt);
  // AnalyzeCatalog without taking the state lock, for callers that
  // already hold it (ExecuteParsed branches).
  AnalysisReport AnalyzeCatalogLocked(const AnalysisOptions& options = {}) const;
  // AuditCatalog without taking the state lock, for callers that already
  // hold it.
  AnalysisReport AuditCatalogLocked(
      const DisclosureAuditOptions& options = {}) const;
  // RAII registration of a retrieve's ExecContext in the cancellation
  // registry (defined in engine.cc).
  class ActiveContextGuard;
  // When options_.analyze_grants is set, the analyzer findings anchored
  // to (view, user) rendered as report lines; empty otherwise.
  std::string GrantAnalysisNotes(const std::string& view,
                                 const std::string& user) const;
  // When options_.audit_grants is set, the disclosure auditor's verdict
  // on the grant just touched, rendered as report lines; empty otherwise.
  // On permit: the marginal closure facts the grant contributed and any
  // inference channel it participates in. On deny: whether the deny is
  // vacuous against the surviving permits' closure. Fires on both permit
  // and deny so a vacuous deny is flagged at entry, not at the next
  // whole-catalog audit.
  std::string GrantAuditNotes(const std::string& view,
                              const std::string& user, AccessMode mode,
                              bool is_deny) const;

  DatabaseInstance db_;
  std::unique_ptr<ViewCatalog> catalog_;
  AuthzCache authz_cache_;
  std::unique_ptr<Authorizer> authorizer_;
  AuthorizationOptions options_;
  std::string session_user_ = "admin";
  std::optional<AuthorizationResult> last_result_;
  AuditLog audit_log_;
  // Statement-level locking: retrieves (and explains/dumps) take the
  // state lock shared, so concurrent sessions read in parallel; every
  // mutating statement takes it exclusive. Mutable so const reads
  // (DumpScript) can lock.
  mutable std::shared_mutex state_mutex_;
  // Serializes audit/last_result_ updates between concurrent retrieves.
  std::mutex result_mutex_;
  // Bounds concurrent retrieves per options_.max_concurrent; mutating
  // statements bypass it (they serialize on state_mutex_ exclusively).
  AdmissionController admission_;
  // Execution contexts of in-flight retrieves, for CancelActiveRetrieves.
  std::mutex cancel_mutex_;
  std::vector<ExecContext*> active_contexts_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_ENGINE_H_
