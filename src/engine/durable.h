// DurableEngine: an Engine whose state survives restarts and crashes.
//
// Every successfully executed *mutating* statement (relation / insert /
// view / permit / deny / delete / modify / drop / member) is appended to
// a statement log before the result is acknowledged. Opening the same
// path replays the log through a fresh engine, reproducing the state.
// Retrieves and analyzes are not logged (they do not change state; the
// audit log covers them).
//
// Log formats
//   Framed V2 (written by this version): the file starts with the magic
//   line "#viewauth-log v2", followed by one framed record per
//   statement:
//
//       @<seq> <payload-length> <crc32-hex>\n
//       <normalized statement text>\n
//
//   `seq` increases by exactly 1 per record and the CRC32 covers the
//   payload bytes, so torn tails, bit flips, and lost records are all
//   detected on replay.
//
//   Legacy V1 (plain text): one normalized statement per line, exactly
//   what Engine::DumpScript emits. Legacy logs are still replayed and
//   appended to in their own format, and are upgraded to framed V2 by
//   the first Compact().
//
// Recovery
//   Open() takes a RecoveryMode. kStrict fails on any damage. kSalvage
//   truncates a torn or corrupt *tail* (the classic crash-during-append
//   shape), replays the valid prefix, and reports what was dropped in a
//   RecoveryReport; corruption in the *middle* of the log — damage
//   followed by further valid records — is fatal in both modes, because
//   dropping interior records would silently change the catalog.
//
// Fail-stop
//   If an append (or its fsync) fails, the engine rolls its in-memory
//   state back to the durable prefix and enters a read-only degraded
//   state: the failed mutation is NOT visible as committed, further
//   mutations and compactions return Status::Unavailable, and retrieves
//   keep working against the last durable state.
//
// Compaction
//   Compact() dumps the current state as framed V2 into `<path>.tmp`,
//   fsyncs it, atomically renames it over the log, and fsyncs the
//   directory. On any failure before the rename commits, the original
//   log and the open append handle are left untouched, so the engine
//   remains fully usable.

#ifndef VIEWAUTH_ENGINE_DURABLE_H_
#define VIEWAUTH_ENGINE_DURABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "engine/engine.h"

namespace viewauth {

enum class LogFormat {
  kLegacyText,  // plain statement-per-line (pre-V2)
  kFramedV2,    // magic header + framed, checksummed records
};

std::string_view LogFormatToString(LogFormat format);

enum class RecoveryMode {
  // Any damage — torn tail, checksum mismatch, sequence gap — fails Open.
  kStrict,
  // A damaged tail is truncated and reported; the valid prefix replays.
  // Mid-log corruption (valid records after the damage) is still fatal.
  kSalvage,
};

// What Open() found and did while replaying the log.
struct RecoveryReport {
  LogFormat format = LogFormat::kFramedV2;
  // True when salvage dropped a damaged tail (always false in kStrict:
  // damage fails the open instead).
  bool salvaged = false;
  uint64_t records_replayed = 0;
  // Sequence number of the last valid record (framed logs only).
  uint64_t last_good_seq = 0;
  uint64_t dropped_records = 0;
  uint64_t dropped_bytes = 0;
  // Human-readable description of the damage, empty for a clean open.
  std::string detail;

  std::string ToString() const;
};

// Counters surfaced by the REPL's \stats command.
struct DurableStats {
  LogFormat format = LogFormat::kFramedV2;
  bool degraded = false;
  uint64_t appends = 0;
  uint64_t append_bytes = 0;
  uint64_t compactions = 0;
  uint64_t log_bytes = 0;
  RecoveryReport recovery;

  std::string ToString() const;
};

struct DurableOptions {
  RecoveryMode recovery = RecoveryMode::kStrict;
  // Defaults to FileSystem::Default(); tests inject faults here. The
  // filesystem must outlive the engine.
  FileSystem* fs = nullptr;
  // fsync after every appended record. Disable only for bulk loads where
  // losing the tail on a crash is acceptable.
  bool sync_every_append = true;
};

class DurableEngine {
 public:
  // Opens (creating if absent) the statement log at `path` in kStrict
  // mode, replaying any existing contents. Fails if the existing log
  // does not replay cleanly.
  static Result<std::unique_ptr<DurableEngine>> Open(const std::string& path);

  static Result<std::unique_ptr<DurableEngine>> Open(
      const std::string& path, const DurableOptions& options);

  // Executes one statement; successful mutating statements are appended
  // to the log (and fsynced) before the result is returned. In degraded
  // mode mutating statements return Status::Unavailable.
  Result<std::string> Execute(const std::string& statement_text);

  // Parses and executes a whole script through the same durable path.
  Result<std::string> ExecuteScript(const std::string& script_text);

  // Rewrites the log as the compact framed-V2 DumpScript of the current
  // state (compaction: dropped rows and revoked grants disappear; legacy
  // logs are upgraded to the framed format). Crash-safe: the original
  // log is replaced atomically or not at all.
  Status Compact();

  // The underlying engine. A fail-stop rollback (degraded-mode entry)
  // replaces the Engine object, so do not cache this reference across
  // Execute calls — re-fetch it instead.
  Engine& engine() { return *engine_; }
  const std::string& path() const { return path_; }

  // True after an append failure: mutations return Unavailable,
  // retrieves still work against the last durable state.
  bool degraded() const;
  std::string degraded_reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return degraded_reason_;
  }

  LogFormat format() const { return format_; }
  const RecoveryReport& recovery_report() const { return recovery_; }
  DurableStats stats() const;

 private:
  DurableEngine(std::string path, DurableOptions options, FileSystem* fs,
                std::unique_ptr<Engine> engine)
      : path_(std::move(path)),
        options_(options),
        fs_(fs),
        engine_(std::move(engine)) {}

  Result<std::string> ExecuteParsedDurable(const Statement& statement);

  // Replays a framed-V2 / legacy plain-text log body, applying the
  // configured recovery mode (salvage truncates a damaged tail on disk)
  // and filling in recovery_, durable_statements_, next_seq_, log_bytes_.
  Status RecoverFramed(const std::string& contents);
  Status RecoverLegacy(const std::string& contents);

  // Frames (or legacy-renders) and appends one statement record,
  // fsyncing when configured. Updates counters on success only.
  Status AppendRecord(const std::string& statement_text);

  // Transitions to read-only degraded mode. When `rollback` is set the
  // in-memory engine is rebuilt from the durable statement prefix so an
  // unlogged mutation does not remain visible.
  void EnterDegraded(const std::string& reason, bool rollback);

  std::string path_;
  DurableOptions options_;
  FileSystem* fs_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<WritableFile> log_;
  LogFormat format_ = LogFormat::kFramedV2;
  // Normalized text of every statement durably in the log, in order —
  // the replay source for fail-stop rollback.
  std::vector<std::string> durable_statements_;
  uint64_t next_seq_ = 1;
  // Bytes of the log known to be durable (the append offset).
  uint64_t log_bytes_ = 0;
  RecoveryReport recovery_;
  bool degraded_ = false;
  std::string degraded_reason_;
  uint64_t appends_ = 0;
  uint64_t append_bytes_ = 0;
  uint64_t compactions_ = 0;
  // Guards the log handle, counters and degraded flag; Engine has its
  // own finer-grained state lock for concurrent retrieves.
  mutable std::mutex mu_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_DURABLE_H_
