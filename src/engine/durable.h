// DurableEngine: an Engine whose state survives restarts.
//
// Every successfully executed *mutating* statement (relation / insert /
// view / permit / deny / delete / modify) is appended, in its normalized
// rendering, to a plain-text statement log. Opening the same path replays
// the log through a fresh engine, reproducing the state. Retrieves are
// not logged (they do not change state; the audit log covers them).
//
// The format is deliberately the surface language itself: the log is
// human-readable, diffable, and exactly what Engine::DumpScript would
// emit for the same state modulo statement order.

#ifndef VIEWAUTH_ENGINE_DURABLE_H_
#define VIEWAUTH_ENGINE_DURABLE_H_

#include <fstream>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/engine.h"

namespace viewauth {

class DurableEngine {
 public:
  // Opens (creating if absent) the statement log at `path`, replaying any
  // existing contents. Fails if the existing log does not replay cleanly.
  static Result<std::unique_ptr<DurableEngine>> Open(const std::string& path);

  // Executes one statement; successful mutating statements are appended
  // to the log and flushed before the result is returned.
  Result<std::string> Execute(const std::string& statement_text);

  // Rewrites the log as the compact DumpScript of the current state
  // (compaction: dropped rows and revoked grants disappear).
  Status Compact();

  Engine& engine() { return *engine_; }
  const std::string& path() const { return path_; }

 private:
  DurableEngine(std::string path, std::unique_ptr<Engine> engine)
      : path_(std::move(path)), engine_(std::move(engine)) {}

  Status AppendToLog(const std::string& line);

  std::string path_;
  std::unique_ptr<Engine> engine_;
  std::ofstream log_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_DURABLE_H_
