// DurableEngine: an Engine whose state survives restarts and crashes.
//
// Every successfully executed *mutating* statement (relation / insert /
// view / permit / deny / delete / modify / drop / member) is appended to
// a statement log before the result is acknowledged. Opening the same
// path replays the log through a fresh engine, reproducing the state.
// Retrieves and analyzes are not logged (they do not change state; the
// audit log covers them).
//
// Log formats
//   Framed V3 (written by this version): the file starts with the magic
//   line "#viewauth-log v3", followed by framed records and batch
//   commit markers:
//
//       @<seq> <payload-length> <crc32-hex>\n
//       <normalized statement text>\n
//       ...
//       =<first-seq> <last-seq> <crc32-hex>\n
//
//   `seq` increases by exactly 1 per record and the CRC32 covers the
//   payload bytes, so torn tails, bit flips, and lost records are all
//   detected on replay. Records are *provisional* until a commit marker
//   covering them appears: the marker's CRC32 covers "<first> <last>",
//   and recovery replays only marker-covered records. A batch that
//   crashed mid-append — partial record, records without their marker,
//   torn marker — is an uncommitted tail: fatal in kStrict, truncated
//   to the last committed boundary in kSalvage. The group-commit
//   protocol appends each batch's records and marker as one write and
//   acknowledges after one fsync, so an acknowledged mutation is always
//   behind a durable marker.
//
//   Framed V2: the same framed records without markers; every record is
//   committed individually. V2 logs are still replayed and appended to
//   per-record (group commit needs markers), and are upgraded to V3 by
//   the first Compact().
//
//   Legacy V1 (plain text): one normalized statement per line, exactly
//   what Engine::DumpScript emits. Replayed and appended to in its own
//   format; upgraded to framed V3 by the first Compact().
//
// Group commit
//   Concurrent mutations batch: the first waiter becomes the batch
//   leader, waits a bounded straggler window for followers, then writes
//   every staged frame plus the commit marker with a single append and
//   a single fsync. Followers block until their batch resolves. If the
//   append or fsync fails the *whole batch* aborts: every waiter gets
//   Status::Unavailable, the staged engine state rolls back, and the
//   engine enters degraded mode — no acknowledged-then-lost commit, in
//   either direction. Retrieves never touch the commit path: they pin
//   the engine's published snapshot and run lock-free even while a
//   batch is parked on a slow fsync.
//
// Recovery
//   Open() takes a RecoveryMode. kStrict fails on any damage. kSalvage
//   truncates a torn or corrupt *tail* (the classic crash-during-append
//   shape), replays the valid prefix, and reports what was dropped in a
//   RecoveryReport; corruption in the *middle* of the log — damage
//   followed by further valid records — is fatal in both modes, because
//   dropping interior records would silently change the catalog.
//
// Fail-stop
//   If a batch commit (append or fsync) fails, the engine rolls its
//   in-memory state back to the durable prefix and enters a read-only
//   degraded state: the failed batch is NOT visible as committed,
//   further mutations and compactions return Status::Unavailable, and
//   retrieves keep working against the last durable snapshot.
//
// Compaction
//   Compact() quiesces the commit queue (waits for the in-flight batch
//   and drains staged frames; mutations arriving mid-compaction block),
//   dumps the current state as framed V3 into `<path>.tmp`, fsyncs it,
//   atomically renames it over the log, and fsyncs the directory. On
//   any failure before the rename commits, the original log and the
//   open append handle are left untouched, so the engine remains fully
//   usable.

#ifndef VIEWAUTH_ENGINE_DURABLE_H_
#define VIEWAUTH_ENGINE_DURABLE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "engine/engine.h"

namespace viewauth {

enum class LogFormat {
  kLegacyText,  // plain statement-per-line (pre-V2)
  kFramedV2,    // magic header + framed, checksummed records
  kFramedV3,    // framed records + batch commit markers (group commit)
};

std::string_view LogFormatToString(LogFormat format);

enum class RecoveryMode {
  // Any damage — torn tail, checksum mismatch, sequence gap, uncommitted
  // batch tail — fails Open.
  kStrict,
  // A damaged tail is truncated and reported; the valid prefix replays.
  // Mid-log corruption (valid records after the damage) is still fatal.
  kSalvage,
};

// What Open() found and did while replaying the log.
struct RecoveryReport {
  LogFormat format = LogFormat::kFramedV3;
  // True when salvage dropped a damaged tail (always false in kStrict:
  // damage fails the open instead).
  bool salvaged = false;
  uint64_t records_replayed = 0;
  // Sequence number of the last valid committed record (framed logs).
  uint64_t last_good_seq = 0;
  uint64_t dropped_records = 0;
  uint64_t dropped_bytes = 0;
  // Human-readable description of the damage, empty for a clean open.
  std::string detail;

  std::string ToString() const;
};

// Counters surfaced by the REPL's \stats command.
struct DurableStats {
  LogFormat format = LogFormat::kFramedV3;
  bool degraded = false;
  uint64_t appends = 0;
  uint64_t append_bytes = 0;
  uint64_t compactions = 0;
  uint64_t log_bytes = 0;
  // Group-commit batches fsynced (each is one append + one fsync).
  uint64_t commit_batches = 0;
  // Mutations committed through those batches; frames_per_batch in the
  // rendered stats is batched_records / commit_batches.
  uint64_t batched_records = 0;
  // Fsyncs avoided relative to one-fsync-per-mutation.
  uint64_t fsyncs_saved = 0;
  // Whole-batch aborts (fsync failure → every waiter Unavailable).
  uint64_t batch_aborts = 0;
  // Transient-fault self-healing: commit append/fsync failures retried,
  // and commits that succeeded only thanks to a retry.
  uint64_t transient_retries = 0;
  uint64_t transient_recoveries = 0;
  // Engine-state versions currently alive (head + published + pinned).
  long long snapshots_live = 0;
  RecoveryReport recovery;

  std::string ToString() const;
};

struct DurableOptions {
  RecoveryMode recovery = RecoveryMode::kStrict;
  // Defaults to FileSystem::Default(); tests inject faults here. The
  // filesystem must outlive the engine.
  FileSystem* fs = nullptr;
  // fsync each commit (per batch under group commit, per record
  // otherwise). Disable only for bulk loads where losing the tail on a
  // crash is acceptable.
  bool sync_every_append = true;
  // Batch concurrent mutations into single append+fsync commits (V3
  // logs only; V2/legacy logs always commit per record). Disabling
  // falls back to one append+fsync per mutation — the baseline the
  // group-commit bench compares against.
  bool group_commit = true;
  // How long a batch leader waits for stragglers to join before
  // sealing, and the hard cap on records per batch.
  long long group_commit_window_us = 50;
  int group_commit_max_batch = 128;
  // Transient-fault self-healing: how many times a failed commit append
  // or fsync is retried before the engine fail-stops into degraded
  // mode. Each retry clips the log back to the durable prefix (so a
  // torn append or a page an fsync failure dropped from cache cannot
  // linger), backs off exponentially, and re-appends the whole commit.
  // 0 restores strict fail-stop-on-first-failure.
  int transient_retry_attempts = 2;
  long long transient_retry_backoff_us = 1000;
};

class DurableEngine {
 public:
  // Opens (creating if absent) the statement log at `path` in kStrict
  // mode, replaying any existing contents. Fails if the existing log
  // does not replay cleanly.
  static Result<std::unique_ptr<DurableEngine>> Open(const std::string& path);

  static Result<std::unique_ptr<DurableEngine>> Open(
      const std::string& path, const DurableOptions& options);

  // Executes one statement; successful mutating statements are appended
  // to the log (and fsynced, possibly as part of a batch) before the
  // result is returned. In degraded mode mutating statements return
  // Status::Unavailable. Safe to call from many threads: mutations
  // serialize/batch, retrieves run lock-free on the published snapshot.
  Result<std::string> Execute(const std::string& statement_text);

  // Parses and executes a whole script through the same durable path.
  Result<std::string> ExecuteScript(const std::string& script_text);

  // Executes an already-parsed statement; `limits` (may be null)
  // composes per-request budgets over the engine's own options for the
  // governed read path — the wire server threads request deadlines
  // through here. Mutating statements take the durable commit path
  // (limits do not apply: once a mutation executes it must either
  // commit or roll back whole).
  Result<std::string> ExecuteParsed(const Statement& statement,
                                    const ExecLimits* limits = nullptr);

  // Rewrites the log as the compact framed-V3 DumpScript of the current
  // state (compaction: dropped rows and revoked grants disappear; V2
  // and legacy logs are upgraded to the framed-V3 format). Crash-safe:
  // the original log is replaced atomically or not at all. Quiesces the
  // group-commit queue first; mutations arriving mid-compaction block
  // until it finishes.
  Status Compact();

  // The underlying engine. Stable across Execute calls and fail-stop
  // transitions (a rollback discards the engine's staged snapshot, it
  // does not replace the Engine object). Mutating directly through this
  // reference bypasses the log — setup/test use only.
  Engine& engine() { return *engine_; }
  const std::string& path() const { return path_; }

  // True after a commit failure: mutations return Unavailable,
  // retrieves still work against the last durable state.
  bool degraded() const;
  std::string degraded_reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return degraded_reason_;
  }

  LogFormat format() const { return format_; }
  const RecoveryReport& recovery_report() const { return recovery_; }
  DurableStats stats() const;

 private:
  DurableEngine(std::string path, DurableOptions options, FileSystem* fs,
                std::unique_ptr<Engine> engine)
      : path_(std::move(path)),
        options_(options),
        fs_(fs),
        engine_(std::move(engine)) {}

  Result<std::string> ExecuteParsedDurable(const Statement& statement,
                                           const ExecLimits* limits = nullptr);
  // The two commit paths for a mutation that already executed (staged,
  // unpublished) under mu_. Both publish on success and roll back into
  // degraded mode on failure.
  Result<std::string> CommitSingleLocked(std::unique_lock<std::mutex>& lock,
                                         const Statement& stmt,
                                         std::string output);
  Result<std::string> CommitBatchedLocked(std::unique_lock<std::mutex>& lock,
                                          const Statement& stmt,
                                          std::string output);
  // Leader-side straggler wait: sleeps in short slices until the window
  // elapses, the batch hits its cap, or arrivals stop.
  void WaitForStragglersLocked(std::unique_lock<std::mutex>& lock);

  // Appends `data` (a whole commit: records + marker) and syncs,
  // retrying transient failures per options_.transient_retry_attempts:
  // each retry truncates the file back to `durable_offset` — the known
  // durable prefix — so a torn append or an fsync-dropped page cannot
  // survive into the next attempt, then backs off and re-appends.
  // `retries` counts attempts beyond the first. Caller must hold leader
  // exclusivity over log_ (mu_ in the single path; committing_ in the
  // batched path).
  Status AppendDurably(const std::string& data, uint64_t durable_offset,
                       int* retries);

  // Replays a framed (V2/V3) / legacy plain-text log body, applying the
  // configured recovery mode (salvage truncates a damaged tail on disk)
  // and filling in recovery_, durable_statements_, next_seq_, log_bytes_.
  Status RecoverFramed(const std::string& contents, LogFormat format);
  Status RecoverLegacy(const std::string& contents);

  // Transitions to read-only degraded mode. When `rollback` is set the
  // engine's staged (acknowledged-but-not-durable) snapshot is
  // discarded so an uncommitted mutation does not remain visible.
  // Requires mu_.
  void EnterDegradedLocked(const std::string& reason, bool rollback);

  std::string path_;
  DurableOptions options_;
  FileSystem* fs_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<WritableFile> log_;
  LogFormat format_ = LogFormat::kFramedV3;
  // Normalized text of every statement durably in the log, in order.
  std::vector<std::string> durable_statements_;
  uint64_t next_seq_ = 1;
  // Bytes of the log known to be durable (the append offset).
  uint64_t log_bytes_ = 0;
  RecoveryReport recovery_;
  bool degraded_ = false;
  std::string degraded_reason_;
  uint64_t appends_ = 0;
  uint64_t append_bytes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t commit_batches_ = 0;
  uint64_t batched_records_ = 0;
  uint64_t fsyncs_saved_ = 0;
  uint64_t batch_aborts_ = 0;
  uint64_t transient_retries_ = 0;
  uint64_t transient_recoveries_ = 0;

  // --- group-commit state (all under mu_) -------------------------------
  // Frames and statement texts staged for the next batch.
  std::string pending_buffer_;
  std::vector<std::string> pending_lines_;
  uint64_t pending_first_seq_ = 0;
  // Epoch of the batch currently forming; each waiter remembers the
  // epoch it staged into. resolved advances when a leader finishes a
  // batch (either way); durable advances only when the fsync succeeded,
  // so a waiter's verdict is `durable_epoch_ >= my_epoch`.
  uint64_t pending_epoch_ = 1;
  uint64_t resolved_epoch_ = 0;
  uint64_t durable_epoch_ = 0;
  // A leader exists (forming or committing a batch).
  bool leader_active_ = false;
  // The leader has sealed its batch and is doing I/O with mu_ released.
  // New mutations block at entry while set, so the engine's staged head
  // always equals exactly the sealed batch — a successful publish can
  // never leak a later, not-yet-fsynced mutation to readers.
  bool committing_ = false;
  // Compact() is quiescing/rewriting; mutations block at entry.
  bool compacting_ = false;
  // One condition variable for every wait (stragglers, followers,
  // entry gates, compaction drain); notify_all keeps it race-free.
  mutable std::condition_variable cv_;

  // Guards the log handle, counters, flags and the staging buffers;
  // Engine has its own snapshot machinery for concurrent retrieves.
  mutable std::mutex mu_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_DURABLE_H_
