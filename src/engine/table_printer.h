// ASCII table rendering for relations and query results, in the style of
// the paper's figures (withheld cells print as "-", integers may use
// thousands separators).

#ifndef VIEWAUTH_ENGINE_TABLE_PRINTER_H_
#define VIEWAUTH_ENGINE_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "storage/relation.h"

namespace viewauth {

struct TablePrintOptions {
  bool thousands_separators = true;
  // How withheld (NULL) cells render.
  std::string null_text = "-";
  // Print rows in sorted order for deterministic output.
  bool sorted = true;
  // Optional caption printed above the table.
  std::string caption;
};

std::string PrintRelation(const Relation& relation,
                          const TablePrintOptions& options = {});

// Renders any rows-of-strings table with a header, shared by the meta
// displays.
std::string PrintTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows,
                       const std::string& caption = "");

}  // namespace viewauth

#endif  // VIEWAUTH_ENGINE_TABLE_PRINTER_H_
