#include "engine/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace viewauth {

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  slot_free_.notify_one();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const AuthorizationOptions& options) {
  const int max_concurrent = options.max_concurrent;
  std::unique_lock<std::mutex> lock(mutex_);
  ++attempts_;
  if (draining_) {
    ++shed_;
    return Status::Unavailable(
        "admission control is draining for shutdown; retry later");
  }
  if (max_concurrent <= 0 || in_flight_ < max_concurrent) {
    ++admitted_;
    ++in_flight_;
    return Ticket(this);
  }
  if (waiting_ >= std::max(0, options.admission_queue)) {
    ++shed_;
    return Status::Unavailable(
        "admission queue full: " + std::to_string(in_flight_) +
        " retrieve(s) running, " + std::to_string(waiting_) +
        " waiting; try again later");
  }
  ++waiting_;
  ++queued_;
  const bool woke = slot_free_.wait_for(
      lock,
      std::chrono::milliseconds(std::max<long long>(
          0, options.admission_timeout_ms)),
      [&] { return draining_ || in_flight_ < max_concurrent; });
  --waiting_;
  if (draining_) {
    ++shed_;
    return Status::Unavailable(
        "admission control is draining for shutdown; retry later");
  }
  if (!woke) {
    ++queue_timeouts_;
    return Status::Unavailable(
        "timed out waiting for an admission slot after " +
        std::to_string(options.admission_timeout_ms) + " ms");
  }
  ++admitted_;
  ++in_flight_;
  return Ticket(this);
}

void AdmissionController::SetDraining(bool draining) {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = draining;
  if (draining_) slot_free_.notify_all();
}

void AdmissionController::FillStats(AuthzStats* stats) const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats->admission_attempts = attempts_;
  stats->admitted = admitted_;
  stats->queued = queued_;
  stats->shed = shed_;
  stats->queue_timeouts = queue_timeouts_;
}

void AdmissionController::ResetCounters() {
  std::lock_guard<std::mutex> lock(mutex_);
  attempts_ = 0;
  admitted_ = 0;
  queued_ = 0;
  shed_ = 0;
  queue_timeouts_ = 0;
}

}  // namespace viewauth
