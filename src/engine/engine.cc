#include "engine/engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "authz/update_guard.h"
#include "common/str_util.h"
#include "engine/table_printer.h"
#include "parser/parser.h"

namespace viewauth {

Engine::Engine() {
  auto db = std::make_shared<DatabaseInstance>();
  auto catalog = std::make_shared<ViewCatalog>(db->schema_ptr());
  live_ = MakeState(std::move(db), std::move(catalog), 0);
  published_ = live_;
  authorizer_ = std::make_unique<Authorizer>(
      published_->db.get(), published_->catalog.get(), &authz_cache_);
}

std::shared_ptr<Engine::EngineState> Engine::MakeState(
    std::shared_ptr<DatabaseInstance> db, std::shared_ptr<ViewCatalog> catalog,
    uint64_t version) {
  // The counter rides in the deleter so a reader releasing the last pin
  // of an old version decrements it no matter when that happens.
  std::shared_ptr<std::atomic<long long>> counter = state_count_;
  counter->fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<EngineState>(
      new EngineState{std::move(db), std::move(catalog), version},
      [counter](EngineState* state) {
        counter->fetch_sub(1, std::memory_order_relaxed);
        delete state;
      });
}

std::shared_ptr<const Engine::EngineState> Engine::SnapshotNow() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return published_;
}

void Engine::PublishLocked() {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  published_ = live_;
  *authorizer_ = Authorizer(published_->db.get(), published_->catalog.get(),
                            &authz_cache_);
}

uint64_t Engine::published_version() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return published_->version;
}

void Engine::SetDeferPublication(bool defer) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  defer_publication_ = defer;
}

void Engine::PublishStaged() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  PublishLocked();
}

void Engine::DiscardStaged() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::shared_ptr<EngineState> published;
  {
    std::lock_guard<std::mutex> publish_lock(publish_mutex_);
    published = published_;
  }
  if (live_ == published) return;
  live_ = std::move(published);
  // The cache's journal sync advanced into the discarded catalog
  // versions; their sequence numbers must not be reused underneath it.
  // The engine is entering fail-stop degraded mode anyway, so the
  // over-approximate wipe costs nothing.
  authz_cache_.Invalidate();
}

DatabaseInstance& Engine::MutableDb() {
  if (live_->db.use_count() > 1) {
    live_->db = std::make_shared<DatabaseInstance>(*live_->db);
  }
  return *live_->db;
}

ViewCatalog& Engine::MutableCatalog() {
  if (live_->catalog.use_count() > 1) {
    live_->catalog = live_->catalog->Clone(live_->db->schema_ptr());
  } else {
    // Already private; just make sure it points at the head's schema
    // (DDL in this same statement may have cloned it).
    live_->catalog->RebindSchema(live_->db->schema_ptr());
  }
  return *live_->catalog;
}

Result<std::string> Engine::Execute(const std::string& statement_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement_text));
  return ExecuteParsed(stmt);
}

Result<std::string> Engine::ExecuteParsed(const Statement& statement) {
  return ExecuteParsed(statement, nullptr);
}

Result<std::string> Engine::ExecuteParsed(const Statement& statement,
                                          const ExecLimits* limits) {
  // Retrieves and analyses pin the published snapshot and run lock-free;
  // every other statement may mutate engine state and serializes on the
  // state mutex.
  if (std::holds_alternative<RetrieveStmt>(statement)) {
    // Admission happens before the snapshot pin so a queued retrieve
    // holds no version alive; the ticket outlives the statement, freeing
    // the slot only after the retrieve fully unwinds.
    VIEWAUTH_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                              admission_.Admit(options_));
    std::shared_ptr<const EngineState> snapshot = SnapshotNow();
    return ExecuteRetrieve(std::get<RetrieveStmt>(statement), *snapshot,
                           limits);
  }
  if (std::holds_alternative<AnalyzeStmt>(statement)) {
    std::shared_ptr<const EngineState> snapshot = SnapshotNow();
    return ExecuteAnalyze(std::get<AnalyzeStmt>(statement), *snapshot);
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  // Fork the head: the fork shares the database and catalog objects, and
  // the statement clones what it writes (MutableDb / MutableCatalog). On
  // failure the fork is dropped whole — even a statement that fails
  // halfway through its writes leaves no trace.
  const std::shared_ptr<EngineState> prev = live_;
  live_ = MakeState(prev->db, prev->catalog, prev->version);
  Result<std::string> out = std::visit(
      [this](const auto& stmt) -> Result<std::string> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, RelationStmt>) {
          return ExecuteRelation(stmt);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return ExecuteInsert(stmt);
        } else if constexpr (std::is_same_v<T, ViewStmt>) {
          return ExecuteView(stmt);
        } else if constexpr (std::is_same_v<T, PermitStmt>) {
          return ExecutePermit(stmt);
        } else if constexpr (std::is_same_v<T, DenyStmt>) {
          return ExecuteDeny(stmt);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return ExecuteDelete(stmt);
        } else if constexpr (std::is_same_v<T, ModifyStmt>) {
          return ExecuteModify(stmt);
        } else if constexpr (std::is_same_v<T, DropStmt>) {
          return ExecuteDrop(stmt);
        } else if constexpr (std::is_same_v<T, MemberStmt>) {
          return ExecuteMember(stmt);
        } else if constexpr (std::is_same_v<T, AnalyzeStmt>) {
          return ExecuteAnalyze(stmt, *live_);
        } else {
          return ExecuteRetrieve(stmt, *live_);
        }
      },
      statement);
  if (!out.ok()) {
    live_ = prev;
    return out;
  }
  live_->version = next_version_++;
  if (!defer_publication_) PublishLocked();
  return out;
}

Result<std::string> Engine::ExecuteScript(const std::string& script_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                            ParseProgram(script_text));
  std::ostringstream out;
  for (const Statement& stmt : statements) {
    VIEWAUTH_ASSIGN_OR_RETURN(std::string output, ExecuteParsed(stmt));
    if (!output.empty()) out << output << "\n";
  }
  return out.str();
}

namespace {

// Renders a ColumnRef as surface syntax ("EMPLOYEE.NAME",
// "EMPLOYEE:2.NAME").
std::string RenderColumn(const ConjunctiveQuery& query,
                         const ColumnRef& ref) {
  const MembershipAtom& atom = query.atoms()[static_cast<size_t>(ref.atom)];
  AttributeRef attr;
  attr.relation = atom.relation;
  attr.occurrence = atom.occurrence;
  attr.attribute = query.atom_schema(ref.atom).attribute(ref.attr).name;
  return attr.ToString();
}

// Renders one branch's conjunctive conditions.
std::string RenderConditions(const ConjunctiveQuery& query) {
  std::vector<std::string> parts;
  for (const CalculusCondition& cond : query.conditions()) {
    std::string text = RenderColumn(query, cond.lhs);
    text += " ";
    text += ComparatorToString(cond.op);
    text += " ";
    if (cond.rhs_is_column) {
      text += RenderColumn(query, cond.rhs_column);
    } else {
      text += cond.rhs_const.ToDisplayString(/*commas=*/false);
    }
    parts.push_back(std::move(text));
  }
  return Join(parts, " and ");
}

}  // namespace

Result<std::string> Engine::ExplainRetrieve(
    const std::string& retrieve_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(retrieve_text));
  const auto* retrieve = std::get_if<RetrieveStmt>(&stmt);
  if (retrieve == nullptr) {
    return Status::InvalidArgument("explain expects a retrieve statement");
  }
  const std::shared_ptr<const EngineState> snapshot = SnapshotNow();
  const std::string& user =
      retrieve->as_user.empty() ? session_user_ : retrieve->as_user;
  VIEWAUTH_ASSIGN_OR_RETURN(
      ConjunctiveQuery query,
      ConjunctiveQuery::FromRetrieve(snapshot->db->schema(), *retrieve));
  const Authorizer authorizer(snapshot->db.get(), snapshot->catalog.get(),
                              &authz_cache_);
  VIEWAUTH_ASSIGN_OR_RETURN(MaskTrace trace,
                            authorizer.Explain(user, query, options_));
  return "explain for " + user + ":\n" + trace.ToString();
}

Result<std::string> Engine::DumpScript() const {
  const std::shared_ptr<const EngineState> snapshot = SnapshotNow();
  const DatabaseInstance& db = *snapshot->db;
  const ViewCatalog& catalog = *snapshot->catalog;
  std::ostringstream out;
  // Schema.
  for (const std::string& name : db.schema().relation_names()) {
    VIEWAUTH_ASSIGN_OR_RETURN(const RelationSchema* schema,
                              db.schema().GetRelation(name));
    std::vector<std::string> attrs;
    for (int i = 0; i < schema->arity(); ++i) {
      const Attribute& attr = schema->attribute(i);
      std::string decl = attr.name;
      decl += " ";
      decl += ValueTypeToString(attr.type);
      if (schema->IsKeyAttribute(i)) decl += " key";
      attrs.push_back(std::move(decl));
    }
    out << "relation " << name << " (" << Join(attrs, ", ") << ")\n";
  }
  // Data.
  for (const std::string& name : db.schema().relation_names()) {
    VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
    for (const Tuple& row : rel->SortedRows()) {
      std::vector<std::string> values;
      for (const Value& v : row.values()) {
        values.push_back(v.ToDisplayString(/*commas=*/false));
      }
      out << "insert into " << name << " values (" << Join(values, ", ")
          << ")\n";
    }
  }
  // Views (disjunctive groups re-assemble their branches with `or`).
  for (const std::string& name : catalog.view_names()) {
    VIEWAUTH_ASSIGN_OR_RETURN(std::vector<const ViewDefinition*> branches,
                              catalog.GetViewBranches(name));
    const ConjunctiveQuery& first = branches.front()->query;
    std::vector<std::string> targets;
    for (const ColumnRef& target : first.targets()) {
      targets.push_back(RenderColumn(first, target));
    }
    out << "view " << name << " (" << Join(targets, ", ") << ")";
    std::vector<std::string> wheres;
    for (const ViewDefinition* branch : branches) {
      wheres.push_back(RenderConditions(branch->query));
    }
    // A single branch with no conditions needs no where clause; multiple
    // branches always render each conjunction (an empty one cannot occur:
    // it would subsume the others at definition time).
    if (!(wheres.size() == 1 && wheres[0].empty())) {
      out << " where " << Join(wheres, " or ");
    }
    out << "\n";
  }
  // Group membership.
  for (const auto& [group, members] : catalog.group_members()) {
    for (const std::string& member : members) {
      out << "member " << member << " of " << group << "\n";
    }
  }
  // Grants.
  for (const ViewCatalog::Grant& grant : catalog.grants()) {
    out << "permit " << grant.view << " to " << grant.user;
    if (grant.mode != AccessMode::kRetrieve) {
      out << " for " << AccessModeToString(grant.mode);
    }
    out << "\n";
  }
  return out.str();
}

Result<std::string> Engine::ExecuteRelation(const RelationStmt& stmt) {
  std::vector<Attribute> attributes;
  std::vector<int> key;
  for (size_t i = 0; i < stmt.attributes.size(); ++i) {
    const auto& decl = stmt.attributes[i];
    attributes.push_back(Attribute{decl.name, decl.type});
    if (decl.is_key) key.push_back(static_cast<int>(i));
  }
  VIEWAUTH_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Make(stmt.name, std::move(attributes), std::move(key)));
  VIEWAUTH_RETURN_NOT_OK(MutableDb().CreateRelation(std::move(schema)));
  // The create cloned the schema under any live snapshot; repoint the
  // head catalog at the new schema object.
  MutableCatalog();
  authz_cache_.Invalidate();
  return "created relation " + stmt.name;
}

Result<std::string> Engine::ExecuteInsert(const InsertStmt& stmt) {
  VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                            std::as_const(*live_->db).GetRelation(stmt.relation));
  // Coerce parsed literals toward the declared attribute types (bare
  // identifiers arrive as strings; numeric columns re-parse them).
  const RelationSchema& schema = rel->schema();
  if (static_cast<int>(stmt.values.size()) != schema.arity()) {
    return Status::SchemaMismatch(
        "insert into " + stmt.relation + ": expected " +
        std::to_string(schema.arity()) + " values, got " +
        std::to_string(stmt.values.size()));
  }
  std::vector<Value> values;
  values.reserve(stmt.values.size());
  for (int i = 0; i < schema.arity(); ++i) {
    const Value& given = stmt.values[static_cast<size_t>(i)];
    const ValueType expected = schema.attribute(i).type;
    if (!given.is_null() && given.is_string() &&
        expected != ValueType::kString) {
      VIEWAUTH_ASSIGN_OR_RETURN(Value coerced,
                                ParseValueAs(given.string_value(), expected));
      values.push_back(std::move(coerced));
    } else {
      values.push_back(given);
    }
  }
  Tuple tuple(std::move(values));
  // With an `as USER` clause, the insert is subject to insert-mode
  // permissions; without it the statement is an administrative load.
  if (!stmt.as_user.empty()) {
    UpdateGuard guard(live_->db.get(), live_->catalog.get());
    AuditEntry audit;
    audit.user = stmt.as_user;
    audit.statement = stmt.ToString();
    Status allowed = guard.CheckInsert(stmt.as_user, stmt.relation, tuple);
    if (!allowed.ok()) {
      audit.outcome = AuditOutcome::kInsertDenied;
      audit_log_.Record(std::move(audit));
      return allowed;
    }
    audit.outcome = AuditOutcome::kInsertAllowed;
    audit.affected = 1;
    audit_log_.Record(std::move(audit));
  }
  VIEWAUTH_RETURN_NOT_OK(MutableDb().Insert(stmt.relation, std::move(tuple)));
  return std::string();  // silent, like bulk loads
}

Result<std::string> Engine::ExecuteDelete(const DeleteStmt& stmt) {
  VIEWAUTH_ASSIGN_OR_RETURN(Relation * rel,
                            MutableDb().GetRelation(stmt.relation));
  if (stmt.as_user.empty()) {
    // Administrative delete: remove every matching row.
    ConjunctivePredicate predicate;
    const RelationSchema& schema = rel->schema();
    for (const Condition& cond : stmt.conditions) {
      auto resolve = [&](const AttributeRef& ref) -> Result<int> {
        if (ref.relation != stmt.relation || ref.occurrence != 1) {
          return Status::InvalidArgument(
              "delete predicates may only reference the target relation");
        }
        int index = schema.AttributeIndex(ref.attribute);
        if (index < 0) {
          return Status::NotFound("relation '" + stmt.relation +
                                  "' has no attribute '" + ref.attribute +
                                  "'");
        }
        return index;
      };
      VIEWAUTH_ASSIGN_OR_RETURN(int lhs, resolve(cond.lhs));
      if (cond.rhs.is_attribute) {
        VIEWAUTH_ASSIGN_OR_RETURN(int rhs, resolve(cond.rhs.attribute));
        predicate.Add(SelectionAtom::ColumnColumn(lhs, cond.op, rhs));
      } else {
        predicate.Add(
            SelectionAtom::ColumnConst(lhs, cond.op, cond.rhs.constant));
      }
    }
    std::vector<Tuple> matching;
    for (const Tuple& row : rel->rows()) {
      if (predicate.Matches(row)) matching.push_back(row);
    }
    for (const Tuple& row : matching) rel->Erase(row);
    return "deleted " + std::to_string(matching.size()) + " row(s)";
  }

  UpdateGuard guard(live_->db.get(), live_->catalog.get());
  VIEWAUTH_ASSIGN_OR_RETURN(
      UpdateGuard::DeleteDecision decision,
      guard.AuthorizeDelete(stmt.as_user, stmt.relation, stmt.conditions));
  for (const Tuple& row : decision.deletable) rel->Erase(row);
  AuditEntry audit;
  audit.user = stmt.as_user;
  audit.statement = stmt.ToString();
  audit.outcome = AuditOutcome::kDeleteApplied;
  audit.affected = static_cast<int>(decision.deletable.size());
  audit.withheld = decision.withheld;
  audit_log_.Record(std::move(audit));
  std::string out =
      "deleted " + std::to_string(decision.deletable.size()) + " row(s)";
  if (decision.withheld > 0) {
    out += " (" + std::to_string(decision.withheld) +
           " withheld by permissions)";
  }
  return out;
}

Result<std::string> Engine::ExecuteModify(const ModifyStmt& stmt) {
  VIEWAUTH_ASSIGN_OR_RETURN(Relation * rel,
                            MutableDb().GetRelation(stmt.relation));
  UpdateGuard guard(live_->db.get(), live_->catalog.get());
  UpdateGuard::ModifyDecision decision;
  if (stmt.as_user.empty()) {
    // Administrative modify: authorize as an all-powerful pseudo window
    // by reusing the guard's resolution, then applying every matching
    // change. Build a synthetic decision via a temporary full-width
    // modify view would be roundabout; instead resolve and apply inline
    // through the guard's authorized path with every row permitted.
    // Simpler: define the change set directly.
    const RelationSchema& schema = rel->schema();
    std::vector<std::pair<int, Value>> resolved;
    for (const ModifyStmt::Assignment& assignment : stmt.assignments) {
      int index = schema.AttributeIndex(assignment.attribute);
      if (index < 0) {
        return Status::NotFound("relation '" + stmt.relation +
                                "' has no attribute '" +
                                assignment.attribute + "'");
      }
      Value value = assignment.value;
      const ValueType expected = schema.attribute(index).type;
      if (!value.is_null() && value.is_string() &&
          expected != ValueType::kString) {
        VIEWAUTH_ASSIGN_OR_RETURN(
            value, ParseValueAs(value.string_value(), expected));
      }
      resolved.emplace_back(index, std::move(value));
    }
    ConjunctivePredicate predicate;
    for (const Condition& cond : stmt.conditions) {
      auto resolve = [&](const AttributeRef& ref) -> Result<int> {
        if (ref.relation != stmt.relation || ref.occurrence != 1) {
          return Status::InvalidArgument(
              "modify predicates may only reference the target relation");
        }
        int index = schema.AttributeIndex(ref.attribute);
        if (index < 0) {
          return Status::NotFound("relation '" + stmt.relation +
                                  "' has no attribute '" + ref.attribute +
                                  "'");
        }
        return index;
      };
      VIEWAUTH_ASSIGN_OR_RETURN(int lhs, resolve(cond.lhs));
      if (cond.rhs.is_attribute) {
        VIEWAUTH_ASSIGN_OR_RETURN(int rhs, resolve(cond.rhs.attribute));
        predicate.Add(SelectionAtom::ColumnColumn(lhs, cond.op, rhs));
      } else {
        predicate.Add(
            SelectionAtom::ColumnConst(lhs, cond.op, cond.rhs.constant));
      }
    }
    for (const Tuple& row : rel->rows()) {
      if (!predicate.Matches(row)) continue;
      Tuple updated = row;
      for (const auto& [index, value] : resolved) {
        updated.at(index) = value;
      }
      if (!(updated == row)) decision.changes.emplace_back(row, updated);
    }
  } else {
    VIEWAUTH_ASSIGN_OR_RETURN(
        decision,
        guard.AuthorizeModify(stmt.as_user, stmt.relation, stmt.assignments,
                              stmt.conditions));
  }

  int applied = 0;
  int conflicted = 0;
  for (const auto& [old_row, new_row] : decision.changes) {
    rel->Erase(old_row);
    Status inserted = rel->Insert(new_row);
    if (inserted.ok()) {
      ++applied;
    } else {
      // Key conflict with another row: restore the original.
      (void)rel->Insert(old_row);
      ++conflicted;
    }
  }
  if (!stmt.as_user.empty()) {
    AuditEntry audit;
    audit.user = stmt.as_user;
    audit.statement = stmt.ToString();
    audit.outcome = AuditOutcome::kModifyApplied;
    audit.affected = applied;
    audit.withheld = decision.withheld;
    audit_log_.Record(std::move(audit));
  }
  std::string out = "modified " + std::to_string(applied) + " row(s)";
  if (decision.withheld > 0) {
    out += " (" + std::to_string(decision.withheld) +
           " withheld by permissions)";
  }
  if (conflicted > 0) {
    out += " (" + std::to_string(conflicted) + " key conflict(s))";
  }
  return out;
}

Result<std::string> Engine::ExecuteDrop(const DropStmt& stmt) {
  if (stmt.is_view) {
    ViewCatalog& catalog = MutableCatalog();
    VIEWAUTH_RETURN_NOT_OK(catalog.DropView(stmt.name));
    // Selective: the drop's journal record names exactly the grant
    // holders and the view's relation scopes.
    authz_cache_.SyncCatalog(catalog);
    return "dropped view " + stmt.name;
  }
  // Restrict semantics: a relation referenced by any stored view cannot
  // be dropped (the views would silently dangle otherwise).
  const std::vector<std::string> referencing =
      live_->catalog->ViewsReferencingRelation(stmt.name);
  if (!referencing.empty()) {
    return Status::InvalidArgument("relation '" + stmt.name +
                                   "' is referenced by view '" +
                                   referencing.front() +
                                   "'; drop the view first");
  }
  VIEWAUTH_RETURN_NOT_OK(MutableDb().DropRelation(stmt.name));
  // The drop cloned the schema under any live snapshot; repoint the head
  // catalog at the new schema object.
  MutableCatalog();
  // DDL changes coverage decisions for any user; no per-entry dependency
  // test applies, so this is the over-approximate full wipe.
  authz_cache_.Invalidate();
  return "dropped relation " + stmt.name;
}

Result<std::string> Engine::ExecuteMember(const MemberStmt& stmt) {
  // Membership changes invalidate only the joining/leaving user's
  // entries, over the scopes of the group's grants.
  ViewCatalog& catalog = MutableCatalog();
  if (stmt.remove) {
    VIEWAUTH_RETURN_NOT_OK(catalog.RemoveMember(stmt.user, stmt.group));
    authz_cache_.SyncCatalog(catalog);
    return "removed " + stmt.user + " from " + stmt.group;
  }
  VIEWAUTH_RETURN_NOT_OK(catalog.AddMember(stmt.user, stmt.group));
  authz_cache_.SyncCatalog(catalog);
  return "added " + stmt.user + " to " + stmt.group;
}

Result<std::string> Engine::ExecuteView(const ViewStmt& stmt) {
  ViewCatalog& catalog = MutableCatalog();
  VIEWAUTH_RETURN_NOT_OK(catalog.DefineView(stmt));
  // A fresh view carries no grants, so this drops nothing; the sync
  // just advances the cache's journal position.
  authz_cache_.SyncCatalog(catalog);
  return "defined view " + stmt.name;
}

namespace {

AccessMode ToAccessMode(GrantMode mode) {
  switch (mode) {
    case GrantMode::kRetrieve:
      return AccessMode::kRetrieve;
    case GrantMode::kInsert:
      return AccessMode::kInsert;
    case GrantMode::kDelete:
      return AccessMode::kDelete;
    case GrantMode::kModify:
      return AccessMode::kModify;
  }
  return AccessMode::kRetrieve;
}

}  // namespace

Result<std::string> Engine::ExecutePermit(const PermitStmt& stmt) {
  ViewCatalog& catalog = MutableCatalog();
  VIEWAUTH_RETURN_NOT_OK(
      catalog.Permit(stmt.view, stmt.user, ToAccessMode(stmt.mode)));
  // Selective: drops only the grantee's (or, for a group, the members')
  // entries whose relation set covers the view.
  authz_cache_.SyncCatalog(catalog);
  std::string out = "permitted " + stmt.view + " to " + stmt.user;
  if (stmt.mode != GrantMode::kRetrieve) {
    out += " for " + std::string(GrantModeToString(stmt.mode));
  }
  out += GrantAnalysisNotes(stmt.view, stmt.user);
  out += GrantAuditNotes(stmt.view, stmt.user, ToAccessMode(stmt.mode),
                         /*is_deny=*/false);
  return out;
}

Result<std::string> Engine::ExecuteDeny(const DenyStmt& stmt) {
  ViewCatalog& catalog = MutableCatalog();
  VIEWAUTH_RETURN_NOT_OK(
      catalog.Deny(stmt.view, stmt.user, ToAccessMode(stmt.mode)));
  authz_cache_.SyncCatalog(catalog);
  std::string out = "denied " + stmt.view + " to " + stmt.user;
  if (stmt.mode != GrantMode::kRetrieve) {
    out += " for " + std::string(GrantModeToString(stmt.mode));
  }
  out += GrantAnalysisNotes(stmt.view, stmt.user);
  out += GrantAuditNotes(stmt.view, stmt.user, ToAccessMode(stmt.mode),
                         /*is_deny=*/true);
  return out;
}

Result<std::string> Engine::ExecuteAnalyze(const AnalyzeStmt& stmt,
                                           const EngineState& state) {
  AnalysisReport report = CatalogAnalyzer(state.catalog.get()).Analyze({});
  if (stmt.audit) {
    report.Merge(DisclosureAuditor(state.catalog.get()).Audit({}));
  }
  return report.ToString(/*include_coverage=*/true);
}

AnalysisReport Engine::AnalyzeCatalog(const AnalysisOptions& options) const {
  const std::shared_ptr<const EngineState> snapshot = SnapshotNow();
  return CatalogAnalyzer(snapshot->catalog.get()).Analyze(options);
}

AnalysisReport Engine::AuditCatalog(
    const DisclosureAuditOptions& options) const {
  const std::shared_ptr<const EngineState> snapshot = SnapshotNow();
  return DisclosureAuditor(snapshot->catalog.get()).Audit(options);
}

std::string Engine::GrantAnalysisNotes(const std::string& view,
                                       const std::string& user) const {
  if (!options_.analyze_grants) return {};
  CatalogAnalyzer analyzer(live_->catalog.get());
  std::string out;
  for (const Diagnostic& diagnostic : analyzer.AnalyzeGrant(view, user)) {
    out += "\n" + diagnostic.ToString();
  }
  return out;
}

std::string Engine::GrantAuditNotes(const std::string& view,
                                    const std::string& user, AccessMode mode,
                                    bool is_deny) const {
  // Only retrieve grants change the disclosure closure.
  if (!options_.audit_grants || mode != AccessMode::kRetrieve) return {};
  DisclosureAuditor auditor(live_->catalog.get());
  const DisclosureAuditOptions audit_options;
  std::string out;
  if (is_deny) {
    ViewCatalog::Grant revocation{user, view, mode};
    if (std::optional<Diagnostic> d =
            auditor.CheckDenyBypass(revocation, audit_options)) {
      out += "\n" + d->ToString();
    }
    return out;
  }
  std::vector<DisclosureFact> marginal =
      auditor.MarginalDisclosure(view, user, audit_options);
  int emitted = 0;
  for (const DisclosureFact& fact : marginal) {
    if (emitted >= audit_options.max_drift_facts_per_grant) break;
    ++emitted;
    out += "\n  discloses " + RenderFact(*live_->catalog, fact);
    if (fact.depth() > 1) out += " (in composition " + fact.SourceLabel() + ")";
  }
  if (static_cast<int>(marginal.size()) > emitted) {
    out += "\n  ... and " + std::to_string(marginal.size() - emitted) +
           " more closure fact(s)";
  }
  UserClosure closure = auditor.ClosureFor(user, audit_options);
  for (const Diagnostic& d : auditor.ChannelFindings(closure, view)) {
    out += "\n" + d.ToString();
  }
  return out;
}

AuthzStats Engine::authz_stats() const {
  AuthzStats stats = authz_cache_.Snapshot();
  admission_.FillStats(&stats);
  return stats;
}

void Engine::ResetAuthzStats() {
  authz_cache_.ResetStats();
  admission_.ResetCounters();
}

// Registers a retrieve's context for the lifetime of the statement; the
// destructor runs on every exit path, so an early return via
// VIEWAUTH_ASSIGN_OR_RETURN never leaks a registration.
class Engine::ActiveContextGuard {
 public:
  ActiveContextGuard(Engine* engine, ExecContext* ctx)
      : engine_(engine), ctx_(ctx) {
    std::lock_guard<std::mutex> lock(engine_->cancel_mutex_);
    engine_->active_contexts_.push_back(ctx_);
  }
  ActiveContextGuard(const ActiveContextGuard&) = delete;
  ActiveContextGuard& operator=(const ActiveContextGuard&) = delete;
  ~ActiveContextGuard() {
    std::lock_guard<std::mutex> lock(engine_->cancel_mutex_);
    auto& active = engine_->active_contexts_;
    active.erase(std::find(active.begin(), active.end(), ctx_));
  }

 private:
  Engine* engine_;
  ExecContext* ctx_;
};

int Engine::CancelActiveRetrieves() {
  std::lock_guard<std::mutex> lock(cancel_mutex_);
  for (ExecContext* ctx : active_contexts_) ctx->Cancel();
  return static_cast<int>(active_contexts_.size());
}

Result<std::string> Engine::ExecuteRetrieve(const RetrieveStmt& stmt,
                                            const EngineState& state,
                                            const ExecLimits* limits) {
  const std::string& user =
      stmt.as_user.empty() ? session_user_ : stmt.as_user;

  // The whole statement runs against the pinned snapshot: an Authorizer
  // is three pointers, so binding one per retrieve costs nothing and
  // keeps the mask pipeline, data evaluation and cache fills all keyed
  // to the same state version even while mutations publish newer ones.
  const Authorizer authorizer(state.db.get(), state.catalog.get(),
                              &authz_cache_);

  // One context spans the whole statement — every or-branch draws on the
  // same deadline and budgets. Created even when no limits are set so
  // CancelActiveRetrieves always has a handle to signal. A per-request
  // override (the wire server's request deadline) composes with the
  // engine limits, strictest wins.
  ExecContext ctx(limits == nullptr
                      ? ExecLimitsOf(options_)
                      : TightenLimits(ExecLimitsOf(options_), *limits));
  ActiveContextGuard active(this, &ctx);

  AuthorizationResult result;
  if (stmt.or_branches.empty()) {
    VIEWAUTH_ASSIGN_OR_RETURN(
        ConjunctiveQuery query,
        ConjunctiveQuery::FromRetrieve(state.db->schema(), stmt));
    VIEWAUTH_ASSIGN_OR_RETURN(
        result, authorizer.Retrieve(user, query, options_, &ctx));
  } else {
    // Disjunctive retrieve: each conjunctive branch is authorized and
    // evaluated independently; the delivery is the union. Denied only
    // when every branch is denied; full access only when every branch is.
    std::vector<std::vector<Condition>> branches;
    branches.push_back(stmt.conditions);
    for (const std::vector<Condition>& branch : stmt.or_branches) {
      branches.push_back(branch);
    }
    bool first = true;
    bool all_denied = true;
    bool all_full = true;
    std::set<std::string> permit_texts;
    for (const std::vector<Condition>& branch : branches) {
      VIEWAUTH_ASSIGN_OR_RETURN(
          ConjunctiveQuery query,
          ConjunctiveQuery::Build(state.db->schema(), "retrieve",
                                  stmt.targets, branch));
      VIEWAUTH_ASSIGN_OR_RETURN(
          AuthorizationResult branch_result,
          authorizer.Retrieve(user, query, options_, &ctx));
      if (first) {
        result = branch_result;
        first = false;
      } else {
        for (const Tuple& row : branch_result.answer.rows()) {
          result.answer.InsertUnchecked(row);
        }
        for (const Tuple& row : branch_result.raw_answer.rows()) {
          result.raw_answer.InsertUnchecked(row);
        }
        // Branch masks combine only when their column layouts agree;
        // under extended masks, branches over different relation sets
        // carry different wide layouts and contribute their permits only.
        if (branch_result.mask.arity() == result.mask.arity()) {
          for (MetaTuple& tuple : branch_result.mask.tuples()) {
            result.mask.Add(std::move(tuple));
          }
        }
      }
      all_denied = all_denied && branch_result.denied;
      all_full = all_full && branch_result.full_access;
      for (const InferredPermit& permit : branch_result.permits) {
        if (permit_texts.insert(permit.ToString()).second) {
          result.permits.push_back(permit);
        }
      }
    }
    result.denied = all_denied;
    result.full_access = all_full;
    if (result.full_access) result.permits.clear();
  }

  AuditEntry audit;
  audit.user = user;
  audit.statement = stmt.ToString();

  std::ostringstream out;
  if (result.denied) {
    out << "permission denied: no permitted view covers this request";
    audit.outcome = AuditOutcome::kDenied;
    std::lock_guard<std::mutex> guard(result_mutex_);
    audit_log_.Record(std::move(audit));
    last_result_ = std::move(result);
    return out.str();
  }
  TablePrintOptions print_options;
  print_options.caption = "result for " + user + ":";
  out << PrintRelation(result.answer, print_options);
  if (result.full_access) {
    // Delivered without any accompanying permit statements (Example 3).
    audit.outcome = AuditOutcome::kFullAccess;
  } else {
    audit.outcome = AuditOutcome::kPartial;
    std::vector<std::string> rendered;
    for (const InferredPermit& permit : result.permits) {
      out << permit.ToString() << "\n";
      rendered.push_back(permit.ToString());
    }
    audit.permits = Join(rendered, "; ");
  }
  audit.affected = result.answer.size();
  audit.withheld = result.raw_answer.size() - result.answer.size();
  if (audit.withheld < 0) audit.withheld = 0;
  // Retrieves run lock-free on their snapshots, so concurrent sessions
  // reach this point together; the result mutex orders their updates.
  std::lock_guard<std::mutex> guard(result_mutex_);
  audit_log_.Record(std::move(audit));
  last_result_ = std::move(result);
  return out.str();
}

}  // namespace viewauth
