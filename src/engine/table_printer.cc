#include "engine/table_printer.h"

#include <algorithm>
#include <sstream>

namespace viewauth {

std::string PrintTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows,
                       const std::string& caption) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t i = 0; i < header.size(); ++i) {
    widths[i] = header[i].size();
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  if (!caption.empty()) out << caption << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << " " << cell << std::string(widths[i] - cell.size(), ' ')
          << " |";
    }
    out << "\n";
  };
  emit_row(header);
  out << "|";
  for (size_t width : widths) {
    out << std::string(width + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows) emit_row(row);
  return out.str();
}

std::string PrintRelation(const Relation& relation,
                          const TablePrintOptions& options) {
  std::vector<std::string> header;
  for (const Attribute& attr : relation.schema().attributes()) {
    header.push_back(attr.name);
  }
  std::vector<Tuple> data =
      options.sorted ? relation.SortedRows() : relation.rows();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(data.size());
  for (const Tuple& tuple : data) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(tuple.arity()));
    for (const Value& value : tuple.values()) {
      if (value.is_null()) {
        row.push_back(options.null_text);
      } else if (value.is_string()) {
        row.push_back(value.string_value());  // raw, no quoting
      } else {
        row.push_back(value.ToDisplayString(options.thousands_separators));
      }
    }
    rows.push_back(std::move(row));
  }
  return PrintTable(header, rows, options.caption);
}

}  // namespace viewauth
