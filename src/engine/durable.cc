#include "engine/durable.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "common/crc32.h"
#include "common/str_util.h"
#include "parser/parser.h"

namespace viewauth {

namespace {

constexpr std::string_view kMagic = "#viewauth-log v2\n";

// Retrieves and analyses never touch the log: they are clean
// non-mutations even when the execution governor aborts them mid-scan
// (deadline, budget, cancellation, admission shed), so a governed abort
// can neither append a partial record nor flip the log into degraded
// mode. tests/governor_test.cc asserts this.
bool IsMutating(const Statement& stmt) {
  return !std::holds_alternative<RetrieveStmt>(stmt) &&
         !std::holds_alternative<AnalyzeStmt>(stmt);
}

// "@<seq> <len> <crc32-hex>\n<payload>\n"
std::string FrameRecord(uint64_t seq, std::string_view payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "@%llu %zu %08x\n",
                static_cast<unsigned long long>(seq), payload.size(),
                Crc32(payload));
  std::string record(header);
  record.append(payload);
  record.push_back('\n');
  return record;
}

// Parses "@<seq> <len> <8-hex-crc>" (the header line without its '\n').
bool ParseRecordHeader(std::string_view line, uint64_t* seq, uint64_t* len,
                       uint32_t* crc) {
  if (line.size() < 5 || line[0] != '@') return false;
  const char* end = line.data() + line.size();
  auto seq_result = std::from_chars(line.data() + 1, end, *seq, 10);
  if (seq_result.ec != std::errc() || seq_result.ptr == end ||
      *seq_result.ptr != ' ') {
    return false;
  }
  auto len_result = std::from_chars(seq_result.ptr + 1, end, *len, 10);
  if (len_result.ec != std::errc() || len_result.ptr == end ||
      *len_result.ptr != ' ') {
    return false;
  }
  const char* crc_begin = len_result.ptr + 1;
  if (end - crc_begin != 8) return false;
  auto crc_result = std::from_chars(crc_begin, end, *crc, 16);
  return crc_result.ec == std::errc() && crc_result.ptr == end;
}

struct FramedScan {
  std::vector<std::string> payloads;
  uint64_t last_seq = 0;
  // Offset of the first damaged byte; file size when the log is clean.
  size_t valid_bytes = 0;
  bool damaged = false;
  // True when no fully valid record follows the damage (the crash-
  // truncation shape); false means interior corruption.
  bool damage_is_tail = true;
  uint64_t damaged_records = 0;
  std::string detail;
};

FramedScan ScanFramedLog(std::string_view contents) {
  FramedScan scan;
  size_t pos = kMagic.size();
  scan.valid_bytes = pos;
  uint64_t expected_seq = 0;  // 0 = first record establishes the base
  auto damage = [&](std::string detail) {
    scan.damaged = true;
    scan.detail = std::move(detail);
  };
  while (pos < contents.size()) {
    size_t header_end = contents.find('\n', pos);
    if (header_end == std::string_view::npos) {
      damage("truncated record header at offset " + std::to_string(pos));
      break;
    }
    uint64_t seq = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!ParseRecordHeader(contents.substr(pos, header_end - pos), &seq,
                           &len, &crc)) {
      damage("malformed record header at offset " + std::to_string(pos));
      break;
    }
    size_t payload_begin = header_end + 1;
    size_t avail = contents.size() - payload_begin;
    if (len >= avail) {  // the payload plus its '\n' terminator is cut off
      damage("truncated payload for record seq " + std::to_string(seq));
      break;
    }
    std::string_view payload = contents.substr(payload_begin, len);
    if (contents[payload_begin + len] != '\n') {
      damage("missing terminator for record seq " + std::to_string(seq));
      break;
    }
    if (Crc32(payload) != crc) {
      damage("checksum mismatch for record seq " + std::to_string(seq));
      break;
    }
    if (expected_seq != 0 && seq != expected_seq) {
      damage("sequence gap: expected seq " + std::to_string(expected_seq) +
             ", found " + std::to_string(seq));
      break;
    }
    scan.payloads.emplace_back(payload);
    scan.last_seq = seq;
    expected_seq = seq + 1;
    pos = payload_begin + len + 1;
    scan.valid_bytes = pos;
  }
  if (!scan.damaged) return scan;

  // Classify the damage: if any fully valid record follows it, this is
  // interior corruption (unsalvageable); otherwise it is a torn tail.
  // Along the way, count record headers in the damaged region so the
  // report can say how many records are being dropped.
  uint64_t header_like = 0;
  bool later_valid_record = false;
  for (size_t p = scan.valid_bytes; p < contents.size(); ++p) {
    bool at_line_start = p == scan.valid_bytes || contents[p - 1] == '\n';
    if (!at_line_start || contents[p] != '@') continue;
    ++header_like;
    size_t header_end = contents.find('\n', p);
    if (header_end == std::string_view::npos) continue;
    uint64_t seq = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!ParseRecordHeader(contents.substr(p, header_end - p), &seq, &len,
                           &crc)) {
      continue;
    }
    size_t payload_begin = header_end + 1;
    if (payload_begin > contents.size() ||
        len >= contents.size() - payload_begin) {
      continue;
    }
    if (contents[payload_begin + len] != '\n') continue;
    if (Crc32(contents.substr(payload_begin, len)) != crc) continue;
    later_valid_record = true;
    break;
  }
  scan.damage_is_tail = !later_valid_record;
  scan.damaged_records = header_like == 0 ? 1 : header_like;
  return scan;
}

}  // namespace

std::string_view LogFormatToString(LogFormat format) {
  switch (format) {
    case LogFormat::kLegacyText:
      return "legacy-text";
    case LogFormat::kFramedV2:
      return "framed-v2";
  }
  return "unknown";
}

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "format=" << LogFormatToString(format) << " records="
      << records_replayed;
  if (format == LogFormat::kFramedV2) out << " last_seq=" << last_good_seq;
  if (salvaged) {
    out << " salvaged: dropped " << dropped_records << " record"
        << (dropped_records == 1 ? "" : "s") << " (" << dropped_bytes
        << " bytes): " << detail;
  }
  return out.str();
}

std::string DurableStats::ToString() const {
  std::ostringstream out;
  out << "durability:\n"
      << "  format              " << LogFormatToString(format) << "\n"
      << "  state               " << (degraded ? "DEGRADED" : "ok") << "\n"
      << "  appends             " << appends << " (" << append_bytes
      << " bytes)\n"
      << "  compactions         " << compactions << "\n"
      << "  log bytes           " << log_bytes << "\n"
      << "  recovery            " << recovery.ToString() << "\n";
  return out.str();
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& path) {
  return Open(path, DurableOptions{});
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& path, const DurableOptions& options) {
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();

  // A crash between writing <path>.tmp and the rename commit leaves a
  // stale temp file behind; it was never the live log, so drop it.
  const std::string tmp_path = path + ".tmp";
  if (fs->FileExists(tmp_path)) (void)fs->RemoveFile(tmp_path);

  std::string contents;
  if (fs->FileExists(path)) {
    VIEWAUTH_ASSIGN_OR_RETURN(contents, fs->ReadFileToString(path));
  }

  std::unique_ptr<DurableEngine> durable(new DurableEngine(
      path, options, fs, std::make_unique<Engine>()));
  durable->options_.fs = fs;
  const bool salvage = options.recovery == RecoveryMode::kSalvage;
  bool needs_magic = false;

  if (contents.empty()) {
    // Fresh (or zero-length) log: initialize as framed V2.
    durable->format_ = LogFormat::kFramedV2;
    needs_magic = true;
  } else if (StartsWith(contents, kMagic)) {
    VIEWAUTH_RETURN_NOT_OK(durable->RecoverFramed(contents));
  } else if (StartsWith(kMagic, contents)) {
    // The file is a proper prefix of the magic line: a crash during log
    // creation. Nothing was ever committed.
    if (!salvage) {
      return Status::Internal(
          "statement log '" + path +
          "' has a truncated header (reopen in salvage mode to reset it)");
    }
    VIEWAUTH_RETURN_NOT_OK(fs->TruncateFile(path, 0));
    durable->format_ = LogFormat::kFramedV2;
    durable->recovery_.salvaged = true;
    durable->recovery_.dropped_bytes = contents.size();
    durable->recovery_.detail = "truncated log header";
    needs_magic = true;
  } else if (contents[0] == '#') {
    return Status::Internal("statement log '" + path +
                            "' has an unrecognized header line");
  } else {
    VIEWAUTH_RETURN_NOT_OK(durable->RecoverLegacy(contents));
  }
  durable->recovery_.format = durable->format_;

  VIEWAUTH_ASSIGN_OR_RETURN(
      durable->log_, fs->NewWritableFile(path, WriteMode::kAppend));
  if (needs_magic) {
    VIEWAUTH_RETURN_NOT_OK(durable->log_->Append(kMagic));
    if (durable->options_.sync_every_append) {
      VIEWAUTH_RETURN_NOT_OK(durable->log_->Sync());
      // The log may have just been created: fsync the directory so the
      // file itself (not only its contents) survives a crash. Without
      // this, records acknowledged as durable could vanish with the
      // directory entry and the next Open would see a fresh empty log.
      VIEWAUTH_RETURN_NOT_OK(fs->SyncDirectoryOf(path));
    }
    durable->log_bytes_ = kMagic.size();
  }
  return durable;
}

Status DurableEngine::RecoverFramed(const std::string& contents) {
  format_ = LogFormat::kFramedV2;
  FramedScan scan = ScanFramedLog(contents);
  if (scan.damaged) {
    if (!scan.damage_is_tail) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption (" + scan.detail +
                              " with valid records after it); refusing to "
                              "drop interior records in any recovery mode");
    }
    if (options_.recovery == RecoveryMode::kStrict) {
      return Status::Internal(
          "statement log '" + path_ + "' has a damaged tail: " +
          scan.detail + " (reopen in salvage mode to truncate it)");
    }
  }
  // Replay before touching the file: a record that fails to parse or
  // replay must fail the Open without side effects on disk.
  for (size_t i = 0; i < scan.payloads.size(); ++i) {
    auto stmt = ParseStatement(scan.payloads[i]);
    Status executed =
        stmt.ok() ? engine_->ExecuteParsed(*stmt).status() : stmt.status();
    if (!executed.ok()) {
      return Status::Internal(
          "statement log '" + path_ + "' record " + std::to_string(i + 1) +
          " does not replay cleanly: " + executed.ToString());
    }
    durable_statements_.push_back(StatementToString(*stmt));
  }
  if (scan.damaged) {
    VIEWAUTH_RETURN_NOT_OK(fs_->TruncateFile(path_, scan.valid_bytes));
    recovery_.salvaged = true;
    recovery_.dropped_records = scan.damaged_records;
    recovery_.dropped_bytes = contents.size() - scan.valid_bytes;
    recovery_.detail = scan.detail;
  }
  recovery_.records_replayed = scan.payloads.size();
  recovery_.last_good_seq = scan.last_seq;
  next_seq_ = scan.payloads.empty() ? 1 : scan.last_seq + 1;
  log_bytes_ = scan.valid_bytes;
  return Status::OK();
}

Status DurableEngine::RecoverLegacy(const std::string& contents) {
  format_ = LogFormat::kLegacyText;
  std::string effective = contents;
  bool salvaged_tail = false;
  auto parsed = ParseProgram(effective);
  if (!parsed.ok()) {
    // A torn append leaves a final line without its '\n'. If dropping
    // that partial line yields a clean log, the damage is a pure tail;
    // anything else (including damage in newline-terminated content) is
    // interior corruption.
    bool tail_candidate = !effective.empty() && effective.back() != '\n';
    if (options_.recovery == RecoveryMode::kStrict) {
      return Status::Internal(
          "statement log '" + path_ + "' does not replay cleanly: " +
          parsed.status().ToString() +
          (tail_candidate ? " (reopen in salvage mode to drop the torn "
                            "final line)"
                          : ""));
    }
    if (!tail_candidate) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption: " +
                              parsed.status().ToString());
    }
    size_t cut = effective.find_last_of('\n');
    effective = cut == std::string::npos ? std::string()
                                         : effective.substr(0, cut + 1);
    parsed = ParseProgram(effective);
    if (!parsed.ok()) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption: " +
                              parsed.status().ToString());
    }
    salvaged_tail = true;
  }
  // Replay before touching the file: a statement that fails to replay
  // must fail the Open without side effects on disk.
  for (const Statement& stmt : *parsed) {
    auto executed = engine_->ExecuteParsed(stmt);
    if (!executed.ok()) {
      return Status::Internal("statement log '" + path_ +
                              "' does not replay cleanly: " +
                              executed.status().ToString());
    }
    durable_statements_.push_back(StatementToString(stmt));
  }
  if (salvaged_tail) {
    VIEWAUTH_RETURN_NOT_OK(fs_->TruncateFile(path_, effective.size()));
    recovery_.salvaged = true;
    recovery_.dropped_records = 1;
    recovery_.dropped_bytes = contents.size() - effective.size();
    recovery_.detail = "torn final line";
  }
  recovery_.records_replayed = parsed->size();
  log_bytes_ = effective.size();
  return Status::OK();
}

Status DurableEngine::AppendRecord(const std::string& statement_text) {
  if (log_ == nullptr) {
    return Status::Internal("statement log '" + path_ + "' is closed");
  }
  std::string record = format_ == LogFormat::kLegacyText
                           ? statement_text + "\n"
                           : FrameRecord(next_seq_, statement_text);
  VIEWAUTH_RETURN_NOT_OK(log_->Append(record));
  if (options_.sync_every_append) VIEWAUTH_RETURN_NOT_OK(log_->Sync());
  if (format_ == LogFormat::kFramedV2) ++next_seq_;
  log_bytes_ += record.size();
  ++appends_;
  append_bytes_ += record.size();
  return Status::OK();
}

void DurableEngine::EnterDegraded(const std::string& reason, bool rollback) {
  degraded_ = true;
  degraded_reason_ = reason;
  if (log_ != nullptr) {
    (void)log_->Close();
    log_.reset();
  }
  // Best effort: clip any torn bytes so the on-disk log ends at the
  // durable prefix. If the device is gone this fails silently and the
  // next Open salvages instead.
  (void)fs_->TruncateFile(path_, log_bytes_);
  if (!rollback) return;
  // The failed mutation already executed in memory; rebuild the engine
  // from the durable statement prefix so it is not visible as committed.
  auto fresh = std::make_unique<Engine>();
  fresh->options() = engine_->options();
  fresh->SetSessionUser(engine_->session_user());
  auto replay = fresh->ExecuteScript(Join(durable_statements_, "\n"));
  if (replay.ok()) {
    engine_ = std::move(fresh);
  } else {
    degraded_reason_ += "; in-memory rollback failed (" +
                        replay.status().ToString() +
                        "), the uncommitted mutation may remain visible";
  }
}

Result<std::string> DurableEngine::Execute(
    const std::string& statement_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement_text));
  return ExecuteParsedDurable(stmt);
}

Result<std::string> DurableEngine::ExecuteScript(
    const std::string& script_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                            ParseProgram(script_text));
  std::ostringstream out;
  for (const Statement& stmt : statements) {
    VIEWAUTH_ASSIGN_OR_RETURN(std::string output,
                              ExecuteParsedDurable(stmt));
    if (!output.empty()) out << output << "\n";
  }
  return out.str();
}

Result<std::string> DurableEngine::ExecuteParsedDurable(
    const Statement& stmt) {
  const bool mutating = IsMutating(stmt);
  std::lock_guard<std::mutex> lock(mu_);
  if (mutating && degraded_) {
    return Status::Unavailable("statement log '" + path_ +
                               "' is in read-only degraded mode: " +
                               degraded_reason_);
  }
  VIEWAUTH_ASSIGN_OR_RETURN(std::string output,
                            engine_->ExecuteParsed(stmt));
  if (mutating) {
    const std::string line = StatementToString(stmt);
    Status appended = AppendRecord(line);
    if (!appended.ok()) {
      EnterDegraded("log append failed: " + appended.ToString(),
                    /*rollback=*/true);
      return Status::Unavailable(
          "mutation was not committed (log append failed: " +
          appended.ToString() + "); the engine is now read-only");
    }
    durable_statements_.push_back(line);
  }
  return output;
}

Status DurableEngine::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded_) {
    return Status::Unavailable("statement log '" + path_ +
                               "' is in read-only degraded mode: " +
                               degraded_reason_);
  }
  VIEWAUTH_ASSIGN_OR_RETURN(std::string script, engine_->DumpScript());
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                            ParseProgram(script));
  std::string buffer(kMagic);
  std::vector<std::string> lines;
  lines.reserve(statements.size());
  uint64_t seq = 0;
  for (const Statement& stmt : statements) {
    std::string line = StatementToString(stmt);
    buffer += FrameRecord(++seq, line);
    lines.push_back(std::move(line));
  }

  // Stage the replacement; any failure here leaves the original log and
  // the open append handle untouched.
  const std::string tmp_path = path_ + ".tmp";
  Status written;
  {
    auto file = fs_->NewWritableFile(tmp_path, WriteMode::kTruncate);
    if (!file.ok()) {
      return Status::Internal("compaction of '" + path_ +
                              "' failed to stage: " +
                              file.status().ToString());
    }
    written = (*file)->Append(buffer);
    if (written.ok()) written = (*file)->Sync();
    Status closed = (*file)->Close();
    if (written.ok()) written = closed;
  }
  if (!written.ok()) {
    (void)fs_->RemoveFile(tmp_path);
    return Status::Internal("compaction of '" + path_ + "' failed: " +
                            written.ToString());
  }
  Status renamed = fs_->RenameFile(tmp_path, path_);
  if (!renamed.ok()) {
    (void)fs_->RemoveFile(tmp_path);
    return Status::Internal("compaction of '" + path_ +
                            "' failed to commit: " + renamed.ToString());
  }

  // The rename committed: the compact log is the live one. The old
  // append handle points at the unlinked previous file; swap it out.
  if (log_ != nullptr) (void)log_->Close();
  log_.reset();
  durable_statements_ = std::move(lines);
  next_seq_ = seq + 1;
  format_ = LogFormat::kFramedV2;
  log_bytes_ = buffer.size();
  ++compactions_;
  auto reopened = fs_->NewWritableFile(path_, WriteMode::kAppend);
  if (!reopened.ok()) {
    // The compacted state is fully durable, but nothing more can be
    // appended: fail stop without rolling back.
    EnterDegraded("cannot reopen statement log after compaction: " +
                      reopened.status().ToString(),
                  /*rollback=*/false);
    return Status::Unavailable(
        "compaction committed but the log could not be reopened; the "
        "engine is now read-only: " + reopened.status().ToString());
  }
  log_ = std::move(*reopened);
  return Status::OK();
}

bool DurableEngine::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

DurableStats DurableEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurableStats stats;
  stats.format = format_;
  stats.degraded = degraded_;
  stats.appends = appends_;
  stats.append_bytes = append_bytes_;
  stats.compactions = compactions_;
  stats.log_bytes = log_bytes_;
  stats.recovery = recovery_;
  return stats;
}

}  // namespace viewauth
