#include "engine/durable.h"

#include <sstream>

#include "parser/parser.h"

namespace viewauth {

namespace {

bool IsMutating(const Statement& stmt) {
  return !std::holds_alternative<RetrieveStmt>(stmt) &&
         !std::holds_alternative<AnalyzeStmt>(stmt);
}

}  // namespace

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& path) {
  auto engine = std::make_unique<Engine>();

  // Replay an existing log, if any.
  {
    std::ifstream in(path);
    if (in.good()) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string contents = buffer.str();
      if (!contents.empty()) {
        auto replay = engine->ExecuteScript(contents);
        if (!replay.ok()) {
          return Status::Internal("statement log '" + path +
                                  "' does not replay cleanly: " +
                                  replay.status().ToString());
        }
      }
    }
  }

  std::unique_ptr<DurableEngine> durable(
      new DurableEngine(path, std::move(engine)));
  durable->log_.open(path, std::ios::app);
  if (!durable->log_.good()) {
    return Status::Internal("cannot open statement log '" + path +
                            "' for writing");
  }
  return durable;
}

Status DurableEngine::AppendToLog(const std::string& line) {
  log_ << line << "\n";
  log_.flush();
  if (!log_.good()) {
    return Status::Internal("write to statement log '" + path_ +
                            "' failed");
  }
  return Status::OK();
}

Result<std::string> DurableEngine::Execute(
    const std::string& statement_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement_text));
  VIEWAUTH_ASSIGN_OR_RETURN(std::string output,
                            engine_->ExecuteParsed(stmt));
  if (IsMutating(stmt)) {
    VIEWAUTH_RETURN_NOT_OK(AppendToLog(StatementToString(stmt)));
  }
  return output;
}

Status DurableEngine::Compact() {
  VIEWAUTH_ASSIGN_OR_RETURN(std::string script, engine_->DumpScript());
  log_.close();
  std::ofstream rewritten(path_, std::ios::trunc);
  rewritten << script;
  rewritten.flush();
  if (!rewritten.good()) {
    return Status::Internal("compaction of '" + path_ + "' failed");
  }
  rewritten.close();
  log_.open(path_, std::ios::app);
  if (!log_.good()) {
    return Status::Internal("cannot reopen statement log '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace viewauth
