#include "engine/durable.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <thread>

#include "common/crc32.h"
#include "common/str_util.h"
#include "parser/parser.h"

namespace viewauth {

namespace {

constexpr std::string_view kMagicV2 = "#viewauth-log v2\n";
constexpr std::string_view kMagicV3 = "#viewauth-log v3\n";

// Retrieves and analyses never touch the log: they are clean
// non-mutations even when the execution governor aborts them mid-scan
// (deadline, budget, cancellation, admission shed), so a governed abort
// can neither append a partial record nor flip the log into degraded
// mode. tests/governor_test.cc asserts this.
bool IsMutating(const Statement& stmt) {
  return !std::holds_alternative<RetrieveStmt>(stmt) &&
         !std::holds_alternative<AnalyzeStmt>(stmt);
}

// "@<seq> <len> <crc32-hex>\n<payload>\n"
std::string FrameRecord(uint64_t seq, std::string_view payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "@%llu %zu %08x\n",
                static_cast<unsigned long long>(seq), payload.size(),
                Crc32(payload));
  std::string record(header);
  record.append(payload);
  record.push_back('\n');
  return record;
}

// "=<first> <last> <crc32-hex>\n" — commits records first..last. The CRC
// covers the decimal "<first> <last>" text, so a torn or bit-flipped
// marker can never commit a batch it does not describe.
std::string FrameMarker(uint64_t first, uint64_t last) {
  char body[48];
  std::snprintf(body, sizeof(body), "%llu %llu",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(last));
  char line[64];
  std::snprintf(line, sizeof(line), "=%s %08x\n", body,
                Crc32(std::string_view(body)));
  return std::string(line);
}

// Parses "@<seq> <len> <8-hex-crc>" (the header line without its '\n').
bool ParseRecordHeader(std::string_view line, uint64_t* seq, uint64_t* len,
                       uint32_t* crc) {
  if (line.size() < 5 || line[0] != '@') return false;
  const char* end = line.data() + line.size();
  auto seq_result = std::from_chars(line.data() + 1, end, *seq, 10);
  if (seq_result.ec != std::errc() || seq_result.ptr == end ||
      *seq_result.ptr != ' ') {
    return false;
  }
  auto len_result = std::from_chars(seq_result.ptr + 1, end, *len, 10);
  if (len_result.ec != std::errc() || len_result.ptr == end ||
      *len_result.ptr != ' ') {
    return false;
  }
  const char* crc_begin = len_result.ptr + 1;
  if (end - crc_begin != 8) return false;
  auto crc_result = std::from_chars(crc_begin, end, *crc, 16);
  return crc_result.ec == std::errc() && crc_result.ptr == end;
}

// Parses "=<first> <last> <8-hex-crc>" and verifies the CRC.
bool ParseMarkerLine(std::string_view line, uint64_t* first, uint64_t* last) {
  if (line.size() < 5 || line[0] != '=') return false;
  const char* end = line.data() + line.size();
  auto first_result = std::from_chars(line.data() + 1, end, *first, 10);
  if (first_result.ec != std::errc() || first_result.ptr == end ||
      *first_result.ptr != ' ') {
    return false;
  }
  auto last_result = std::from_chars(first_result.ptr + 1, end, *last, 10);
  if (last_result.ec != std::errc() || last_result.ptr == end ||
      *last_result.ptr != ' ') {
    return false;
  }
  const char* crc_begin = last_result.ptr + 1;
  if (end - crc_begin != 8) return false;
  uint32_t crc = 0;
  auto crc_result = std::from_chars(crc_begin, end, crc, 16);
  if (crc_result.ec != std::errc() || crc_result.ptr != end) return false;
  std::string_view body(line.data() + 1,
                        static_cast<size_t>(crc_begin - line.data()) - 2);
  return Crc32(body) == crc;
}

struct FramedScan {
  // Committed payloads only (for a marker log, records behind a valid
  // marker; for a V2 log, every valid record).
  std::vector<std::string> payloads;
  uint64_t last_seq = 0;
  // Offset of the last commit boundary; file size when the log is clean.
  size_t valid_bytes = 0;
  // Offset where damage was detected (== file size for a clean scan or a
  // pure uncommitted tail).
  size_t damage_pos = 0;
  bool damaged = false;
  // True when no fully valid record or marker follows the damage (the
  // crash-truncation shape); false means interior corruption.
  bool damage_is_tail = true;
  uint64_t damaged_records = 0;
  std::string detail;
};

FramedScan ScanFramedLog(std::string_view contents, size_t magic_size,
                         bool with_markers) {
  FramedScan scan;
  size_t pos = magic_size;
  scan.valid_bytes = pos;
  uint64_t expected_seq = 0;  // 0 = first record establishes the base
  // Records appended since the last marker; provisional until committed.
  std::vector<std::string> staged;
  uint64_t staged_first = 0;
  uint64_t staged_last = 0;
  auto damage = [&](std::string detail) {
    scan.damaged = true;
    scan.damage_pos = pos;
    scan.detail = std::move(detail);
  };
  while (pos < contents.size()) {
    if (with_markers && contents[pos] == '=') {
      size_t line_end = contents.find('\n', pos);
      if (line_end == std::string_view::npos) {
        damage("truncated commit marker at offset " + std::to_string(pos));
        break;
      }
      uint64_t first = 0;
      uint64_t last = 0;
      if (!ParseMarkerLine(contents.substr(pos, line_end - pos), &first,
                           &last)) {
        damage("malformed commit marker at offset " + std::to_string(pos));
        break;
      }
      if (staged.empty() || first != staged_first || last != staged_last) {
        damage("commit marker [" + std::to_string(first) + ".." +
               std::to_string(last) + "] does not match the staged records");
        break;
      }
      for (std::string& payload : staged) {
        scan.payloads.push_back(std::move(payload));
      }
      staged.clear();
      scan.last_seq = last;
      pos = line_end + 1;
      scan.valid_bytes = pos;
      continue;
    }
    size_t header_end = contents.find('\n', pos);
    if (header_end == std::string_view::npos) {
      damage("truncated record header at offset " + std::to_string(pos));
      break;
    }
    uint64_t seq = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!ParseRecordHeader(contents.substr(pos, header_end - pos), &seq,
                           &len, &crc)) {
      damage("malformed record header at offset " + std::to_string(pos));
      break;
    }
    size_t payload_begin = header_end + 1;
    size_t avail = contents.size() - payload_begin;
    if (len >= avail) {  // the payload plus its '\n' terminator is cut off
      damage("truncated payload for record seq " + std::to_string(seq));
      break;
    }
    std::string_view payload = contents.substr(payload_begin, len);
    if (contents[payload_begin + len] != '\n') {
      damage("missing terminator for record seq " + std::to_string(seq));
      break;
    }
    if (Crc32(payload) != crc) {
      damage("checksum mismatch for record seq " + std::to_string(seq));
      break;
    }
    if (expected_seq != 0 && seq != expected_seq) {
      damage("sequence gap: expected seq " + std::to_string(expected_seq) +
             ", found " + std::to_string(seq));
      break;
    }
    if (with_markers) {
      if (staged.empty()) staged_first = seq;
      staged_last = seq;
      staged.emplace_back(payload);
      pos = payload_begin + len + 1;
      // valid_bytes advances only at a commit boundary.
    } else {
      scan.payloads.emplace_back(payload);
      scan.last_seq = seq;
      pos = payload_begin + len + 1;
      scan.valid_bytes = pos;
    }
    expected_seq = seq + 1;
  }
  if (!scan.damaged && !staged.empty()) {
    // Clean EOF mid-batch: the appended-but-never-committed shape (crash
    // between the batch append and its marker becoming durable). Always
    // a tail — no committed content follows staged records.
    scan.damaged = true;
    scan.damage_pos = contents.size();
    scan.damage_is_tail = true;
    scan.damaged_records = staged.size();
    scan.detail = "uncommitted batch tail: " +
                  std::to_string(staged.size()) +
                  " record(s) without a commit marker";
    return scan;
  }
  if (!scan.damaged) return scan;

  // Classify the damage: if any fully valid record or marker follows it,
  // this is interior corruption (unsalvageable); otherwise it is a torn
  // tail. Along the way, count record headers in the dropped region
  // (everything past the last commit boundary, staged records included)
  // so the report can say how many records are being dropped.
  uint64_t header_like = staged.size();
  bool later_valid_record = false;
  for (size_t p = scan.damage_pos; p < contents.size(); ++p) {
    bool at_line_start = p == scan.damage_pos || contents[p - 1] == '\n';
    if (!at_line_start) continue;
    if (with_markers && contents[p] == '=') {
      size_t line_end = contents.find('\n', p);
      if (line_end == std::string_view::npos) continue;
      uint64_t first = 0;
      uint64_t last = 0;
      if (ParseMarkerLine(contents.substr(p, line_end - p), &first, &last)) {
        later_valid_record = true;
        break;
      }
      continue;
    }
    if (contents[p] != '@') continue;
    ++header_like;
    size_t header_end = contents.find('\n', p);
    if (header_end == std::string_view::npos) continue;
    uint64_t seq = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!ParseRecordHeader(contents.substr(p, header_end - p), &seq, &len,
                           &crc)) {
      continue;
    }
    size_t payload_begin = header_end + 1;
    if (payload_begin > contents.size() ||
        len >= contents.size() - payload_begin) {
      continue;
    }
    if (contents[payload_begin + len] != '\n') continue;
    if (Crc32(contents.substr(payload_begin, len)) != crc) continue;
    later_valid_record = true;
    break;
  }
  scan.damage_is_tail = !later_valid_record;
  scan.damaged_records = header_like == 0 ? 1 : header_like;
  return scan;
}

}  // namespace

std::string_view LogFormatToString(LogFormat format) {
  switch (format) {
    case LogFormat::kLegacyText:
      return "legacy-text";
    case LogFormat::kFramedV2:
      return "framed-v2";
    case LogFormat::kFramedV3:
      return "framed-v3";
  }
  return "unknown";
}

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "format=" << LogFormatToString(format) << " records="
      << records_replayed;
  if (format != LogFormat::kLegacyText) out << " last_seq=" << last_good_seq;
  if (salvaged) {
    out << " salvaged: dropped " << dropped_records << " record"
        << (dropped_records == 1 ? "" : "s") << " (" << dropped_bytes
        << " bytes): " << detail;
  }
  return out.str();
}

std::string DurableStats::ToString() const {
  std::ostringstream out;
  out << "durability:\n"
      << "  format              " << LogFormatToString(format) << "\n"
      << "  state               " << (degraded ? "DEGRADED" : "ok") << "\n"
      << "  appends             " << appends << " (" << append_bytes
      << " bytes)\n"
      << "  commit batches      " << commit_batches;
  if (commit_batches > 0) {
    out << " (" << std::fixed << std::setprecision(1)
        << static_cast<double>(batched_records) /
               static_cast<double>(commit_batches)
        << " frames/batch, " << fsyncs_saved << " fsyncs saved)";
  }
  out << "\n"
      << "  batch aborts        " << batch_aborts << "\n"
      << "  transient retries   " << transient_retries << " ("
      << transient_recoveries << " recovered)\n"
      << "  snapshots live      " << snapshots_live << "\n"
      << "  compactions         " << compactions << "\n"
      << "  log bytes           " << log_bytes << "\n"
      << "  recovery            " << recovery.ToString() << "\n";
  return out.str();
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& path) {
  return Open(path, DurableOptions{});
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& path, const DurableOptions& options) {
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();

  // A crash between writing <path>.tmp and the rename commit leaves a
  // stale temp file behind; it was never the live log, so drop it.
  const std::string tmp_path = path + ".tmp";
  if (fs->FileExists(tmp_path)) (void)fs->RemoveFile(tmp_path);

  std::string contents;
  if (fs->FileExists(path)) {
    VIEWAUTH_ASSIGN_OR_RETURN(contents, fs->ReadFileToString(path));
  }

  std::unique_ptr<DurableEngine> durable(new DurableEngine(
      path, options, fs, std::make_unique<Engine>()));
  durable->options_.fs = fs;
  const bool salvage = options.recovery == RecoveryMode::kSalvage;
  bool needs_magic = false;

  if (contents.empty()) {
    // Fresh (or zero-length) log: initialize as framed V3.
    durable->format_ = LogFormat::kFramedV3;
    needs_magic = true;
  } else if (StartsWith(contents, kMagicV3)) {
    VIEWAUTH_RETURN_NOT_OK(
        durable->RecoverFramed(contents, LogFormat::kFramedV3));
  } else if (StartsWith(contents, kMagicV2)) {
    VIEWAUTH_RETURN_NOT_OK(
        durable->RecoverFramed(contents, LogFormat::kFramedV2));
  } else if (StartsWith(kMagicV3, contents) || StartsWith(kMagicV2, contents)) {
    // The file is a proper prefix of a magic line: a crash during log
    // creation. Nothing was ever committed.
    if (!salvage) {
      return Status::Internal(
          "statement log '" + path +
          "' has a truncated header (reopen in salvage mode to reset it)");
    }
    VIEWAUTH_RETURN_NOT_OK(fs->TruncateFile(path, 0));
    durable->format_ = LogFormat::kFramedV3;
    durable->recovery_.salvaged = true;
    durable->recovery_.dropped_bytes = contents.size();
    durable->recovery_.detail = "truncated log header";
    needs_magic = true;
  } else if (contents[0] == '#') {
    return Status::Internal("statement log '" + path +
                            "' has an unrecognized header line");
  } else {
    VIEWAUTH_RETURN_NOT_OK(durable->RecoverLegacy(contents));
  }
  durable->recovery_.format = durable->format_;

  VIEWAUTH_ASSIGN_OR_RETURN(
      durable->log_, fs->NewWritableFile(path, WriteMode::kAppend));
  if (needs_magic) {
    VIEWAUTH_RETURN_NOT_OK(durable->log_->Append(kMagicV3));
    if (durable->options_.sync_every_append) {
      VIEWAUTH_RETURN_NOT_OK(durable->log_->Sync());
      // The log may have just been created: fsync the directory so the
      // file itself (not only its contents) survives a crash. Without
      // this, records acknowledged as durable could vanish with the
      // directory entry and the next Open would see a fresh empty log.
      VIEWAUTH_RETURN_NOT_OK(fs->SyncDirectoryOf(path));
    }
    durable->log_bytes_ = kMagicV3.size();
  }
  // From here on, mutations stage privately and publish to readers only
  // once their commit (batch) is durable — a retrieve can never observe
  // an acknowledged-then-rolled-back state.
  durable->engine_->SetDeferPublication(true);
  return durable;
}

Status DurableEngine::RecoverFramed(const std::string& contents,
                                    LogFormat format) {
  format_ = format;
  const bool v3 = format == LogFormat::kFramedV3;
  FramedScan scan = ScanFramedLog(
      contents, v3 ? kMagicV3.size() : kMagicV2.size(), /*with_markers=*/v3);
  if (scan.damaged) {
    if (!scan.damage_is_tail) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption (" + scan.detail +
                              " with valid records after it); refusing to "
                              "drop interior records in any recovery mode");
    }
    if (options_.recovery == RecoveryMode::kStrict) {
      return Status::Internal(
          "statement log '" + path_ + "' has a damaged tail: " +
          scan.detail + " (reopen in salvage mode to truncate it)");
    }
  }
  // Replay before touching the file: a record that fails to parse or
  // replay must fail the Open without side effects on disk.
  for (size_t i = 0; i < scan.payloads.size(); ++i) {
    auto stmt = ParseStatement(scan.payloads[i]);
    Status executed =
        stmt.ok() ? engine_->ExecuteParsed(*stmt).status() : stmt.status();
    if (!executed.ok()) {
      return Status::Internal(
          "statement log '" + path_ + "' record " + std::to_string(i + 1) +
          " does not replay cleanly: " + executed.ToString());
    }
    durable_statements_.push_back(StatementToString(*stmt));
  }
  if (scan.damaged) {
    VIEWAUTH_RETURN_NOT_OK(fs_->TruncateFile(path_, scan.valid_bytes));
    recovery_.salvaged = true;
    recovery_.dropped_records = scan.damaged_records;
    recovery_.dropped_bytes = contents.size() - scan.valid_bytes;
    recovery_.detail = scan.detail;
  }
  recovery_.records_replayed = scan.payloads.size();
  recovery_.last_good_seq = scan.last_seq;
  next_seq_ = scan.payloads.empty() ? 1 : scan.last_seq + 1;
  log_bytes_ = scan.valid_bytes;
  return Status::OK();
}

Status DurableEngine::RecoverLegacy(const std::string& contents) {
  format_ = LogFormat::kLegacyText;
  std::string effective = contents;
  bool salvaged_tail = false;
  auto parsed = ParseProgram(effective);
  if (!parsed.ok()) {
    // A torn append leaves a final line without its '\n'. If dropping
    // that partial line yields a clean log, the damage is a pure tail;
    // anything else (including damage in newline-terminated content) is
    // interior corruption.
    bool tail_candidate = !effective.empty() && effective.back() != '\n';
    if (options_.recovery == RecoveryMode::kStrict) {
      return Status::Internal(
          "statement log '" + path_ + "' does not replay cleanly: " +
          parsed.status().ToString() +
          (tail_candidate ? " (reopen in salvage mode to drop the torn "
                            "final line)"
                          : ""));
    }
    if (!tail_candidate) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption: " +
                              parsed.status().ToString());
    }
    size_t cut = effective.find_last_of('\n');
    effective = cut == std::string::npos ? std::string()
                                         : effective.substr(0, cut + 1);
    parsed = ParseProgram(effective);
    if (!parsed.ok()) {
      return Status::Internal("statement log '" + path_ +
                              "' has interior corruption: " +
                              parsed.status().ToString());
    }
    salvaged_tail = true;
  }
  // Replay before touching the file: a statement that fails to replay
  // must fail the Open without side effects on disk.
  for (const Statement& stmt : *parsed) {
    auto executed = engine_->ExecuteParsed(stmt);
    if (!executed.ok()) {
      return Status::Internal("statement log '" + path_ +
                              "' does not replay cleanly: " +
                              executed.status().ToString());
    }
    durable_statements_.push_back(StatementToString(stmt));
  }
  if (salvaged_tail) {
    VIEWAUTH_RETURN_NOT_OK(fs_->TruncateFile(path_, effective.size()));
    recovery_.salvaged = true;
    recovery_.dropped_records = 1;
    recovery_.dropped_bytes = contents.size() - effective.size();
    recovery_.detail = "torn final line";
  }
  recovery_.records_replayed = parsed->size();
  log_bytes_ = effective.size();
  return Status::OK();
}

void DurableEngine::EnterDegradedLocked(const std::string& reason,
                                        bool rollback) {
  degraded_ = true;
  degraded_reason_ = reason;
  if (log_ != nullptr) {
    (void)log_->Close();
    log_.reset();
  }
  // Best effort: clip any torn or unfsynced bytes so the on-disk log
  // ends at the durable prefix. If the device is gone this fails
  // silently and the next Open salvages instead.
  (void)fs_->TruncateFile(path_, log_bytes_);
  pending_buffer_.clear();
  pending_lines_.clear();
  // The aborted mutations already executed against the engine's staged
  // head; discard it so they are not visible as committed. Readers keep
  // the last published (durable) snapshot.
  if (rollback) engine_->DiscardStaged();
  cv_.notify_all();
}

Result<std::string> DurableEngine::Execute(
    const std::string& statement_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement_text));
  return ExecuteParsedDurable(stmt);
}

Result<std::string> DurableEngine::ExecuteScript(
    const std::string& script_text) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                            ParseProgram(script_text));
  std::ostringstream out;
  for (const Statement& stmt : statements) {
    VIEWAUTH_ASSIGN_OR_RETURN(std::string output,
                              ExecuteParsedDurable(stmt));
    if (!output.empty()) out << output << "\n";
  }
  return out.str();
}

Result<std::string> DurableEngine::ExecuteParsed(const Statement& statement,
                                                 const ExecLimits* limits) {
  return ExecuteParsedDurable(statement, limits);
}

Result<std::string> DurableEngine::ExecuteParsedDurable(
    const Statement& stmt, const ExecLimits* limits) {
  if (!IsMutating(stmt)) {
    // Lock-free reader path: retrieves and analyses pin the engine's
    // published snapshot and never touch mu_, so they make progress even
    // while a mutation batch is parked on a slow (or blocked) fsync, and
    // they keep working in degraded mode against the last durable state.
    return engine_->ExecuteParsed(stmt, limits);
  }
  std::unique_lock<std::mutex> lock(mu_);
  // Entry gate: wait out compaction and any batch mid-fsync. Blocking
  // execution while a batch commits keeps the engine's staged head equal
  // to exactly the sealed batch, so a successful publish can never leak
  // a later, not-yet-durable mutation to readers.
  cv_.wait(lock, [this] { return !compacting_ && !committing_; });
  if (degraded_) {
    return Status::Unavailable("statement log '" + path_ +
                               "' is in read-only degraded mode: " +
                               degraded_reason_);
  }
  // Executes against the private head (deferred publication): readers
  // cannot see the mutation until its commit is durable.
  VIEWAUTH_ASSIGN_OR_RETURN(std::string output,
                            engine_->ExecuteParsed(stmt));
  const bool batched =
      format_ == LogFormat::kFramedV3 && options_.group_commit;
  return batched ? CommitBatchedLocked(lock, stmt, std::move(output))
                 : CommitSingleLocked(lock, stmt, std::move(output));
}

Status DurableEngine::AppendDurably(const std::string& data,
                                    uint64_t durable_offset, int* retries) {
  const int attempts = std::max(0, options_.transient_retry_attempts);
  Status last;
  for (int attempt = 0;; ++attempt) {
    if (log_ == nullptr) {
      return Status::Internal("statement log '" + path_ + "' is closed");
    }
    last = log_->Append(data);
    if (last.ok() && options_.sync_every_append) last = log_->Sync();
    if (last.ok()) return last;
    if (attempt >= attempts) return last;
    if (retries != nullptr) ++(*retries);
    // Clip whatever the failed attempt left behind — a torn append, or
    // pages a failed fsync may have dropped from cache — back to the
    // durable prefix, so the retry re-appends the whole commit onto a
    // known-good file. If even the clip fails the device is gone:
    // surface the original failure and let the caller fail-stop.
    Status clipped = fs_->TruncateFile(path_, durable_offset);
    if (!clipped.ok()) return last;
    long long backoff_us = options_.transient_retry_backoff_us;
    for (int i = 0; i < attempt; ++i) backoff_us *= 2;
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

Result<std::string> DurableEngine::CommitSingleLocked(
    std::unique_lock<std::mutex>& lock, const Statement& stmt,
    std::string output) {
  (void)lock;
  const std::string line = StatementToString(stmt);
  int retries = 0;
  Status appended = [&]() -> Status {
    std::string record;
    switch (format_) {
      case LogFormat::kLegacyText:
        record = line + "\n";
        break;
      case LogFormat::kFramedV2:
        record = FrameRecord(next_seq_, line);
        break;
      case LogFormat::kFramedV3:
        // A batch of one: record plus its commit marker, one fsync.
        record = FrameRecord(next_seq_, line);
        record += FrameMarker(next_seq_, next_seq_);
        break;
    }
    VIEWAUTH_RETURN_NOT_OK(AppendDurably(record, log_bytes_, &retries));
    if (format_ != LogFormat::kLegacyText) ++next_seq_;
    log_bytes_ += record.size();
    ++appends_;
    append_bytes_ += record.size();
    return Status::OK();
  }();
  transient_retries_ += retries;
  if (appended.ok() && retries > 0) ++transient_recoveries_;
  if (!appended.ok()) {
    EnterDegradedLocked("log append failed: " + appended.ToString(),
                        /*rollback=*/true);
    return Status::Unavailable(
        "mutation was not committed (log append failed: " +
        appended.ToString() + "); the engine is now read-only");
  }
  durable_statements_.push_back(line);
  engine_->PublishStaged();
  return output;
}

Result<std::string> DurableEngine::CommitBatchedLocked(
    std::unique_lock<std::mutex>& lock, const Statement& stmt,
    std::string output) {
  // Stage this mutation's frame into the forming batch.
  const std::string line = StatementToString(stmt);
  const uint64_t seq = next_seq_++;
  if (pending_lines_.empty()) pending_first_seq_ = seq;
  pending_buffer_ += FrameRecord(seq, line);
  pending_lines_.push_back(line);
  const uint64_t my_epoch = pending_epoch_;
  cv_.notify_all();

  for (;;) {
    if (resolved_epoch_ >= my_epoch) {
      if (durable_epoch_ >= my_epoch) return output;
      return Status::Unavailable(
          "mutation was not committed (its commit batch aborted: " +
          degraded_reason_ + "); the engine is now read-only");
    }
    if (degraded_) {
      // Defensive: an earlier failure drained the queue before this
      // batch could elect a leader.
      return Status::Unavailable(
          "mutation was not committed (statement log '" + path_ +
          "' entered degraded mode: " + degraded_reason_ + ")");
    }
    if (!leader_active_) {
      // Leader: gather stragglers, seal the batch, commit it with one
      // append and one fsync, then resolve every waiter.
      leader_active_ = true;
      WaitForStragglersLocked(lock);
      std::string batch = std::move(pending_buffer_);
      pending_buffer_.clear();
      std::vector<std::string> lines = std::move(pending_lines_);
      pending_lines_.clear();
      batch += FrameMarker(pending_first_seq_, next_seq_ - 1);
      const uint64_t epoch = pending_epoch_++;
      const uint64_t durable_offset = log_bytes_;
      committing_ = true;
      lock.unlock();
      // Leader exclusivity: only the leader touches log_ with mu_
      // released, and Compact() quiesces the queue before swapping the
      // handle, so this unlocked I/O never races.
      int retries = 0;
      Status written = AppendDurably(batch, durable_offset, &retries);
      lock.lock();
      committing_ = false;
      transient_retries_ += retries;
      if (written.ok() && retries > 0) ++transient_recoveries_;
      resolved_epoch_ = epoch;
      if (written.ok()) {
        durable_epoch_ = epoch;
        for (std::string& committed : lines) {
          durable_statements_.push_back(std::move(committed));
        }
        log_bytes_ += batch.size();
        ++appends_;
        append_bytes_ += batch.size();
        ++commit_batches_;
        batched_records_ += lines.size();
        fsyncs_saved_ += lines.size() - 1;
        engine_->PublishStaged();
      } else {
        // The whole batch aborts: no waiter is acknowledged, the staged
        // engine state rolls back, and the torn append (if any bytes
        // reached the file) is clipped back to the durable prefix.
        ++batch_aborts_;
        EnterDegradedLocked("batch commit failed: " + written.ToString(),
                            /*rollback=*/true);
      }
      leader_active_ = false;
      cv_.notify_all();
      continue;  // resolve through the checks at the top
    }
    cv_.wait(lock);
  }
}

void DurableEngine::WaitForStragglersLocked(
    std::unique_lock<std::mutex>& lock) {
  const long long window_us = options_.group_commit_window_us;
  if (window_us <= 0) return;
  const int max_batch = std::max(1, options_.group_commit_max_batch);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(window_us);
  const auto slice = std::chrono::microseconds(
      std::max<long long>(1, window_us / 4));
  size_t seen = pending_lines_.size();
  while (static_cast<int>(pending_lines_.size()) < max_batch &&
         std::chrono::steady_clock::now() < deadline) {
    cv_.wait_for(lock, slice);
    if (pending_lines_.size() == seen) break;  // arrivals dried up
    seen = pending_lines_.size();
  }
}

Status DurableEngine::Compact() {
  std::unique_lock<std::mutex> lock(mu_);
  // One compaction at a time; a second caller queues behind the first.
  cv_.wait(lock, [this] { return !compacting_; });
  if (degraded_) {
    return Status::Unavailable("statement log '" + path_ +
                               "' is in read-only degraded mode: " +
                               degraded_reason_);
  }
  // Quiesce the commit queue: mutations arriving from here on block at
  // the entry gate; the in-flight batch (if any) resolves and staged
  // frames drain through their leader before the rewrite starts.
  compacting_ = true;
  cv_.wait(lock, [this] { return !leader_active_ && pending_lines_.empty(); });

  auto compact_locked = [&]() -> Status {
    if (degraded_) {
      return Status::Unavailable("statement log '" + path_ +
                                 "' is in read-only degraded mode: " +
                                 degraded_reason_);
    }
    VIEWAUTH_ASSIGN_OR_RETURN(std::string script, engine_->DumpScript());
    VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                              ParseProgram(script));
    std::string buffer(kMagicV3);
    std::vector<std::string> lines;
    lines.reserve(statements.size());
    uint64_t seq = 0;
    for (const Statement& stmt : statements) {
      std::string line = StatementToString(stmt);
      buffer += FrameRecord(++seq, line);
      lines.push_back(std::move(line));
    }
    // One marker commits the whole dump.
    if (seq > 0) buffer += FrameMarker(1, seq);

    // Stage the replacement; any failure here leaves the original log
    // and the open append handle untouched.
    const std::string tmp_path = path_ + ".tmp";
    Status written;
    {
      auto file = fs_->NewWritableFile(tmp_path, WriteMode::kTruncate);
      if (!file.ok()) {
        return Status::Internal("compaction of '" + path_ +
                                "' failed to stage: " +
                                file.status().ToString());
      }
      written = (*file)->Append(buffer);
      if (written.ok()) written = (*file)->Sync();
      Status closed = (*file)->Close();
      if (written.ok()) written = closed;
    }
    if (!written.ok()) {
      (void)fs_->RemoveFile(tmp_path);
      return Status::Internal("compaction of '" + path_ + "' failed: " +
                              written.ToString());
    }
    Status renamed = fs_->RenameFile(tmp_path, path_);
    if (!renamed.ok()) {
      (void)fs_->RemoveFile(tmp_path);
      return Status::Internal("compaction of '" + path_ +
                              "' failed to commit: " + renamed.ToString());
    }

    // The rename committed: the compact log is the live one. The old
    // append handle points at the unlinked previous file; swap it out.
    if (log_ != nullptr) (void)log_->Close();
    log_.reset();
    durable_statements_ = std::move(lines);
    next_seq_ = seq + 1;
    format_ = LogFormat::kFramedV3;
    log_bytes_ = buffer.size();
    ++compactions_;
    auto reopened = fs_->NewWritableFile(path_, WriteMode::kAppend);
    if (!reopened.ok()) {
      // The compacted state is fully durable, but nothing more can be
      // appended: fail stop without rolling back.
      EnterDegradedLocked("cannot reopen statement log after compaction: " +
                              reopened.status().ToString(),
                          /*rollback=*/false);
      return Status::Unavailable(
          "compaction committed but the log could not be reopened; the "
          "engine is now read-only: " + reopened.status().ToString());
    }
    log_ = std::move(*reopened);
    return Status::OK();
  };

  Status result = compact_locked();
  compacting_ = false;
  cv_.notify_all();
  return result;
}

bool DurableEngine::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

DurableStats DurableEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurableStats stats;
  stats.format = format_;
  stats.degraded = degraded_;
  stats.appends = appends_;
  stats.append_bytes = append_bytes_;
  stats.compactions = compactions_;
  stats.log_bytes = log_bytes_;
  stats.commit_batches = commit_batches_;
  stats.batched_records = batched_records_;
  stats.fsyncs_saved = fsyncs_saved_;
  stats.batch_aborts = batch_aborts_;
  stats.transient_retries = transient_retries_;
  stats.transient_recoveries = transient_recoveries_;
  stats.snapshots_live = engine_->snapshots_live();
  stats.recovery = recovery_;
  return stats;
}

}  // namespace viewauth
