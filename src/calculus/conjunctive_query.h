// ConjunctiveQuery: the internal, schema-validated form of the paper's
// conjunctive relational calculus expressions (Section 2).
//
// A conjunctive expression
//   { a_1..a_n | (exists b_1..b_k)  psi_1 and ... and psi_m }
// is represented as:
//   * an ordered list of membership atoms (relation occurrences) — the
//     product part of the equivalent product/selection/projection algebra
//     expression,
//   * a target list of column references into those atoms (the a's),
//   * a conjunction of comparative conditions over column references and
//     constants.
// Variables that appear in several membership atoms surface here as
// equality conditions between columns; the meta encoder re-derives shared
// variables from them.

#ifndef VIEWAUTH_CALCULUS_CONJUNCTIVE_QUERY_H_
#define VIEWAUTH_CALCULUS_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"
#include "schema/schema.h"

namespace viewauth {

// A reference to one attribute of one membership atom.
struct ColumnRef {
  int atom = 0;  // index into ConjunctiveQuery::atoms()
  int attr = 0;  // attribute index within the atom's relation scheme

  bool operator==(const ColumnRef& other) const {
    return atom == other.atom && attr == other.attr;
  }
  bool operator<(const ColumnRef& other) const {
    return atom != other.atom ? atom < other.atom : attr < other.attr;
  }
};

// One membership atom: the `occurrence`'th use of `relation`.
struct MembershipAtom {
  std::string relation;
  int occurrence = 1;
};

// One comparative condition over columns/constants.
struct CalculusCondition {
  ColumnRef lhs;
  Comparator op = Comparator::kEq;
  bool rhs_is_column = false;
  ColumnRef rhs_column;
  Value rhs_const;
};

class ConjunctiveQuery {
 public:
  // Builds and validates a query from parsed targets/conditions against
  // the database scheme. `name` labels error messages ("view ELP",
  // "retrieve").
  static Result<ConjunctiveQuery> Build(
      const DatabaseSchema& schema, std::string name,
      const std::vector<AttributeRef>& targets,
      const std::vector<Condition>& conditions);

  static Result<ConjunctiveQuery> FromView(const DatabaseSchema& schema,
                                           const ViewStmt& stmt) {
    return Build(schema, "view " + stmt.name, stmt.targets, stmt.conditions);
  }
  static Result<ConjunctiveQuery> FromRetrieve(const DatabaseSchema& schema,
                                               const RetrieveStmt& stmt) {
    return Build(schema, "retrieve", stmt.targets, stmt.conditions);
  }

  const std::string& name() const { return name_; }
  const std::vector<MembershipAtom>& atoms() const { return atoms_; }
  const std::vector<ColumnRef>& targets() const { return targets_; }
  const std::vector<CalculusCondition>& conditions() const {
    return conditions_;
  }

  // The relation scheme of each atom. Schemas are captured by value at
  // Build time, so a ConjunctiveQuery (and everything compiled from it,
  // like stored views) stays valid even if the catalog's relation is
  // later dropped or the schema object moves.
  const RelationSchema& atom_schema(int atom) const {
    return atom_schemas_.at(static_cast<size_t>(atom));
  }

  // Flat column index of `ref` in the product of all atoms (atoms
  // concatenated in order).
  int FlatIndex(const ColumnRef& ref) const;
  // Total number of columns in the product of all atoms.
  int TotalColumns() const;
  // Name of a flat product column, qualified when ambiguous
  // ("NAME" or "EMPLOYEE:2.NAME").
  std::vector<std::string> ProductColumnNames() const;

  // Output (answer) column names and types, in target order. Duplicate
  // attribute names get ":i" suffixes, following the paper's A:i display.
  std::vector<std::string> OutputColumnNames() const;
  std::vector<ValueType> OutputColumnTypes() const;
  // The answer's relation scheme (named `relation_name`).
  Result<RelationSchema> OutputSchema(std::string relation_name) const;

  // Type of the attribute a column refers to.
  ValueType ColumnType(const ColumnRef& ref) const;

  // A copy of this query whose target list is every product column in
  // flat order (atoms and conditions unchanged). Used by the
  // extended-mask delivery, which evaluates the answer before the final
  // projection so that mask predicates over non-requested attributes can
  // be tested per row.
  ConjunctiveQuery WithAllColumnsProjected() const;

  std::string ToString() const;

  // A canonical, name-independent signature: atoms in order, target flat
  // indices, and conditions over flat indices with type-tagged constants.
  // Two queries with equal signatures (over the same database scheme)
  // run the identical S'/S pipeline, which is what lets the
  // authorization cache key derived masks by (user, signature).
  std::string CanonicalSignature() const;

 private:
  std::string name_;
  std::vector<MembershipAtom> atoms_;
  std::vector<RelationSchema> atom_schemas_;
  std::vector<ColumnRef> targets_;
  std::vector<CalculusCondition> conditions_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_CALCULUS_CONJUNCTIVE_QUERY_H_
