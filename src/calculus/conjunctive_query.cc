#include "calculus/conjunctive_query.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/str_util.h"

namespace viewauth {

namespace {

bool TypesComparable(ValueType a, ValueType b) {
  auto numeric = [](ValueType t) {
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  };
  return (numeric(a) && numeric(b)) ||
         (a == ValueType::kString && b == ValueType::kString);
}

ValueType TypeOfValue(const Value& v) {
  return v.is_null() ? ValueType::kString : v.type();
}

}  // namespace

Result<ConjunctiveQuery> ConjunctiveQuery::Build(
    const DatabaseSchema& schema, std::string name,
    const std::vector<AttributeRef>& targets,
    const std::vector<Condition>& conditions) {
  ConjunctiveQuery query;
  query.name_ = std::move(name);

  if (targets.empty()) {
    return Status::InvalidArgument(query.name_ +
                                   ": target list must be nonempty");
  }

  // Pass 1: collect every (relation, occurrence) pair mentioned anywhere.
  std::map<std::pair<std::string, int>, int> atom_index;
  auto note_occurrence = [&](const AttributeRef& ref) -> Status {
    if (!schema.HasRelation(ref.relation)) {
      return Status::NotFound(query.name_ + ": relation '" + ref.relation +
                              "' does not exist");
    }
    if (ref.occurrence < 1) {
      return Status::InvalidArgument(query.name_ +
                                     ": occurrence numbers are 1-based");
    }
    atom_index.emplace(std::make_pair(ref.relation, ref.occurrence), 0);
    return Status::OK();
  };
  for (const AttributeRef& ref : targets) {
    VIEWAUTH_RETURN_NOT_OK(note_occurrence(ref));
  }
  for (const Condition& cond : conditions) {
    VIEWAUTH_RETURN_NOT_OK(note_occurrence(cond.lhs));
    if (cond.rhs.is_attribute) {
      VIEWAUTH_RETURN_NOT_OK(note_occurrence(cond.rhs.attribute));
    }
  }

  // Occurrence numbers of the same relation must be dense starting at 1
  // (using EMPLOYEE:2 without EMPLOYEE:1 is almost certainly a typo).
  {
    std::map<std::string, std::vector<int>> by_relation;
    for (const auto& [key, unused] : atom_index) {
      (void)unused;
      by_relation[key.first].push_back(key.second);
    }
    for (const auto& [relation, occurrences] : by_relation) {
      for (size_t i = 0; i < occurrences.size(); ++i) {
        if (occurrences[i] != static_cast<int>(i) + 1) {
          return Status::InvalidArgument(
              query.name_ + ": occurrences of relation '" + relation +
              "' must be numbered 1.." +
              std::to_string(occurrences.size()) + " without gaps");
        }
      }
    }
  }

  // Assign atom order: map iteration order (relation name, then
  // occurrence) is deterministic.
  for (auto& [key, index] : atom_index) {
    index = static_cast<int>(query.atoms_.size());
    query.atoms_.push_back(MembershipAtom{key.first, key.second});
    VIEWAUTH_ASSIGN_OR_RETURN(const RelationSchema* rel_schema,
                              schema.GetRelation(key.first));
    query.atom_schemas_.push_back(*rel_schema);
  }

  // Pass 2: resolve references.
  auto resolve = [&](const AttributeRef& ref) -> Result<ColumnRef> {
    int atom = atom_index.at(std::make_pair(ref.relation, ref.occurrence));
    const RelationSchema& rel_schema =
        query.atom_schemas_[static_cast<size_t>(atom)];
    int attr = rel_schema.AttributeIndex(ref.attribute);
    if (attr < 0) {
      return Status::NotFound(query.name_ + ": relation '" + ref.relation +
                              "' has no attribute '" + ref.attribute + "'");
    }
    return ColumnRef{atom, attr};
  };

  for (const AttributeRef& ref : targets) {
    VIEWAUTH_ASSIGN_OR_RETURN(ColumnRef col, resolve(ref));
    query.targets_.push_back(col);
  }

  for (const Condition& cond : conditions) {
    CalculusCondition cc;
    VIEWAUTH_ASSIGN_OR_RETURN(cc.lhs, resolve(cond.lhs));
    cc.op = cond.op;
    const ValueType lhs_type = query.ColumnType(cc.lhs);
    if (cond.rhs.is_attribute) {
      cc.rhs_is_column = true;
      VIEWAUTH_ASSIGN_OR_RETURN(cc.rhs_column, resolve(cond.rhs.attribute));
      const ValueType rhs_type = query.ColumnType(cc.rhs_column);
      if (!TypesComparable(lhs_type, rhs_type)) {
        return Status::SchemaMismatch(
            query.name_ + ": cannot compare " + cond.lhs.ToString() + " (" +
            std::string(ValueTypeToString(lhs_type)) + ") with " +
            cond.rhs.attribute.ToString() + " (" +
            std::string(ValueTypeToString(rhs_type)) + ")");
      }
    } else {
      cc.rhs_const = cond.rhs.constant;
      if (!TypesComparable(lhs_type, TypeOfValue(cc.rhs_const))) {
        return Status::SchemaMismatch(
            query.name_ + ": cannot compare " + cond.lhs.ToString() + " (" +
            std::string(ValueTypeToString(lhs_type)) + ") with constant " +
            cc.rhs_const.ToDisplayString(false));
      }
    }
    query.conditions_.push_back(std::move(cc));
  }

  return query;
}

int ConjunctiveQuery::FlatIndex(const ColumnRef& ref) const {
  int offset = 0;
  for (int i = 0; i < ref.atom; ++i) {
    offset += atom_schemas_[static_cast<size_t>(i)].arity();
  }
  return offset + ref.attr;
}

int ConjunctiveQuery::TotalColumns() const {
  int total = 0;
  for (const RelationSchema& s : atom_schemas_) total += s.arity();
  return total;
}

std::vector<std::string> ConjunctiveQuery::ProductColumnNames() const {
  // Count relation name usage to decide qualification.
  std::map<std::string, int> relation_count;
  for (const MembershipAtom& atom : atoms_) ++relation_count[atom.relation];
  std::vector<std::string> names;
  names.reserve(TotalColumns());
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const MembershipAtom& atom = atoms_[i];
    std::string prefix = atom.relation;
    if (relation_count[atom.relation] > 1) {
      prefix += ":" + std::to_string(atom.occurrence);
    }
    for (const Attribute& attr : atom_schemas_[i].attributes()) {
      if (atoms_.size() == 1) {
        names.push_back(attr.name);
      } else {
        names.push_back(prefix + "." + attr.name);
      }
    }
  }
  return names;
}

std::vector<std::string> ConjunctiveQuery::OutputColumnNames() const {
  // Base names; disambiguate duplicates with :i suffixes (paper's A:i).
  std::vector<std::string> base;
  base.reserve(targets_.size());
  for (const ColumnRef& ref : targets_) {
    base.push_back(atom_schemas_[static_cast<size_t>(ref.atom)]
                       .attribute(ref.attr)
                       .name);
  }
  std::map<std::string, int> total;
  for (const std::string& n : base) ++total[n];
  std::map<std::string, int> seen;
  std::vector<std::string> names;
  names.reserve(base.size());
  for (const std::string& n : base) {
    if (total[n] > 1) {
      names.push_back(n + ":" + std::to_string(++seen[n]));
    } else {
      names.push_back(n);
    }
  }
  return names;
}

std::vector<ValueType> ConjunctiveQuery::OutputColumnTypes() const {
  std::vector<ValueType> types;
  types.reserve(targets_.size());
  for (const ColumnRef& ref : targets_) {
    types.push_back(ColumnType(ref));
  }
  return types;
}

Result<RelationSchema> ConjunctiveQuery::OutputSchema(
    std::string relation_name) const {
  std::vector<Attribute> attributes;
  std::vector<std::string> names = OutputColumnNames();
  std::vector<ValueType> types = OutputColumnTypes();
  for (size_t i = 0; i < names.size(); ++i) {
    attributes.push_back(Attribute{names[i], types[i]});
  }
  return RelationSchema::Make(std::move(relation_name),
                              std::move(attributes));
}

ValueType ConjunctiveQuery::ColumnType(const ColumnRef& ref) const {
  return atom_schemas_[static_cast<size_t>(ref.atom)]
      .attribute(ref.attr)
      .type;
}

ConjunctiveQuery ConjunctiveQuery::WithAllColumnsProjected() const {
  ConjunctiveQuery wide = *this;
  wide.targets_.clear();
  for (size_t a = 0; a < atoms_.size(); ++a) {
    for (int i = 0; i < atom_schemas_[a].arity(); ++i) {
      wide.targets_.push_back(ColumnRef{static_cast<int>(a), i});
    }
  }
  return wide;
}

std::string ConjunctiveQuery::CanonicalSignature() const {
  std::ostringstream out;
  for (const MembershipAtom& atom : atoms_) {
    out << atom.relation << ":" << atom.occurrence << ";";
  }
  out << "|t:";
  for (const ColumnRef& ref : targets_) {
    out << FlatIndex(ref) << ",";
  }
  out << "|c:";
  for (const CalculusCondition& c : conditions_) {
    out << FlatIndex(c.lhs) << " " << ComparatorToString(c.op) << " ";
    if (c.rhs_is_column) {
      out << "#" << FlatIndex(c.rhs_column);
    } else {
      // Type-tagged so that int 5 and string "5" cannot collide.
      out << ValueTypeToString(c.rhs_const.type()) << ":"
          << c.rhs_const.ToDisplayString(false);
    }
    out << ";";
  }
  return out.str();
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  out << name_ << ": atoms [";
  std::vector<std::string> atom_names;
  for (const MembershipAtom& atom : atoms_) {
    atom_names.push_back(atom.relation + ":" +
                         std::to_string(atom.occurrence));
  }
  out << Join(atom_names, ", ") << "], targets [";
  std::vector<std::string> target_names;
  std::vector<std::string> product_names = ProductColumnNames();
  for (const ColumnRef& ref : targets_) {
    target_names.push_back(product_names[FlatIndex(ref)]);
  }
  out << Join(target_names, ", ") << "]";
  if (!conditions_.empty()) {
    out << " where ";
    std::vector<std::string> cond_strs;
    for (const CalculusCondition& c : conditions_) {
      std::ostringstream cs;
      cs << product_names[FlatIndex(c.lhs)] << " "
         << ComparatorToString(c.op) << " ";
      if (c.rhs_is_column) {
        cs << product_names[FlatIndex(c.rhs_column)];
      } else {
        cs << c.rhs_const.ToDisplayString(false);
      }
      cond_strs.push_back(cs.str());
    }
    out << Join(cond_strs, " and ");
  }
  return out.str();
}

}  // namespace viewauth
