#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/str_util.h"

namespace viewauth {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << SeverityToString(severity) << ": [" << check << "] " << location
      << ": " << message;
  return out.str();
}

bool DiagnosticOutputLess(const Diagnostic& a, const Diagnostic& b) {
  if (a.check != b.check) return a.check < b.check;
  if (a.view != b.view) return a.view < b.view;
  if (a.user != b.user) return a.user < b.user;
  if (a.location != b.location) return a.location < b.location;
  return a.message < b.message;
}

void AnalysisReport::Add(Severity severity, std::string check,
                         std::string location, std::string message) {
  diagnostics_.push_back(Diagnostic{severity, std::move(check),
                                    std::move(location), std::move(message)});
}

void AnalysisReport::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void AnalysisReport::Merge(AnalysisReport other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
  for (CoverageEntry& entry : other.coverage_) {
    coverage_.push_back(std::move(entry));
  }
}

int AnalysisReport::CountOf(Severity severity) const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

std::string AnalysisReport::SummaryLine() const {
  if (diagnostics_.empty()) return "catalog analysis: no findings";
  std::vector<std::string> parts;
  auto count_part = [&](Severity s, std::string_view noun) {
    int n = CountOf(s);
    if (n == 0) return;
    std::string part = std::to_string(n) + " " + std::string(noun);
    if (n != 1) part += "s";
    parts.push_back(std::move(part));
  };
  count_part(Severity::kError, "error");
  count_part(Severity::kWarning, "warning");
  count_part(Severity::kNote, "note");
  return "catalog analysis: " + Join(parts, ", ");
}

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string AnalysisReport::ToJson() const {
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return DiagnosticOutputLess(*a, *b);
                   });
  std::ostringstream out;
  out << "{\n  \"diagnostics\": [";
  for (size_t i = 0; i < ordered.size(); ++i) {
    const Diagnostic& d = *ordered[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"check\": \"" << JsonEscape(d.check) << "\", \"severity\": \""
        << SeverityToString(d.severity) << "\", \"view\": \""
        << JsonEscape(d.view) << "\", \"user\": \"" << JsonEscape(d.user)
        << "\", \"location\": \"" << JsonEscape(d.location)
        << "\", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  if (!ordered.empty()) out << "\n  ";
  out << "],\n";
  out << "  \"summary\": {\"errors\": " << errors()
      << ", \"warnings\": " << warnings() << ", \"notes\": " << notes()
      << "}\n}";
  return out.str();
}

std::string AnalysisReport::ToString(bool include_coverage) const {
  std::ostringstream out;
  // Stable most-severe-first ordering for display.
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  for (const Diagnostic* d : ordered) {
    out << d->ToString() << "\n";
  }
  if (include_coverage && !coverage_.empty()) {
    out << "projection coverage (user x relation -> reachable columns):\n";
    for (const CoverageEntry& entry : coverage_) {
      out << "  " << entry.user << " x " << entry.relation << " -> "
          << (entry.columns.empty() ? "(none)" : Join(entry.columns, ", "))
          << "\n";
    }
  }
  out << SummaryLine();
  return out.str();
}

}  // namespace viewauth
