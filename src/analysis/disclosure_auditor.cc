#include "analysis/disclosure_auditor.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/str_util.h"

namespace viewauth {

namespace {

// Does `general` provably disclose at least `specific`?
bool FactCovers(const DisclosureFact& general,
                const DisclosureFact& specific) {
  if (general.relation != specific.relation) return false;
  for (int column : specific.columns) {
    if (!general.columns.contains(column)) return false;
  }
  return specific.region.ImpliesAll(general.region) == Truth::kTrue;
}

bool AppliesTo(const ViewCatalog& catalog, const ViewCatalog::Grant& grant,
               const std::string& user) {
  return grant.user == user || catalog.IsMember(user, grant.user);
}

std::string DenyLocation(const ViewCatalog::Grant& revocation) {
  std::string out = "deny " + revocation.view + " to " + revocation.user;
  if (revocation.mode != AccessMode::kRetrieve) {
    out += " for " + std::string(AccessModeToString(revocation.mode));
  }
  return out;
}

// Merged source list, first-use order, deduped. Empty when the merge
// adds no view beyond `a` (the composition cannot carry new authority).
std::vector<std::string> MergeSources(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  std::vector<std::string> merged = a;
  bool grew = false;
  for (const std::string& source : b) {
    if (std::find(merged.begin(), merged.end(), source) == merged.end()) {
      merged.push_back(source);
      grew = true;
    }
  }
  if (!grew) return {};
  return merged;
}

}  // namespace

std::string DisclosureFact::SourceLabel() const {
  return Join(sources, "+");
}

std::string RenderFact(const ViewCatalog& catalog,
                       const DisclosureFact& fact) {
  Result<const RelationSchema*> schema =
      catalog.schema().GetRelation(fact.relation);
  auto column_name = [&](int column) -> std::string {
    if (schema.ok() && column >= 0 && column < (*schema)->arity()) {
      return (*schema)->attribute(column).name;
    }
    return "#" + std::to_string(column + 1);
  };
  std::vector<std::string> names;
  names.reserve(fact.columns.size());
  for (int column : fact.columns) names.push_back(column_name(column));
  std::string out = fact.relation + "(" + Join(names, ", ") + ")";
  std::vector<std::string> atoms;
  for (const ConstraintAtom& atom : fact.region.ExportAtoms()) {
    atoms.push_back(atom.ToString(column_name));
  }
  if (!atoms.empty()) out += " where " + Join(atoms, " and ");
  return out;
}

std::vector<std::string> DisclosureAuditor::PermittedViewNames(
    const std::string& user) const {
  std::vector<std::string> names;
  for (const ViewCatalog::Grant& grant : catalog_->grants()) {
    if (grant.mode != AccessMode::kRetrieve ||
        !AppliesTo(*catalog_, grant, user)) {
      continue;
    }
    if (std::find(names.begin(), names.end(), grant.view) == names.end()) {
      names.push_back(grant.view);
    }
  }
  return names;
}

UserClosure DisclosureAuditor::ClosureOfViews(
    const std::string& user, const std::vector<std::string>& view_names,
    const DisclosureAuditOptions& options) const {
  UserClosure closure;
  closure.user = user;
  std::vector<DisclosureFact>& facts = closure.facts;

  // Base facts: each branch's per-atom disclosures. A covered fact is
  // skipped only when the covering fact is at least as composable
  // (exact), so dropping it cannot shrink the closure.
  auto add_base = [&](DisclosureFact fact) {
    if (fact.columns.empty()) return;
    for (const DisclosureFact& existing : facts) {
      if ((existing.region_exact || !fact.region_exact) &&
          FactCovers(existing, fact)) {
        return;
      }
    }
    facts.push_back(std::move(fact));
  };
  for (const std::string& name : view_names) {
    Result<std::vector<const ViewDefinition*>> branches =
        catalog_->GetViewBranches(name);
    if (!branches.ok()) continue;
    for (const ViewDefinition* branch : *branches) {
      for (AtomDisclosure& atom : AtomDisclosuresOf(*branch)) {
        DisclosureFact fact;
        fact.relation = std::move(atom.relation);
        fact.columns = std::move(atom.columns);
        fact.region = std::move(atom.region);
        fact.region_exact = atom.region_exact;
        fact.sources = {name};
        add_base(std::move(fact));
      }
    }
  }
  closure.base_count = static_cast<int>(facts.size());

  // Fixpoint composition. Joining two result sets on a relation's full
  // key tuple-identifies rows, so the combination delivers the union of
  // the columns over the conjunction of the regions. Only region-exact
  // facts compose: an approximate region cannot prove the join is
  // answerable from what the user actually received.
  int attempts = 0;
  for (size_t i = 1; i < facts.size(); ++i) {
    if (closure.truncated) break;
    for (size_t j = 0; j < i; ++j) {
      if (attempts >= options.max_compositions ||
          static_cast<int>(facts.size()) >= options.max_closure_facts) {
        closure.truncated = true;
        break;
      }
      // Indexing (not range-for): the vector grows during iteration.
      const DisclosureFact& a = facts[i];
      const DisclosureFact& b = facts[j];
      if (!a.region_exact || !b.region_exact) continue;
      if (a.relation != b.relation) continue;
      Result<const RelationSchema*> schema =
          catalog_->schema().GetRelation(a.relation);
      if (!schema.ok() || !(*schema)->has_key()) continue;
      bool key_shared = true;
      for (int key_column : (*schema)->key()) {
        if (!a.columns.contains(key_column) ||
            !b.columns.contains(key_column)) {
          key_shared = false;
          break;
        }
      }
      if (!key_shared) continue;
      std::vector<std::string> sources = MergeSources(a.sources, b.sources);
      if (sources.empty() ||
          static_cast<int>(sources.size()) > options.max_composition_depth) {
        continue;
      }
      DisclosureFact composed;
      composed.relation = a.relation;
      composed.columns = a.columns;
      composed.columns.insert(b.columns.begin(), b.columns.end());
      // Column recombination is the point; a union that is no wider than
      // a factor is already covered by that factor.
      if (composed.columns == a.columns || composed.columns == b.columns) {
        continue;
      }
      ++attempts;
      composed.region = a.region;
      composed.region.AddAll(b.region);
      if (!composed.region.IsSatisfiable() ||
          composed.region.DeepCheckSatisfiable(
              options.unsat_enumeration_limit) == Truth::kFalse) {
        continue;  // the join is provably empty: nothing is disclosed
      }
      composed.sources = std::move(sources);
      bool covered = false;
      for (const DisclosureFact& existing : facts) {
        if (existing.region_exact && FactCovers(existing, composed)) {
          covered = true;
          break;
        }
      }
      if (!covered) facts.push_back(std::move(composed));
    }
  }
  return closure;
}

UserClosure DisclosureAuditor::ClosureFor(
    const std::string& user, const DisclosureAuditOptions& options) const {
  return ClosureOfViews(user, PermittedViewNames(user), options);
}

std::vector<Diagnostic> DisclosureAuditor::ChannelFindings(
    const UserClosure& closure, const std::string& only_view) const {
  std::vector<Diagnostic> out;
  // One finding per (relation, column set): several compositions can
  // reach the same recombination.
  std::set<std::pair<std::string, std::set<int>>> reported;
  for (size_t i = static_cast<size_t>(closure.base_count);
       i < closure.facts.size(); ++i) {
    const DisclosureFact& fact = closure.facts[i];
    if (!only_view.empty() &&
        std::find(fact.sources.begin(), fact.sources.end(), only_view) ==
            fact.sources.end()) {
      continue;
    }
    bool covered = false;
    for (int b = 0; b < closure.base_count; ++b) {
      if (FactCovers(closure.facts[static_cast<size_t>(b)], fact)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    if (!reported.emplace(fact.relation, fact.columns).second) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.check = "inference-channel";
    d.location = "user " + closure.user;
    d.view = fact.SourceLabel();
    d.user = closure.user;
    d.message = "joining the results of " + Join(fact.sources, " and ") +
                " on the key of " + fact.relation + " reveals " +
                RenderFact(*catalog_, fact) +
                ", which no single permitted view delivers";
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<DisclosureFact> DisclosureAuditor::MarginalDisclosure(
    const std::string& view, const std::string& user,
    const DisclosureAuditOptions& options) const {
  std::vector<std::string> all = PermittedViewNames(user);
  if (std::find(all.begin(), all.end(), view) == all.end()) return {};
  std::vector<std::string> without;
  for (const std::string& name : all) {
    if (name != view) without.push_back(name);
  }
  UserClosure with_grant = ClosureOfViews(user, all, options);
  UserClosure remainder = ClosureOfViews(user, without, options);
  std::vector<DisclosureFact> marginal;
  for (DisclosureFact& fact : with_grant.facts) {
    bool covered = false;
    for (const DisclosureFact& existing : remainder.facts) {
      if (FactCovers(existing, fact)) {
        covered = true;
        break;
      }
    }
    if (!covered) marginal.push_back(std::move(fact));
  }
  return marginal;
}

std::optional<Diagnostic> DisclosureAuditor::CheckDenyBypass(
    const ViewCatalog::Grant& revocation,
    const DisclosureAuditOptions& options) const {
  if (revocation.mode != AccessMode::kRetrieve) return std::nullopt;
  if (!catalog_->HasView(revocation.view)) return std::nullopt;
  // The pairwise shadowed-deny check already covers a deny the user
  // dodges through a surviving grant of the very view, or through one
  // view that single-handedly implies it; report only what it misses.
  if (catalog_->IsPermitted(revocation.user, revocation.view,
                            revocation.mode)) {
    return std::nullopt;
  }
  Result<std::vector<const ViewDefinition*>> denied =
      catalog_->GetViewBranches(revocation.view);
  if (!denied.ok()) return std::nullopt;
  for (const ViewCatalog::Grant& grant : catalog_->grants()) {
    if (grant.mode != revocation.mode || grant.view == revocation.view ||
        !AppliesTo(*catalog_, grant, revocation.user)) {
      continue;
    }
    Result<std::vector<const ViewDefinition*>> remaining =
        catalog_->GetViewBranches(grant.view);
    if (remaining.ok() && ViewSubsumes(*remaining, *denied)) {
      return std::nullopt;
    }
  }

  UserClosure closure = ClosureFor(revocation.user, options);
  std::vector<std::string> witnesses;
  auto add_witness = [&](const std::string& label) {
    if (std::find(witnesses.begin(), witnesses.end(), label) ==
        witnesses.end()) {
      witnesses.push_back(label);
    }
  };
  bool composed_cover = false;
  for (const ViewDefinition* branch : *denied) {
    std::vector<AtomDisclosure> atoms = AtomDisclosuresOf(*branch);
    if (atoms.empty()) return std::nullopt;  // ill-formed: not provable
    for (const AtomDisclosure& atom : atoms) {
      // Reconstructing the branch's delivery needs the projected columns
      // plus the join columns (to re-run the branch's joins).
      DisclosureFact needed;
      needed.relation = atom.relation;
      needed.columns = atom.columns;
      needed.columns.insert(atom.join_columns.begin(),
                            atom.join_columns.end());
      if (needed.columns.empty()) continue;
      needed.region = atom.region;
      const DisclosureFact* cover = nullptr;
      for (const DisclosureFact& fact : closure.facts) {
        if (fact.region_exact && FactCovers(fact, needed)) {
          cover = &fact;
          break;
        }
      }
      if (cover == nullptr) return std::nullopt;
      if (cover->depth() > 1) composed_cover = true;
      add_witness(cover->SourceLabel());
    }
  }
  // Covering every atom with single-view facts from *different* views is
  // still a combination the pairwise check cannot see; only the case of
  // one view covering everything was excluded above via ViewSubsumes.
  (void)composed_cover;
  Diagnostic d;
  d.severity = Severity::kError;
  d.check = "deny-bypass";
  d.location = DenyLocation(revocation);
  d.view = revocation.view;
  d.user = revocation.user;
  d.message =
      "vacuous: the surviving permits' closure reconstructs everything "
      "the deny hides (via " +
      Join(witnesses, ", ") + ")";
  return d;
}

void DisclosureAuditor::AuditDrift(const DisclosureAuditOptions& options,
                                   AnalysisReport* report) const {
  std::vector<CatalogMutation> records;
  if (!catalog_->MutationsSince(options.drift_since_seq, &records)) {
    Diagnostic d;
    d.severity = Severity::kNote;
    d.check = "disclosure-drift";
    d.location = "catalog journal";
    d.message = "journal no longer reaches back to version " +
                std::to_string(options.drift_since_seq) +
                "; differential audit unavailable (re-baseline)";
    report->Add(std::move(d));
    return;
  }
  for (const CatalogMutation& record : records) {
    // Only retrieve-mode permits change the disclosure closure; they are
    // exactly the kGrantAdded records that carry relation scopes.
    if (record.kind != CatalogMutation::Kind::kGrantAdded ||
        record.scopes.empty()) {
      continue;
    }
    for (const std::string& user : record.users) {
      std::vector<DisclosureFact> marginal =
          MarginalDisclosure(record.view, user, options);
      const std::string location = "permit " + record.view + " to " + user +
                                   " (version " +
                                   std::to_string(record.seq) + ")";
      int emitted = 0;
      for (const DisclosureFact& fact : marginal) {
        if (emitted >= options.max_drift_facts_per_grant) break;
        ++emitted;
        Diagnostic d;
        d.severity = Severity::kNote;
        d.check = "disclosure-drift";
        d.location = location;
        d.view = record.view;
        d.user = user;
        d.message = "added " + RenderFact(*catalog_, fact);
        if (fact.depth() > 1) {
          d.message += " (in composition " + fact.SourceLabel() + ")";
        }
        report->Add(std::move(d));
      }
      if (static_cast<int>(marginal.size()) > emitted) {
        Diagnostic d;
        d.severity = Severity::kNote;
        d.check = "disclosure-drift";
        d.location = location;
        d.view = record.view;
        d.user = user;
        d.message = "... and " +
                    std::to_string(marginal.size() - emitted) +
                    " more closure fact(s)";
        report->Add(std::move(d));
      }
    }
  }
}

AnalysisReport DisclosureAuditor::Audit(
    const DisclosureAuditOptions& options) const {
  AnalysisReport report;
  for (const std::string& user : catalog_->PrincipalUsers()) {
    UserClosure closure = ClosureFor(user, options);
    for (Diagnostic& d : ChannelFindings(closure)) {
      report.Add(std::move(d));
    }
    if (closure.truncated) {
      Diagnostic d;
      d.severity = Severity::kNote;
      d.check = "audit-cutoff";
      d.location = "user " + user;
      d.user = user;
      d.message =
          "disclosure closure truncated at the enumeration cutoff (" +
          std::to_string(options.max_closure_facts) + " facts / " +
          std::to_string(options.max_compositions) +
          " compositions); findings are a sound under-approximation";
      report.Add(std::move(d));
    }
  }
  for (const ViewCatalog::Grant& revocation : catalog_->revocations()) {
    if (std::optional<Diagnostic> d = CheckDenyBypass(revocation, options)) {
      report.Add(std::move(*d));
    }
  }
  if (options.drift_since_seq >= 0) {
    AuditDrift(options, &report);
  }
  std::sort(report.diagnostics().begin(), report.diagnostics().end(),
            DiagnosticOutputLess);
  return report;
}

}  // namespace viewauth
