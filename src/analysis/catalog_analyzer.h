// Static analysis of an authorization catalog (viewauth-lint).
//
// Motro's model makes permissions knowledge: a catalog of view
// definitions, PERMISSION/COMPARISON meta-relations and group
// memberships. That knowledge can be statically wrong long before any
// query runs — a permit over an unsatisfiable view grants nothing, a
// permit implied by a broader one is dead weight in every
// meta-evaluation, a deny whose effect is re-granted elsewhere silently
// fails its intent. CatalogAnalyzer runs six checks over the catalog
// without touching stored data, reusing the Section 4.2 decision
// procedures (src/predicate) for the semantic ones:
//
//   unsat-view          (error)   a view's constraint set is
//                                 contradictory under deep (enumerating)
//                                 analysis: the view defines the empty
//                                 relation and every permit of it is dead
//   subsumed-permit     (warning) for some user — directly or via a
//                                 group — one permitted view is provably
//                                 implied by another (projection
//                                 containment + constraint implication)
//   shadowed-deny       (error)   a recorded deny whose effect is still
//                                 fully granted: the user retains the
//                                 view through a group grant, or a
//                                 remaining permitted view implies it
//   coverage-gap        (note)    a user can name a relation (a
//                                 permitted view is defined over it) but
//                                 no permitted view delivers any of its
//                                 columns; the full user x relation ->
//                                 columns map lands in the report
//   vacuous-comparison  (warning) a COMPARISON row constrains a variable
//                                 no meta-tuple of the view binds
//   schema-drift        (error)   a view references a relation or column
//                                 that was dropped or re-typed after the
//                                 view was compiled (views capture their
//                                 schemas by value, so a direct schema
//                                 drop leaves them silently misaligned)
//
// The per-definition checks are exposed as free functions so tests can
// drive them against hand-built definitions and so the engine can warn
// narrowly at permit/deny time.

#ifndef VIEWAUTH_ANALYSIS_CATALOG_ANALYZER_H_
#define VIEWAUTH_ANALYSIS_CATALOG_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "meta/view_store.h"
#include "schema/schema.h"

namespace viewauth {

struct AnalysisOptions {
  // Assignment cap for the deep satisfiability check
  // (ConstraintSet::DeepCheckSatisfiable); beyond it a view is presumed
  // satisfiable.
  long long unsat_enumeration_limit = 100000;
  // Populate the projection-coverage table in the report (the
  // coverage-gap diagnostics are always produced).
  bool include_coverage = true;
};

// Per-definition checks (no catalog required). `location` names the
// entity in diagnostics, e.g. "view BAD" or "view BAD (branch 2)".
void CheckViewSatisfiability(const ViewDefinition& def,
                             const std::string& location,
                             long long enumeration_limit,
                             std::vector<Diagnostic>* out);
void CheckVacuousComparisons(const ViewDefinition& def,
                             const std::string& location,
                             std::vector<Diagnostic>* out);
void CheckSchemaDrift(const ViewDefinition& def, const DatabaseSchema& schema,
                      const std::string& location,
                      std::vector<Diagnostic>* out);

class CatalogAnalyzer {
 public:
  explicit CatalogAnalyzer(const ViewCatalog* catalog) : catalog_(catalog) {}

  // Runs every check over the whole catalog.
  AnalysisReport Analyze(const AnalysisOptions& options = {}) const;

  // The subset of findings anchored to `view` or `user` (either may be
  // empty), for targeted warnings at permit/deny time.
  std::vector<Diagnostic> AnalyzeGrant(const std::string& view,
                                       const std::string& user,
                                       const AnalysisOptions& options = {}) const;

 private:
  void CheckViews(const AnalysisOptions& options, AnalysisReport* report) const;
  void CheckSubsumedPermits(AnalysisReport* report) const;
  void CheckShadowedDenies(AnalysisReport* report) const;
  void CheckCoverage(const AnalysisOptions& options,
                     AnalysisReport* report) const;

  const ViewCatalog* catalog_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ANALYSIS_CATALOG_ANALYZER_H_
