// Implication between compiled view definitions over projected schemes.
//
// The paper's Section 4.2 machinery decides implication between a query
// selection and one meta-tuple's predicate. The catalog analyzer needs
// the same question one level up: does one *stored view* deliver
// everything another does? That is conjunctive-query containment
// restricted to views with the same membership-atom structure, and it
// reduces to the ConstraintSet decision procedures once both views'
// predicates are expressed over a shared vocabulary:
//
//   * every flat product column (position) of the view's atoms becomes a
//     term;
//   * a constant cell pins its position; a variable shared between cells
//     equates its positions; the view's COMPARISON store is rewritten
//     from view variables to positions;
//   * the projection is the set of starred positions.
//
// `specific` is then contained in `general` exactly when the atom
// structures agree, the specific projection is a subset of the general
// one, and the specific position-constraints imply the general ones
// (every row specific selects, general also selects). The check is
// sound: kUnknown implications count as "not implied", so the analyzer
// only ever reports redundancies it can prove.

#ifndef VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_
#define VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_

#include <set>
#include <string>
#include <vector>

#include "meta/view_store.h"
#include "predicate/constraint.h"

namespace viewauth {

// A view branch's grant, re-expressed over position terms.
struct PositionView {
  // The branch's selection predicate over terms 0..N-1 (flat product
  // columns of its atoms, in atom order).
  ConstraintSet constraints;
  // Starred (delivered) positions.
  std::set<int> projected;
  // Relation name of each atom, in order (the scheme signature two
  // branches must share to be comparable positionally).
  std::vector<std::string> relations;
  // False when some constraint variable is bound by no cell (a vacuous
  // comparison); such a branch is excluded from implication reasoning
  // because its predicate cannot be faithfully re-expressed.
  bool well_formed = true;
};

// Re-expresses a compiled branch over position terms.
PositionView PositionViewOf(const ViewDefinition& def);

// Does `general` deliver everything `specific` does? Sound; false on
// structural mismatch, unprovable implication, or ill-formed input.
bool BranchImplied(const PositionView& specific, const PositionView& general);
bool BranchImplied(const ViewDefinition& specific,
                   const ViewDefinition& general);

// Grant-level subsumption: every branch of `specific` is implied by some
// branch of `general` (branches of a disjunctive view are independent
// entitlements, so per-branch cover suffices).
bool ViewSubsumes(const std::vector<const ViewDefinition*>& general,
                  const std::vector<const ViewDefinition*>& specific);

}  // namespace viewauth

#endif  // VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_
