// Implication between compiled view definitions over projected schemes.
//
// The paper's Section 4.2 machinery decides implication between a query
// selection and one meta-tuple's predicate. The catalog analyzer needs
// the same question one level up: does one *stored view* deliver
// everything another does? That is conjunctive-query containment
// restricted to views with the same membership-atom structure, and it
// reduces to the ConstraintSet decision procedures once both views'
// predicates are expressed over a shared vocabulary:
//
//   * every flat product column (position) of the view's atoms becomes a
//     term;
//   * a constant cell pins its position; a variable shared between cells
//     equates its positions; the view's COMPARISON store is rewritten
//     from view variables to positions;
//   * the projection is the set of starred positions.
//
// `specific` is then contained in `general` exactly when the atom
// structures agree, the specific projection is a subset of the general
// one, and the specific position-constraints imply the general ones
// (every row specific selects, general also selects). The check is
// sound: kUnknown implications count as "not implied", so the analyzer
// only ever reports redundancies it can prove.

#ifndef VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_
#define VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_

#include <set>
#include <string>
#include <vector>

#include "meta/view_store.h"
#include "predicate/constraint.h"

namespace viewauth {

// A view branch's grant, re-expressed over position terms.
struct PositionView {
  // The branch's selection predicate over terms 0..N-1 (flat product
  // columns of its atoms, in atom order).
  ConstraintSet constraints;
  // Starred (delivered) positions.
  std::set<int> projected;
  // Relation name of each atom, in order (the scheme signature two
  // branches must share to be comparable positionally).
  std::vector<std::string> relations;
  // False when some constraint variable is bound by no cell (a vacuous
  // comparison); such a branch is excluded from implication reasoning
  // because its predicate cannot be faithfully re-expressed.
  bool well_formed = true;
};

// Re-expresses a compiled branch over position terms.
PositionView PositionViewOf(const ViewDefinition& def);

// Does `general` deliver everything `specific` does? Sound; false on
// structural mismatch, unprovable implication, or ill-formed input.
bool BranchImplied(const PositionView& specific, const PositionView& general);
bool BranchImplied(const ViewDefinition& specific,
                   const ViewDefinition& general);

// Grant-level subsumption: every branch of `specific` is implied by some
// branch of `general` (branches of a disjunctive view are independent
// entitlements, so per-branch cover suffices).
bool ViewSubsumes(const std::vector<const ViewDefinition*>& general,
                  const std::vector<const ViewDefinition*>& specific);

// --- Per-atom disclosure regions (disclosure_auditor substrate) --------
//
// A view branch discloses, per membership atom, a *subview* of that
// atom's relation: the projected columns, over rows satisfying the
// branch's selection. Re-expressing each atom's share of the selection
// over the relation's own column indices (terms 0..arity-1) gives every
// branch of every view — whatever its variable numbering — a shared
// vocabulary per relation, which is what lets the disclosure auditor
// conjoin regions across views when it composes facts.

struct AtomDisclosure {
  // Relation the atom ranges over.
  std::string relation;
  // Projected (starred) column indices, 0-based.
  std::set<int> columns;
  // Constraint region over terms = column indices: every delivered row
  // of `relation` satisfies it.
  ConstraintSet region;
  // Columns that participate in cross-atom joins (shared variables).
  // Reconstructing the atom's delivery requires these alongside the
  // projected columns.
  std::set<int> join_columns;
  // True when `region` is exactly the branch's restriction on this atom:
  // no cross-atom constraint was dropped in the re-expression. When
  // false the region over-approximates the delivered rows (a join with
  // another atom filters further), so provers must not treat it as a
  // lower bound on disclosure.
  bool region_exact = true;
};

// The per-atom disclosures of a compiled branch, in atom order. Empty
// when the branch is ill-formed (vacuous comparison: its predicate
// cannot be faithfully re-expressed; flagged elsewhere).
std::vector<AtomDisclosure> AtomDisclosuresOf(const ViewDefinition& def);

// Does `general` disclose at least `specific`? True when the relations
// match, specific's columns are a subset, and every row specific
// delivers provably lies in general's region.
bool DisclosureCovers(const AtomDisclosure& general,
                      const AtomDisclosure& specific);

}  // namespace viewauth

#endif  // VIEWAUTH_ANALYSIS_VIEW_IMPLICATION_H_
