// Structured diagnostics for the static authorization-catalog analyzer.
//
// A Diagnostic is one finding: a severity, a stable check identifier, a
// catalog location (the entity the finding is anchored to — a view, a
// grant, a relation), and a human-readable message. An AnalysisReport
// collects the findings of one analyzer run plus the per-user projection
// coverage map, and renders both.
//
// Severities follow compiler convention: errors are findings that make a
// catalog entry ineffective or unsound in intent (a permit that grants
// nothing, a deny whose effect is still granted, a view over a dropped
// relation); warnings are redundancies and suspicious-but-harmless
// states; notes are informational (coverage gaps).

#ifndef VIEWAUTH_ANALYSIS_DIAGNOSTIC_H_
#define VIEWAUTH_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

namespace viewauth {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string_view SeverityToString(Severity severity);

struct Diagnostic {
  Diagnostic() = default;
  Diagnostic(Severity severity_in, std::string check_in,
             std::string location_in, std::string message_in)
      : severity(severity_in),
        check(std::move(check_in)),
        location(std::move(location_in)),
        message(std::move(message_in)) {}

  Severity severity = Severity::kNote;
  // Stable check identifier: "unsat-view", "subsumed-permit",
  // "shadowed-deny", "coverage-gap", "vacuous-comparison",
  // "schema-drift", and the auditor's "inference-channel",
  // "deny-bypass", "disclosure-drift", "audit-cutoff".
  std::string check;
  // The catalog location the finding anchors to, rendered in the
  // surface language ("view ELP", "permit SAE to Brown",
  // "relation EMPLOYEE").
  std::string location;
  std::string message;
  // Structured anchors for machine-readable output and deterministic
  // ordering; empty when the finding has no single view or user. For
  // composed findings (inference channels) `view` joins the sources
  // with '+' ("SAE+EST").
  std::string view;
  std::string user;

  bool operator==(const Diagnostic&) const = default;

  // "error: [unsat-view] view BAD: ...".
  std::string ToString() const;
};

// Deterministic output order: by check kind, then view, then user, then
// location, then message. Every surface that renders a diagnostic list
// for fixtures (--json, report rendering) sorts with this so output
// never depends on internal iteration order.
bool DiagnosticOutputLess(const Diagnostic& a, const Diagnostic& b);

// One row of the projection-coverage report: the columns of `relation`
// that `user` can actually receive under some permitted view. An empty
// column list means the user can name the relation (a permitted view is
// defined over it) but never sees any of its values.
struct CoverageEntry {
  std::string user;
  std::string relation;
  std::vector<std::string> columns;
};

class AnalysisReport {
 public:
  std::vector<Diagnostic>& diagnostics() { return diagnostics_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  std::vector<CoverageEntry>& coverage() { return coverage_; }
  const std::vector<CoverageEntry>& coverage() const { return coverage_; }

  void Add(Severity severity, std::string check, std::string location,
           std::string message);
  void Add(Diagnostic diagnostic);
  // Appends every diagnostic (and coverage row) of `other`.
  void Merge(AnalysisReport other);

  int CountOf(Severity severity) const;
  int errors() const { return CountOf(Severity::kError); }
  int warnings() const { return CountOf(Severity::kWarning); }
  int notes() const { return CountOf(Severity::kNote); }
  bool HasErrors() const { return errors() > 0; }
  bool HasFindings() const { return !diagnostics_.empty(); }

  // Findings ordered most-severe-first (stable within a severity),
  // followed by the coverage table when requested, followed by a
  // one-line summary ("catalog analysis: 2 errors, 1 warning" or
  // "catalog analysis: no findings").
  std::string ToString(bool include_coverage = false) const;
  std::string SummaryLine() const;

  // Machine-readable rendering: one JSON object with a "diagnostics"
  // array in DiagnosticOutputLess order plus a "summary" object. Stable
  // and deterministic: equal reports render byte-identically.
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::vector<CoverageEntry> coverage_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_ANALYSIS_DIAGNOSTIC_H_
