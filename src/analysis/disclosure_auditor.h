// Disclosure-closure analysis and inference auditing.
//
// The catalog analyzer (catalog_analyzer.h) judges permits one at a
// time. The attacker model of interest (Guarnieri et al., "Strong and
// Provably Secure Database Access Control") is stronger: a user keeps
// everything every permitted view ever delivered and may compute over
// the union — so the right unit of analysis is the *combination* of a
// user's permits. DisclosureAuditor computes, per user, the **disclosure
// closure**: the set of (relation, columns, constraint-region) facts
// derivable from the permitted views and their compositions, and runs
// three diagnostic families over it:
//
//   inference-channel  (error) two or more permitted views share all key
//                              columns of a relation, so joining their
//                              results tuple-identifies rows and reveals
//                              a column combination (over a nonempty
//                              region) that no single permitted view
//                              delivers (Chirkova & Yu: the query behind
//                              the views is answerable)
//   deny-bypass        (error) a recorded deny whose hidden subview is
//                              reconstructible from the surviving
//                              permits' closure — semantically vacuous
//                              even though the pairwise shadowed-deny
//                              check passes (no single view implies it)
//   disclosure-drift   (note)  catalog-version differential built on the
//                              CatalogMutation journal: for each permit
//                              added after a reference version, exactly
//                              which closure facts the grant contributed
//                              (the marginal disclosure a reviewer signs
//                              off on)
//
// Soundness: error findings are proofs. Compositions use only
// region-exact facts (single-atom restrictions with no dropped
// cross-atom constraint), joins require *all* declared key columns of
// the relation shared and projected on both sides (equality on a key
// identifies the row), composed regions must survive
// ConstraintSet::DeepCheckSatisfiable, and channel/bypass coverage
// checks demand proven implication. kUnknown never becomes an error.
//
// Boundedness: the closure is a fixpoint over a per-user fact set with
// three cutoffs — composition depth (distinct views per fact), fact
// count, and total composition attempts. Hitting any cutoff truncates
// the closure (soundly: fewer facts, fewer findings) and emits one
// "audit-cutoff" note, so auditing a large catalog (100+ views) stays
// inside a lint step instead of enumerating an exponential join lattice.

#ifndef VIEWAUTH_ANALYSIS_DISCLOSURE_AUDITOR_H_
#define VIEWAUTH_ANALYSIS_DISCLOSURE_AUDITOR_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/view_implication.h"
#include "meta/view_store.h"

namespace viewauth {

struct DisclosureAuditOptions {
  // Maximum distinct views composed into one closure fact.
  int max_composition_depth = 3;
  // Per-user cap on stored closure facts.
  int max_closure_facts = 256;
  // Per-user cap on attempted compositions (the enumeration cutoff that
  // bounds the join lattice on large catalogs).
  int max_compositions = 20000;
  // Assignment cap for DeepCheckSatisfiable on composed regions.
  long long unsat_enumeration_limit = 100000;
  // When >= 0, run the journal-differential drift pass: report the
  // marginal disclosure of every retrieve permit recorded after this
  // catalog version. -1 disables the pass.
  long long drift_since_seq = -1;
  // Cap on drift facts reported per recorded grant.
  int max_drift_facts_per_grant = 8;
};

// One fact of a user's disclosure closure: the user can materialize the
// `columns` of `relation` for every row in `region` (terms = column
// indices), by joining the result sets of `sources` (permitted view
// grant names; one entry for a directly delivered subview).
struct DisclosureFact {
  std::string relation;
  std::set<int> columns;
  ConstraintSet region;
  bool region_exact = true;
  // Distinct view names composed, in first-use order.
  std::vector<std::string> sources;

  int depth() const { return static_cast<int>(sources.size()); }
  // "SAE+EST" (sources joined), for Diagnostic::view.
  std::string SourceLabel() const;
};

// A user's computed closure. `base_count` facts at the front of `facts`
// are the direct per-atom disclosures of individual permitted views;
// the rest are compositions.
struct UserClosure {
  std::string user;
  std::vector<DisclosureFact> facts;
  int base_count = 0;
  // Some cutoff tripped; the closure (and so any finding set derived
  // from it) is a sound under-approximation.
  bool truncated = false;
};

class DisclosureAuditor {
 public:
  explicit DisclosureAuditor(const ViewCatalog* catalog)
      : catalog_(catalog) {}

  // The whole-catalog audit: closure per principal user, the three
  // diagnostic families, deterministic ordering.
  AnalysisReport Audit(const DisclosureAuditOptions& options = {}) const;

  // The disclosure closure of one user's retrieve permits.
  UserClosure ClosureFor(const std::string& user,
                         const DisclosureAuditOptions& options = {}) const;

  // The closure facts the grant of `view` to `user` contributes beyond
  // the user's remaining permits (empty when the view reaches the user
  // some other way too, e.g. through a group grant of the same view).
  std::vector<DisclosureFact> MarginalDisclosure(
      const std::string& view, const std::string& user,
      const DisclosureAuditOptions& options = {}) const;

  // Deny-bypass check for one recorded revocation: a diagnostic when the
  // surviving permits' closure provably reconstructs the denied view's
  // delivery *and* the pairwise shadowed-deny check would not fire.
  std::optional<Diagnostic> CheckDenyBypass(
      const ViewCatalog::Grant& revocation,
      const DisclosureAuditOptions& options = {}) const;

  // Inference-channel findings for one user (used by Audit and by the
  // permit-time audit_grants path). When `only_view` is nonempty, only
  // channels with that view among their sources are reported.
  std::vector<Diagnostic> ChannelFindings(
      const UserClosure& closure, const std::string& only_view = {}) const;

 private:
  // Closure over an explicit grant-name list (the subtraction used by
  // MarginalDisclosure and CheckDenyBypass).
  UserClosure ClosureOfViews(const std::string& user,
                             const std::vector<std::string>& view_names,
                             const DisclosureAuditOptions& options) const;
  // Grant names of the user's retrieve permits, in grant order, deduped.
  std::vector<std::string> PermittedViewNames(const std::string& user) const;
  void AuditDrift(const DisclosureAuditOptions& options,
                  AnalysisReport* report) const;

  const ViewCatalog* catalog_;
};

// "EMPLOYEE(NAME, SALARY) where SALARY >= 30000" — the human rendering
// of a fact against the catalog's live schema.
std::string RenderFact(const ViewCatalog& catalog, const DisclosureFact& fact);

}  // namespace viewauth

#endif  // VIEWAUTH_ANALYSIS_DISCLOSURE_AUDITOR_H_
