#include "analysis/catalog_analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/view_implication.h"
#include "common/str_util.h"
#include "meta/meta_tuple.h"

namespace viewauth {

namespace {

// The four grant modes, for per-mode permission analysis.
constexpr AccessMode kModes[] = {AccessMode::kRetrieve, AccessMode::kInsert,
                                 AccessMode::kDelete, AccessMode::kModify};

std::string GrantLocation(const ViewCatalog::Grant& grant) {
  std::string out = "permit " + grant.view + " to " + grant.user;
  if (grant.mode != AccessMode::kRetrieve) {
    out += " for " + std::string(AccessModeToString(grant.mode));
  }
  return out;
}

std::string DenyLocation(const ViewCatalog::Grant& revocation) {
  std::string out = "deny " + revocation.view + " to " + revocation.user;
  if (revocation.mode != AccessMode::kRetrieve) {
    out += " for " + std::string(AccessModeToString(revocation.mode));
  }
  return out;
}

// Does `grant` apply to `user`, directly or through a group the user
// belongs to?
bool AppliesTo(const ViewCatalog& catalog, const ViewCatalog::Grant& grant,
               const std::string& user) {
  return grant.user == user || catalog.IsMember(user, grant.user);
}

std::string RenderComparison(const ComparisonEntry& entry) {
  std::string out = DefaultVarName(entry.lhs);
  out += " ";
  out += ComparatorToString(entry.op);
  out += " ";
  if (entry.rhs_is_var) {
    out += DefaultVarName(entry.rhs_var);
  } else {
    out += entry.rhs_const.ToDisplayString(/*commas=*/false);
  }
  return out;
}

}  // namespace

void CheckViewSatisfiability(const ViewDefinition& def,
                             const std::string& location,
                             long long enumeration_limit,
                             std::vector<Diagnostic>* out) {
  if (def.tuples.empty()) return;
  const ConstraintSet& store = def.tuples.front().constraints();
  if (!store.IsSatisfiable()) {
    out->push_back(Diagnostic{
        Severity::kError, "unsat-view", location,
        "constraint set is contradictory: the view defines the empty "
        "relation, so every permit of it grants nothing"});
    return;
  }
  if (store.DeepCheckSatisfiable(enumeration_limit) == Truth::kFalse) {
    out->push_back(Diagnostic{
        Severity::kError, "unsat-view", location,
        "constraint set (" + store.ToString() +
            ") is unsatisfiable under finite-domain enumeration: the view "
            "defines the empty relation, so every permit of it grants "
            "nothing"});
  }
}

void CheckVacuousComparisons(const ViewDefinition& def,
                             const std::string& location,
                             std::vector<Diagnostic>* out) {
  std::set<VarId> bound;
  for (const MetaTuple& tuple : def.tuples) {
    for (VarId var : tuple.CellVars()) bound.insert(var);
  }
  for (const ComparisonEntry& entry : def.comparisons) {
    VarId unbound = -1;
    if (!bound.contains(entry.lhs)) {
      unbound = entry.lhs;
    } else if (entry.rhs_is_var && !bound.contains(entry.rhs_var)) {
      unbound = entry.rhs_var;
    }
    if (unbound < 0) continue;
    out->push_back(Diagnostic{
        Severity::kWarning, "vacuous-comparison", location,
        "COMPARISON row (" + RenderComparison(entry) +
            ") constrains variable " + DefaultVarName(unbound) +
            ", which no meta-tuple of the view binds; the row can never "
            "take effect"});
  }
}

void CheckSchemaDrift(const ViewDefinition& def, const DatabaseSchema& schema,
                      const std::string& location,
                      std::vector<Diagnostic>* out) {
  std::set<std::string> reported;
  for (size_t a = 0; a < def.tuple_relations.size(); ++a) {
    const std::string& relation = def.tuple_relations[a];
    if (reported.contains(relation)) continue;
    Result<const RelationSchema*> current = schema.GetRelation(relation);
    if (!current.ok()) {
      reported.insert(relation);
      out->push_back(Diagnostic{
          Severity::kError, "schema-drift", location,
          "references relation " + relation +
              ", which no longer exists in the schema; retrieves through "
              "this view would misalign"});
      continue;
    }
    const RelationSchema& compiled = def.query.atom_schema(static_cast<int>(a));
    const RelationSchema& live = **current;
    if (live.arity() != compiled.arity()) {
      reported.insert(relation);
      out->push_back(Diagnostic{
          Severity::kError, "schema-drift", location,
          "relation " + relation + " now has " +
              std::to_string(live.arity()) + " attribute(s); the view was "
              "compiled against " + std::to_string(compiled.arity())});
      continue;
    }
    for (int i = 0; i < compiled.arity(); ++i) {
      const Attribute& was = compiled.attribute(i);
      const Attribute& now = live.attribute(i);
      if (was == now) continue;
      reported.insert(relation);
      out->push_back(Diagnostic{
          Severity::kError, "schema-drift", location,
          "attribute " + std::to_string(i + 1) + " of relation " + relation +
              " is now " + now.name + " " +
              std::string(ValueTypeToString(now.type)) +
              "; the view was compiled against " + was.name + " " +
              std::string(ValueTypeToString(was.type))});
      break;
    }
  }
}

void CatalogAnalyzer::CheckViews(const AnalysisOptions& options,
                                 AnalysisReport* report) const {
  for (const std::string& name : catalog_->view_names()) {
    Result<std::vector<const ViewDefinition*>> branches =
        catalog_->GetViewBranches(name);
    if (!branches.ok()) continue;
    const bool disjunctive = branches->size() > 1;
    for (size_t b = 0; b < branches->size(); ++b) {
      std::string location = "view " + name;
      if (disjunctive) {
        location += " (branch " + std::to_string(b + 1) + ")";
      }
      CheckViewSatisfiability(*(*branches)[b], location,
                              options.unsat_enumeration_limit,
                              &report->diagnostics());
      CheckVacuousComparisons(*(*branches)[b], location,
                              &report->diagnostics());
      CheckSchemaDrift(*(*branches)[b], catalog_->schema(), location,
                       &report->diagnostics());
    }
  }
}

void CatalogAnalyzer::CheckSubsumedPermits(AnalysisReport* report) const {
  // One diagnostic per ordered grant pair, however many users the pair
  // applies to (a group pair would otherwise repeat per member); the
  // witness user is named when grants reach the user through groups.
  std::set<std::pair<const ViewCatalog::Grant*, const ViewCatalog::Grant*>>
      emitted;
  for (const std::string& user : catalog_->PrincipalUsers()) {
    for (AccessMode mode : kModes) {
      struct Applied {
        const ViewCatalog::Grant* grant;
        std::vector<const ViewDefinition*> branches;
      };
      std::vector<Applied> applied;
      for (const ViewCatalog::Grant& grant : catalog_->grants()) {
        if (grant.mode != mode || !AppliesTo(*catalog_, grant, user)) {
          continue;
        }
        Result<std::vector<const ViewDefinition*>> branches =
            catalog_->GetViewBranches(grant.view);
        if (!branches.ok()) continue;
        applied.push_back(Applied{&grant, std::move(*branches)});
      }
      if (applied.size() < 2) continue;
      const size_t n = applied.size();
      // subsumes[i][j]: grant i's view delivers everything grant j's does.
      std::vector<std::vector<bool>> subsumes(n, std::vector<bool>(n, false));
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          subsumes[i][j] =
              ViewSubsumes(applied[i].branches, applied[j].branches);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < n; ++i) {
          if (i == j || !subsumes[i][j]) continue;
          // Of two equivalent grants, only the later one is redundant.
          if (i > j && subsumes[j][i]) continue;
          if (!emitted.emplace(applied[i].grant, applied[j].grant).second) {
            break;
          }
          std::string message =
              "redundant: every row and column it grants is already "
              "granted by '" + GrantLocation(*applied[i].grant) + "'";
          if (applied[j].grant->user != user ||
              applied[i].grant->user != user) {
            message += " (both apply to user " + user + ")";
          }
          report->Add(Severity::kWarning, "subsumed-permit",
                      GrantLocation(*applied[j].grant), std::move(message));
          break;
        }
      }
    }
  }
}

void CatalogAnalyzer::CheckShadowedDenies(AnalysisReport* report) const {
  for (const ViewCatalog::Grant& revocation : catalog_->revocations()) {
    if (!catalog_->HasView(revocation.view)) continue;
    // Direct shadow: the user still holds the very view, through a group
    // grant or another applicable grant.
    if (catalog_->IsPermitted(revocation.user, revocation.view,
                              revocation.mode)) {
      std::string through;
      for (const ViewCatalog::Grant& grant : catalog_->grants()) {
        if (grant.view == revocation.view && grant.mode == revocation.mode &&
            AppliesTo(*catalog_, grant, revocation.user)) {
          through = GrantLocation(grant);
          break;
        }
      }
      report->Add(Severity::kError, "shadowed-deny", DenyLocation(revocation),
                  "ineffective: user " + revocation.user +
                      " still holds the view through '" + through + "'");
      continue;
    }
    // Implication shadow: a remaining permitted view delivers everything
    // the denied view did.
    Result<std::vector<const ViewDefinition*>> denied =
        catalog_->GetViewBranches(revocation.view);
    if (!denied.ok()) continue;
    for (const ViewCatalog::Grant& grant : catalog_->grants()) {
      if (grant.mode != revocation.mode || grant.view == revocation.view ||
          !AppliesTo(*catalog_, grant, revocation.user)) {
        continue;
      }
      Result<std::vector<const ViewDefinition*>> remaining =
          catalog_->GetViewBranches(grant.view);
      if (!remaining.ok()) continue;
      if (ViewSubsumes(*remaining, *denied)) {
        report->Add(
            Severity::kError, "shadowed-deny", DenyLocation(revocation),
            "ineffective: '" + GrantLocation(grant) + "' still grants "
                "everything view " + revocation.view + " delivered");
        break;
      }
    }
  }
}

void CatalogAnalyzer::CheckCoverage(const AnalysisOptions& options,
                                    AnalysisReport* report) const {
  for (const std::string& user : catalog_->PrincipalUsers()) {
    std::vector<const ViewDefinition*> views =
        catalog_->PermittedViews(user, AccessMode::kRetrieve);
    if (views.empty()) continue;
    // Relation -> (attribute names in scheme order, reachable indices).
    std::map<std::string, std::pair<std::vector<std::string>, std::set<int>>>
        reach;
    std::vector<std::string> order;
    for (const ViewDefinition* def : views) {
      for (size_t a = 0; a < def->tuples.size(); ++a) {
        const std::string& relation = def->tuple_relations[a];
        const RelationSchema& schema =
            def->query.atom_schema(static_cast<int>(a));
        auto [it, inserted] = reach.try_emplace(relation);
        if (inserted) {
          order.push_back(relation);
          for (const Attribute& attr : schema.attributes()) {
            it->second.first.push_back(attr.name);
          }
        }
        const MetaTuple& tuple = def->tuples[a];
        for (int i = 0; i < tuple.arity(); ++i) {
          if (tuple.cells()[static_cast<size_t>(i)].projected) {
            it->second.second.insert(i);
          }
        }
      }
    }
    for (const std::string& relation : order) {
      const auto& [names, reachable] = reach.at(relation);
      CoverageEntry entry;
      entry.user = user;
      entry.relation = relation;
      for (int index : reachable) {
        if (index < static_cast<int>(names.size())) {
          entry.columns.push_back(names[static_cast<size_t>(index)]);
        }
      }
      if (entry.columns.empty()) {
        report->Add(
            Severity::kNote, "coverage-gap", "user " + user,
            "can name relation " + relation + " through permitted views, "
                "but no permitted view delivers any of its columns");
      }
      if (options.include_coverage) {
        report->coverage().push_back(std::move(entry));
      }
    }
  }
}

AnalysisReport CatalogAnalyzer::Analyze(const AnalysisOptions& options) const {
  AnalysisReport report;
  CheckViews(options, &report);
  CheckSubsumedPermits(&report);
  CheckShadowedDenies(&report);
  CheckCoverage(options, &report);
  return report;
}

std::vector<Diagnostic> CatalogAnalyzer::AnalyzeGrant(
    const std::string& view, const std::string& user,
    const AnalysisOptions& options) const {
  AnalysisReport report = Analyze(options);
  std::vector<Diagnostic> relevant;
  auto mentions = [](const Diagnostic& diagnostic, const std::string& name) {
    return !name.empty() &&
           (diagnostic.location.find(name) != std::string::npos ||
            diagnostic.message.find(name) != std::string::npos);
  };
  for (Diagnostic& diagnostic : report.diagnostics()) {
    if (mentions(diagnostic, view) || mentions(diagnostic, user)) {
      relevant.push_back(std::move(diagnostic));
    }
  }
  return relevant;
}

}  // namespace viewauth
