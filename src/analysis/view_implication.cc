#include "analysis/view_implication.h"

#include <map>

namespace viewauth {

PositionView PositionViewOf(const ViewDefinition& def) {
  PositionView out;
  out.relations = def.tuple_relations;

  // First pass over the cells: declare position types, pin constants,
  // star projections, and record where each view variable lives.
  std::map<VarId, std::vector<int>> positions_of_var;
  int position = 0;
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    const MetaTuple& tuple = def.tuples[a];
    const RelationSchema& schema =
        def.query.atom_schema(static_cast<int>(a));
    for (int i = 0; i < tuple.arity(); ++i, ++position) {
      const MetaCell& cell = tuple.cells()[static_cast<size_t>(i)];
      out.constraints.DeclareTermType(position, schema.attribute(i).type);
      if (cell.projected) out.projected.insert(position);
      switch (cell.kind) {
        case CellKind::kBlank:
          break;
        case CellKind::kConst:
          out.constraints.AddTermConst(position, Comparator::kEq,
                                       cell.constant);
          break;
        case CellKind::kVar:
          positions_of_var[cell.var].push_back(position);
          break;
      }
    }
  }

  // Shared variables equate their positions.
  for (const auto& [var, positions] : positions_of_var) {
    (void)var;
    for (size_t i = 1; i < positions.size(); ++i) {
      out.constraints.AddTermTerm(positions[0], Comparator::kEq,
                                  positions[i]);
    }
  }

  // Rewrite the view's comparison store from variables to positions. The
  // canonical export collapses solver-derived consequences, so the
  // rewritten set is equivalent to the stored one.
  if (def.tuples.empty()) return out;
  const ConstraintSet& store = def.tuples.front().constraints();
  auto position_of = [&](VarId var) -> int {
    auto it = positions_of_var.find(var);
    if (it == positions_of_var.end()) return -1;
    return it->second.front();
  };
  for (const ConstraintAtom& atom : store.ExportAtoms()) {
    int lhs = position_of(atom.lhs);
    if (lhs < 0) {
      out.well_formed = false;  // vacuous comparison: unbound variable
      continue;
    }
    if (atom.rhs_is_term) {
      int rhs = position_of(atom.rhs_term);
      if (rhs < 0) {
        out.well_formed = false;
        continue;
      }
      out.constraints.AddTermTerm(lhs, atom.op, rhs);
    } else {
      out.constraints.AddTermConst(lhs, atom.op, atom.rhs_const);
    }
  }
  return out;
}

bool BranchImplied(const PositionView& specific,
                   const PositionView& general) {
  if (!specific.well_formed || !general.well_formed) return false;
  if (specific.relations != general.relations) return false;
  // Projection containment: every delivered position of the narrow view
  // is delivered by the broad one.
  for (int position : specific.projected) {
    if (!general.projected.contains(position)) return false;
  }
  // Selection implication: every row the narrow view selects, the broad
  // view selects. Unsatisfiable specifics are vacuously implied (and
  // flagged separately by the unsat-view check).
  return specific.constraints.ImpliesAll(general.constraints) ==
         Truth::kTrue;
}

bool BranchImplied(const ViewDefinition& specific,
                   const ViewDefinition& general) {
  return BranchImplied(PositionViewOf(specific), PositionViewOf(general));
}

std::vector<AtomDisclosure> AtomDisclosuresOf(const ViewDefinition& def) {
  PositionView pv = PositionViewOf(def);
  if (!pv.well_formed) return {};

  // Flat-position range of each atom.
  std::vector<int> start(def.tuples.size() + 1, 0);
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    start[a + 1] = start[a] + def.tuples[a].arity();
  }
  auto atom_of_position = [&](int position) -> size_t {
    size_t a = 0;
    while (a + 1 < def.tuples.size() && position >= start[a + 1]) ++a;
    return a;
  };

  // Positions whose constraints cross an atom boundary: dropping the
  // partner term makes the owning atom's region approximate.
  std::vector<bool> inexact(def.tuples.size(), false);
  for (const ConstraintAtom& atom : pv.constraints.ExportAtoms()) {
    if (!atom.rhs_is_term) continue;
    size_t lhs_atom = atom_of_position(atom.lhs);
    size_t rhs_atom = atom_of_position(atom.rhs_term);
    if (lhs_atom != rhs_atom) {
      inexact[lhs_atom] = true;
      inexact[rhs_atom] = true;
    }
  }

  // Which variables join across atoms (occur in more than one atom).
  std::map<VarId, std::set<size_t>> atoms_of_var;
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    for (VarId var : def.tuples[a].CellVars()) {
      atoms_of_var[var].insert(a);
    }
  }

  std::vector<AtomDisclosure> out;
  out.reserve(def.tuples.size());
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    const MetaTuple& tuple = def.tuples[a];
    const RelationSchema& schema =
        def.query.atom_schema(static_cast<int>(a));
    AtomDisclosure d;
    d.relation = def.tuple_relations[a];
    d.region_exact = !inexact[a];
    std::vector<TermId> positions;
    positions.reserve(static_cast<size_t>(tuple.arity()));
    for (int i = 0; i < tuple.arity(); ++i) {
      positions.push_back(start[a] + i);
      d.region.DeclareTermType(i, schema.attribute(i).type);
      const MetaCell& cell = tuple.cells()[static_cast<size_t>(i)];
      if (cell.projected) d.columns.insert(i);
      if (cell.kind == CellKind::kVar &&
          atoms_of_var[cell.var].size() > 1) {
        d.join_columns.insert(i);
      }
    }
    // The atom's share of the branch selection, remapped from flat
    // positions to column indices. The restricted export carries
    // solver-derived consequences (a pin reached through a cross-atom
    // equality lands on this atom's term), so the region is as tight as
    // the decision procedures can make it without the dropped partner
    // terms.
    for (const ConstraintAtom& atom : pv.constraints.ExportAtoms(positions)) {
      if (atom.rhs_is_term) {
        d.region.AddTermTerm(atom.lhs - start[a], atom.op,
                             atom.rhs_term - start[a]);
      } else {
        d.region.AddTermConst(atom.lhs - start[a], atom.op, atom.rhs_const);
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

bool DisclosureCovers(const AtomDisclosure& general,
                      const AtomDisclosure& specific) {
  if (general.relation != specific.relation) return false;
  for (int column : specific.columns) {
    if (!general.columns.contains(column)) return false;
  }
  return specific.region.ImpliesAll(general.region) == Truth::kTrue;
}

bool ViewSubsumes(const std::vector<const ViewDefinition*>& general,
                  const std::vector<const ViewDefinition*>& specific) {
  if (specific.empty() || general.empty()) return false;
  std::vector<PositionView> general_positions;
  general_positions.reserve(general.size());
  for (const ViewDefinition* def : general) {
    general_positions.push_back(PositionViewOf(*def));
  }
  for (const ViewDefinition* narrow : specific) {
    PositionView narrow_position = PositionViewOf(*narrow);
    bool covered = false;
    for (const PositionView& broad : general_positions) {
      if (BranchImplied(narrow_position, broad)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace viewauth
