#include "analysis/view_implication.h"

#include <map>

namespace viewauth {

PositionView PositionViewOf(const ViewDefinition& def) {
  PositionView out;
  out.relations = def.tuple_relations;

  // First pass over the cells: declare position types, pin constants,
  // star projections, and record where each view variable lives.
  std::map<VarId, std::vector<int>> positions_of_var;
  int position = 0;
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    const MetaTuple& tuple = def.tuples[a];
    const RelationSchema& schema =
        def.query.atom_schema(static_cast<int>(a));
    for (int i = 0; i < tuple.arity(); ++i, ++position) {
      const MetaCell& cell = tuple.cells()[static_cast<size_t>(i)];
      out.constraints.DeclareTermType(position, schema.attribute(i).type);
      if (cell.projected) out.projected.insert(position);
      switch (cell.kind) {
        case CellKind::kBlank:
          break;
        case CellKind::kConst:
          out.constraints.AddTermConst(position, Comparator::kEq,
                                       cell.constant);
          break;
        case CellKind::kVar:
          positions_of_var[cell.var].push_back(position);
          break;
      }
    }
  }

  // Shared variables equate their positions.
  for (const auto& [var, positions] : positions_of_var) {
    (void)var;
    for (size_t i = 1; i < positions.size(); ++i) {
      out.constraints.AddTermTerm(positions[0], Comparator::kEq,
                                  positions[i]);
    }
  }

  // Rewrite the view's comparison store from variables to positions. The
  // canonical export collapses solver-derived consequences, so the
  // rewritten set is equivalent to the stored one.
  if (def.tuples.empty()) return out;
  const ConstraintSet& store = def.tuples.front().constraints();
  auto position_of = [&](VarId var) -> int {
    auto it = positions_of_var.find(var);
    if (it == positions_of_var.end()) return -1;
    return it->second.front();
  };
  for (const ConstraintAtom& atom : store.ExportAtoms()) {
    int lhs = position_of(atom.lhs);
    if (lhs < 0) {
      out.well_formed = false;  // vacuous comparison: unbound variable
      continue;
    }
    if (atom.rhs_is_term) {
      int rhs = position_of(atom.rhs_term);
      if (rhs < 0) {
        out.well_formed = false;
        continue;
      }
      out.constraints.AddTermTerm(lhs, atom.op, rhs);
    } else {
      out.constraints.AddTermConst(lhs, atom.op, atom.rhs_const);
    }
  }
  return out;
}

bool BranchImplied(const PositionView& specific,
                   const PositionView& general) {
  if (!specific.well_formed || !general.well_formed) return false;
  if (specific.relations != general.relations) return false;
  // Projection containment: every delivered position of the narrow view
  // is delivered by the broad one.
  for (int position : specific.projected) {
    if (!general.projected.contains(position)) return false;
  }
  // Selection implication: every row the narrow view selects, the broad
  // view selects. Unsatisfiable specifics are vacuously implied (and
  // flagged separately by the unsat-view check).
  return specific.constraints.ImpliesAll(general.constraints) ==
         Truth::kTrue;
}

bool BranchImplied(const ViewDefinition& specific,
                   const ViewDefinition& general) {
  return BranchImplied(PositionViewOf(specific), PositionViewOf(general));
}

bool ViewSubsumes(const std::vector<const ViewDefinition*>& general,
                  const std::vector<const ViewDefinition*>& specific) {
  if (specific.empty() || general.empty()) return false;
  std::vector<PositionView> general_positions;
  general_positions.reserve(general.size());
  for (const ViewDefinition* def : general) {
    general_positions.push_back(PositionViewOf(*def));
  }
  for (const ViewDefinition* narrow : specific) {
    PositionView narrow_position = PositionViewOf(*narrow);
    bool covered = false;
    for (const PositionView& broad : general_positions) {
      if (BranchImplied(narrow_position, broad)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace viewauth
