// Meta-tuples and meta-relations (paper Section 3).
//
// A meta-tuple defines a subview (a selection plus a projection) of one
// relation. Each cell is blank, a constant, or a variable, optionally
// "starred" (projected). Variables shared between meta-tuples express
// join conditions; comparative subformulas on variables live in the
// COMPARISON store, represented here as a ConstraintSet carried inside
// the tuple.
//
// Beyond the paper's printed form, each MetaTuple carries provenance that
// the Section 4.1 pruning step needs:
//   * `origin_atoms`: which membership atoms (of which views) this tuple
//     covers — a combined tuple produced by meta-products covers the
//     atoms of all its factors;
//   * `var_atoms`: for each variable, the set of membership atoms of its
//     defining view that mention it. A variable is *dangling* in a tuple
//     when some of its defining atoms are not among the tuple's origins —
//     the tuple then "contains references to meta-tuples outside A'" and
//     must be pruned after products.

#ifndef VIEWAUTH_META_META_TUPLE_H_
#define VIEWAUTH_META_META_TUPLE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "predicate/constraint.h"
#include "schema/schema.h"
#include "types/value.h"

namespace viewauth {

// Globally unique ids, assigned by the ViewCatalog at view-compile time.
using VarId = int;
using AtomId = int;

enum class CellKind { kBlank, kConst, kVar };

struct MetaCell {
  CellKind kind = CellKind::kBlank;
  bool projected = false;  // the '*' suffix
  Value constant;          // kConst
  VarId var = -1;          // kVar

  static MetaCell Blank(bool starred = false) {
    MetaCell cell;
    cell.projected = starred;
    return cell;
  }
  static MetaCell Const(Value value, bool starred) {
    MetaCell cell;
    cell.kind = CellKind::kConst;
    cell.constant = std::move(value);
    cell.projected = starred;
    return cell;
  }
  static MetaCell Var(VarId var, bool starred) {
    MetaCell cell;
    cell.kind = CellKind::kVar;
    cell.var = var;
    cell.projected = starred;
    return cell;
  }

  bool is_blank() const { return kind == CellKind::kBlank; }
  bool operator==(const MetaCell& other) const;

  // Paper notation: "" (blank), "*", "Acme", "Acme*", "x1", "x1*".
  // `var_namer` renders variable ids.
  std::string ToString(
      const std::function<std::string(VarId)>& var_namer) const;
};

class MetaTuple {
 public:
  MetaTuple() = default;

  std::vector<MetaCell>& cells() { return cells_; }
  const std::vector<MetaCell>& cells() const { return cells_; }
  int arity() const { return static_cast<int>(cells_.size()); }

  ConstraintSet& constraints() { return constraints_; }
  const ConstraintSet& constraints() const { return constraints_; }

  std::set<std::string>& views() { return views_; }
  const std::set<std::string>& views() const { return views_; }

  std::map<VarId, std::set<AtomId>>& var_atoms() { return var_atoms_; }
  const std::map<VarId, std::set<AtomId>>& var_atoms() const {
    return var_atoms_;
  }

  std::multiset<AtomId>& origin_atoms() { return origin_atoms_; }
  const std::multiset<AtomId>& origin_atoms() const { return origin_atoms_; }

  // All variables appearing in cells (with duplicates collapsed).
  std::set<VarId> CellVars() const;
  // Cell positions of a variable.
  std::vector<int> CellsOfVar(VarId var) const;

  // True when some cell variable's defining atoms are not all covered by
  // this tuple's origins (paper: references a meta-tuple outside A').
  bool HasDanglingVariable() const;

  // Drops a variable from the tuple: its cells become blank (projection
  // flags preserved), its bookkeeping and constraints are removed. Used
  // by the "clear the field" case of the selection refinement.
  void ClearVariable(VarId var);

  // Combined label, e.g. "EST,SAE".
  std::string ViewLabel() const;

  // A canonical key for duplicate elimination: cell structure plus the
  // exported (normalized) constraints over cell variables. Provenance
  // (origin atoms / variable atom sets) is part of the key by default —
  // two tuples with identical cells may still behave differently under a
  // later product's dangling pruning. Once all products are done (the
  // final mask), provenance no longer matters and can be excluded.
  std::string StructuralKey(bool include_provenance = true) const;

  // Paper-style rendering of the cells, e.g. "(x1*, *, )".
  std::string ToString(
      const std::function<std::string(VarId)>& var_namer) const;

 private:
  std::vector<MetaCell> cells_;
  ConstraintSet constraints_;
  std::set<std::string> views_;
  std::map<VarId, std::set<AtomId>> var_atoms_;
  std::multiset<AtomId> origin_atoms_;
};

// A meta-relation: a list of meta-tuples over a common column layout.
// During manipulation the columns are those of the (product of) operand
// relations; the VIEW attribute of the stored form is carried as
// MetaTuple::views() labels instead (the paper drops it during
// manipulation too — Section 4 footnote 3).
class MetaRelation {
 public:
  MetaRelation() = default;
  explicit MetaRelation(std::vector<Attribute> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Attribute>& columns() const { return columns_; }
  int arity() const { return static_cast<int>(columns_.size()); }

  std::vector<MetaTuple>& tuples() { return tuples_; }
  const std::vector<MetaTuple>& tuples() const { return tuples_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  void Add(MetaTuple tuple) { tuples_.push_back(std::move(tuple)); }

  // Multi-line table rendering in the paper's style.
  std::string ToString(
      const std::function<std::string(VarId)>& var_namer) const;

 private:
  std::vector<Attribute> columns_;
  std::vector<MetaTuple> tuples_;
};

// Default variable renderer: "x<id>".
std::string DefaultVarName(VarId var);

}  // namespace viewauth

#endif  // VIEWAUTH_META_META_TUPLE_H_
