#include "meta/ops.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace viewauth {

namespace {

// Merges the bookkeeping of two factor tuples into a combined tuple.
// Variable->atoms maps agree where they overlap (same view, same
// variable), so plain union is correct; origins accumulate as a multiset.
void MergeBookkeeping(const MetaTuple& from, MetaTuple* into) {
  into->constraints().AddAll(from.constraints());
  for (const std::string& view : from.views()) into->views().insert(view);
  for (const auto& [var, atoms] : from.var_atoms()) {
    into->var_atoms()[var].insert(atoms.begin(), atoms.end());
  }
  for (AtomId atom : from.origin_atoms()) {
    into->origin_atoms().insert(atom);
  }
}

std::vector<MetaCell> BlankCells(int n) {
  return std::vector<MetaCell>(static_cast<size_t>(n), MetaCell::Blank());
}

}  // namespace

MetaRelation MetaProduct(const MetaRelation& left, const MetaRelation& right,
                         const MetaOpOptions& options, ExecContext* ctx) {
  std::vector<Attribute> columns = left.columns();
  columns.insert(columns.end(), right.columns().begin(),
                 right.columns().end());
  MetaRelation out(std::move(columns));
  // Meta-tuples are heavier than data rows (cells + bookkeeping maps);
  // the byte charge is a flat per-cell estimate.
  const long long tuple_bytes = 64 * out.arity();
  ExecMeter meter(ctx);

  for (const MetaTuple& l : left.tuples()) {
    for (const MetaTuple& r : right.tuples()) {
      if (!meter.Tick(1, tuple_bytes)) return out;
      MetaTuple q;
      q.cells() = l.cells();
      q.cells().insert(q.cells().end(), r.cells().begin(), r.cells().end());
      MergeBookkeeping(l, &q);
      MergeBookkeeping(r, &q);
      out.Add(std::move(q));
    }
  }

  if (options.padding) {
    // q1 = (a_1..a_m, blank...)  and  q2 = (blank..., b_1..b_n): the
    // factors' subviews remain subviews of the product (Section 4.2).
    for (const MetaTuple& l : left.tuples()) {
      if (!meter.Tick(1, tuple_bytes)) return out;
      MetaTuple q = l;
      std::vector<MetaCell> pad = BlankCells(right.arity());
      q.cells().insert(q.cells().end(), pad.begin(), pad.end());
      out.Add(std::move(q));
    }
    for (const MetaTuple& r : right.tuples()) {
      if (!meter.Tick(1, tuple_bytes)) return out;
      MetaTuple q;
      q.cells() = BlankCells(left.arity());
      q.cells().insert(q.cells().end(), r.cells().begin(), r.cells().end());
      MergeBookkeeping(r, &q);
      out.Add(std::move(q));
    }
  }
  return out;
}

namespace {

// Outcome of the four-case analysis for one tuple.
enum class SelectOutcome { kKeep, kDiscard };

// Ensures a variable id exists for a blank cell so that a constraint can
// be recorded against it (base-mode conjoin; overlap conjoins with a
// column-column predicate). The synthetic variable has no defining atoms
// and therefore never dangles.
VarId MaterializeVar(MetaTuple* tuple, int column, ValueType type,
                     VarAllocator* alloc) {
  VarId var = alloc->Next();
  bool starred = tuple->cells()[column].projected;
  tuple->cells()[column] = MetaCell::Var(var, starred);
  tuple->constraints().DeclareTermType(var, type);
  return var;
}

// Can the variable's predicate be considered in isolation and replaced by
// blank when implied by the query predicate? Requires: the variable is
// not dangling, does not relate to other variables, and occupies exactly
// the given cells.
bool VariableIsLocal(const MetaTuple& tuple, VarId var,
                     const std::vector<int>& expected_cells) {
  if (tuple.CellsOfVar(var) != expected_cells) return false;
  auto it = tuple.var_atoms().find(var);
  if (it != tuple.var_atoms().end()) {
    for (AtomId atom : it->second) {
      if (!tuple.origin_atoms().contains(atom)) return false;
    }
  }
  return !tuple.constraints().InteractsWithOtherTerms(var);
}

// Does `lambda` (a single atom over `var`) imply every constant
// constraint the tuple places on `var`?
bool LambdaImpliesMu(const MetaTuple& tuple, VarId var, ValueType type,
                     const ConstraintAtom& lambda) {
  ConstraintSet lambda_set;
  lambda_set.DeclareTermType(var, type);
  lambda_set.Add(lambda);
  std::vector<ConstraintAtom> mu_atoms =
      tuple.constraints().ExportAtoms({var});
  for (const ConstraintAtom& atom : mu_atoms) {
    if (lambda_set.Implies(atom) != Truth::kTrue) return false;
  }
  return true;
}

// Handles `column theta constant` against one tuple. Returns kDiscard to
// drop the tuple; mutates it otherwise.
SelectOutcome SelectColumnConst(MetaTuple* tuple, int column, Comparator op,
                                const Value& constant, ValueType column_type,
                                const MetaOpOptions& options,
                                VarAllocator* alloc) {
  MetaCell& cell = tuple->cells()[column];
  if (!cell.projected) {
    // Definition 2 requires the selected attribute to be projected;
    // filtering on an attribute the view withholds would leak it. The
    // refinement: when the view's own predicate mu provably implies
    // lambda, the selection is a no-op on the subview ("mu AND lambda is
    // simply mu") and the tuple is retained; when they are equivalent,
    // the cell can even be cleared, letting the tuple survive a later
    // projection that removes this column.
    if (!options.four_case) return SelectOutcome::kDiscard;
    switch (cell.kind) {
      case CellKind::kBlank:
        return SelectOutcome::kDiscard;  // mu is true: implies nothing
      case CellKind::kConst: {
        if (!cell.constant.Satisfies(op, constant)) {
          return SelectOutcome::kDiscard;
        }
        if (op == Comparator::kEq) {
          cell = MetaCell::Blank(/*starred=*/false);  // equivalent: clear
        }
        return SelectOutcome::kKeep;
      }
      case CellKind::kVar: {
        const VarId var = cell.var;
        ConstraintAtom lambda = ConstraintAtom::TermConst(var, op, constant);
        if (tuple->constraints().Implies(lambda) != Truth::kTrue) {
          return SelectOutcome::kDiscard;
        }
        if (VariableIsLocal(*tuple, var, {column}) &&
            LambdaImpliesMu(*tuple, var, column_type, lambda)) {
          tuple->ClearVariable(var);  // equivalent: clear
        }
        return SelectOutcome::kKeep;
      }
    }
    return SelectOutcome::kDiscard;
  }

  switch (cell.kind) {
    case CellKind::kBlank: {
      if (options.four_case) {
        // mu is true; lambda implies mu: clear (no change).
        return SelectOutcome::kKeep;
      }
      // Base mode: represent mu AND lambda in the cell.
      if (op == Comparator::kEq) {
        cell = MetaCell::Const(constant, /*starred=*/true);
      } else {
        VarId var = MaterializeVar(tuple, column, column_type, alloc);
        tuple->constraints().AddTermConst(var, op, constant);
      }
      return SelectOutcome::kKeep;
    }
    case CellKind::kConst: {
      // mu is (A = v). Either lambda fixes the same value (clear), or v
      // satisfies lambda (retain), or they contradict (discard).
      const bool satisfied = cell.constant.Satisfies(op, constant);
      if (options.four_case && op == Comparator::kEq && satisfied) {
        cell = MetaCell::Blank(/*starred=*/true);
        return SelectOutcome::kKeep;
      }
      return satisfied ? SelectOutcome::kKeep : SelectOutcome::kDiscard;
    }
    case CellKind::kVar: {
      const VarId var = cell.var;
      ConstraintAtom lambda = ConstraintAtom::TermConst(var, op, constant);
      if (options.four_case) {
        // Case 1: lambda implies mu -> clear the field.
        if (VariableIsLocal(*tuple, var, {column}) &&
            LambdaImpliesMu(*tuple, var, column_type, lambda)) {
          tuple->ClearVariable(var);
          return SelectOutcome::kKeep;
        }
        // Case 2: mu implies lambda -> retain unmodified.
        Truth implied = tuple->constraints().Implies(lambda);
        if (implied == Truth::kTrue) return SelectOutcome::kKeep;
        // Case 3: contradiction -> discard.
        if (implied == Truth::kFalse) return SelectOutcome::kDiscard;
      }
      // Case 4 (and base mode): conjoin mu AND lambda.
      tuple->constraints().Add(lambda);
      if (!tuple->constraints().IsSatisfiable()) {
        return SelectOutcome::kDiscard;
      }
      return SelectOutcome::kKeep;
    }
  }
  return SelectOutcome::kDiscard;
}

// Blanks one cell of a kept tuple, preserving its star. Sound for
// equality selections: on the answer (whose rows all satisfy
// column_i = column_j) the blanked description selects exactly the same
// rows, and the blanked side survives projections that remove it.
void EmitEqualityVariants(const MetaTuple& kept, int lhs, int rhs,
                          std::vector<MetaTuple>* extras) {
  for (int col : {lhs, rhs}) {
    if (kept.cells()[col].is_blank()) continue;
    MetaTuple variant = kept;
    const bool starred = variant.cells()[col].projected;
    variant.cells()[col] = MetaCell::Blank(starred);
    extras->push_back(std::move(variant));
  }
}

// Handles `column_i theta column_j` against one tuple.
SelectOutcome SelectColumnColumn(MetaTuple* tuple, int lhs, int rhs,
                                 Comparator op, ValueType lhs_type,
                                 ValueType rhs_type,
                                 const MetaOpOptions& options,
                                 VarAllocator* alloc) {
  // Degenerate predicate on a single column (A theta A): trivially true
  // or trivially false for every tuple, projected or not.
  if (lhs == rhs) {
    switch (op) {
      case Comparator::kEq:
      case Comparator::kLe:
      case Comparator::kGe:
        return SelectOutcome::kKeep;
      case Comparator::kNe:
      case Comparator::kLt:
      case Comparator::kGt:
        return SelectOutcome::kDiscard;
    }
    return SelectOutcome::kKeep;
  }

  MetaCell& lcell = tuple->cells()[lhs];
  MetaCell& rcell = tuple->cells()[rhs];

  const bool same_var = lcell.kind == CellKind::kVar &&
                        rcell.kind == CellKind::kVar &&
                        lcell.var == rcell.var;

  if (!lcell.projected || !rcell.projected) {
    // Definition 2 requires both attributes to be projected. Refinement:
    // when the tuple's own predicate mu provably implies lambda, the
    // selection is a no-op on the subview and the tuple is retained (the
    // same-variable equality case can even be cleared).
    if (!options.four_case) return SelectOutcome::kDiscard;
    if (same_var) {
      switch (op) {
        case Comparator::kEq:
          if (VariableIsLocal(*tuple, lcell.var,
                              {std::min(lhs, rhs), std::max(lhs, rhs)}) &&
              tuple->constraints().IsUnconstrained(lcell.var)) {
            tuple->ClearVariable(lcell.var);  // equivalent: clear
          }
          return SelectOutcome::kKeep;
        case Comparator::kLe:
        case Comparator::kGe:
          return SelectOutcome::kKeep;
        case Comparator::kNe:
        case Comparator::kLt:
        case Comparator::kGt:
          return SelectOutcome::kDiscard;
      }
      return SelectOutcome::kDiscard;
    }
    Truth implied = Truth::kUnknown;
    if (lcell.kind == CellKind::kConst && rcell.kind == CellKind::kConst) {
      implied = lcell.constant.Satisfies(op, rcell.constant)
                    ? Truth::kTrue
                    : Truth::kFalse;
    } else if (lcell.kind == CellKind::kVar &&
               rcell.kind == CellKind::kVar) {
      implied = tuple->constraints().Implies(
          ConstraintAtom::TermTerm(lcell.var, op, rcell.var));
    } else if (lcell.kind == CellKind::kVar &&
               rcell.kind == CellKind::kConst) {
      implied = tuple->constraints().Implies(
          ConstraintAtom::TermConst(lcell.var, op, rcell.constant));
    } else if (lcell.kind == CellKind::kConst &&
               rcell.kind == CellKind::kVar) {
      implied = tuple->constraints().Implies(ConstraintAtom::TermConst(
          rcell.var, ReverseComparator(op), lcell.constant));
    }
    // A blank side leaves mu unable to imply lambda.
    return implied == Truth::kTrue ? SelectOutcome::kKeep
                                   : SelectOutcome::kDiscard;
  }

  // Both blank: mu is true, lambda implies it - clear / no change. (In
  // base mode, materialize both sides and fall through to the conjoin.)
  if (lcell.is_blank() && rcell.is_blank()) {
    if (options.four_case) return SelectOutcome::kKeep;
    VarId lv = MaterializeVar(tuple, lhs, lhs_type, alloc);
    if (op == Comparator::kEq) {
      tuple->cells()[rhs] = MetaCell::Var(lv, rcell.projected);
    } else {
      VarId rv = MaterializeVar(tuple, rhs, rhs_type, alloc);
      tuple->constraints().AddTermTerm(lv, op, rv);
    }
    return SelectOutcome::kKeep;
  }

  // Both constants: evaluate directly.
  if (lcell.kind == CellKind::kConst && rcell.kind == CellKind::kConst) {
    return lcell.constant.Satisfies(op, rcell.constant)
               ? SelectOutcome::kKeep
               : SelectOutcome::kDiscard;
  }

  // A blank against a non-blank: absorb the non-blank side's term.
  if (lcell.is_blank() || rcell.is_blank()) {
    const bool blank_is_lhs = lcell.is_blank();
    const int blank_col = blank_is_lhs ? lhs : rhs;
    const ValueType blank_type = blank_is_lhs ? lhs_type : rhs_type;
    MetaCell& other = blank_is_lhs ? rcell : lcell;
    if (op == Comparator::kEq) {
      // The blank column simply mirrors the other side.
      if (other.kind == CellKind::kConst) {
        tuple->cells()[blank_col] =
            MetaCell::Const(other.constant,
                            tuple->cells()[blank_col].projected);
      } else {
        tuple->cells()[blank_col] =
            MetaCell::Var(other.var, tuple->cells()[blank_col].projected);
      }
      return SelectOutcome::kKeep;
    }
    VarId blank_var = MaterializeVar(tuple, blank_col, blank_type, alloc);
    // Orient the constraint as lhs-op-rhs.
    if (other.kind == CellKind::kConst) {
      Comparator oriented = blank_is_lhs ? op : ReverseComparator(op);
      tuple->constraints().AddTermConst(blank_var, oriented, other.constant);
    } else {
      if (blank_is_lhs) {
        tuple->constraints().AddTermTerm(blank_var, op, other.var);
      } else {
        tuple->constraints().AddTermTerm(other.var, op, blank_var);
      }
    }
    if (!tuple->constraints().IsSatisfiable()) {
      return SelectOutcome::kDiscard;
    }
    return SelectOutcome::kKeep;
  }

  // Variable against constant: reduce to a column-const selection on the
  // variable side, with the comparator oriented accordingly.
  if (lcell.kind == CellKind::kVar && rcell.kind == CellKind::kConst) {
    return SelectColumnConst(tuple, lhs, op, rcell.constant, lhs_type,
                             options, alloc);
  }
  if (lcell.kind == CellKind::kConst && rcell.kind == CellKind::kVar) {
    return SelectColumnConst(tuple, rhs, ReverseComparator(op),
                             lcell.constant, rhs_type, options, alloc);
  }

  // Variable against variable.
  const VarId x = lcell.var;
  const VarId y = rcell.var;
  if (x == y) {
    switch (op) {
      case Comparator::kEq:
      case Comparator::kLe:
      case Comparator::kGe: {
        if (options.four_case && op == Comparator::kEq &&
            VariableIsLocal(*tuple, x, {std::min(lhs, rhs),
                                        std::max(lhs, rhs)}) &&
            tuple->constraints().IsUnconstrained(x)) {
          // mu is exactly A_i = A_j: lambda and mu are equivalent; clear.
          tuple->ClearVariable(x);
        }
        return SelectOutcome::kKeep;  // x = x satisfies =, <=, >=
      }
      case Comparator::kNe:
      case Comparator::kLt:
      case Comparator::kGt:
        return SelectOutcome::kDiscard;  // x != x etc. are contradictions
    }
    return SelectOutcome::kKeep;
  }

  ConstraintAtom lambda = ConstraintAtom::TermTerm(x, op, y);
  if (options.four_case) {
    Truth implied = tuple->constraints().Implies(lambda);
    if (implied == Truth::kTrue) return SelectOutcome::kKeep;
    if (implied == Truth::kFalse) return SelectOutcome::kDiscard;
    if (op == Comparator::kEq && VariableIsLocal(*tuple, x, {lhs}) &&
        VariableIsLocal(*tuple, y, {rhs}) &&
        tuple->constraints().IsUnconstrained(x) &&
        tuple->constraints().IsUnconstrained(y)) {
      // mu only names the two columns; lambda makes them equal, which is
      // all mu could express — clear both fields.
      tuple->ClearVariable(x);
      tuple->ClearVariable(y);
      return SelectOutcome::kKeep;
    }
  }
  tuple->constraints().Add(lambda);
  if (!tuple->constraints().IsSatisfiable()) {
    return SelectOutcome::kDiscard;
  }
  return SelectOutcome::kKeep;
}

}  // namespace

MetaRelation MetaSelect(const MetaRelation& input, const MetaSelection& sel,
                        const MetaOpOptions& options, VarAllocator* alloc,
                        ExecContext* ctx) {
  VIEWAUTH_CHECK(sel.lhs_column >= 0 && sel.lhs_column < input.arity())
      << "selection column out of range";
  MetaRelation out(input.columns());
  const ValueType lhs_type = input.columns()[sel.lhs_column].type;
  ExecMeter meter(ctx);
  for (const MetaTuple& tuple : input.tuples()) {
    if (!meter.TickRows(1)) return out;
    MetaTuple candidate = tuple;
    SelectOutcome outcome;
    if (sel.rhs_is_column) {
      VIEWAUTH_CHECK(sel.rhs_column >= 0 && sel.rhs_column < input.arity())
          << "selection column out of range";
      const ValueType rhs_type = input.columns()[sel.rhs_column].type;
      outcome =
          SelectColumnColumn(&candidate, sel.lhs_column, sel.rhs_column,
                             sel.op, lhs_type, rhs_type, options, alloc);
    } else {
      outcome = SelectColumnConst(&candidate, sel.lhs_column, sel.op,
                                  sel.rhs_const, lhs_type, options, alloc);
    }
    if (outcome == SelectOutcome::kKeep) {
      // Equality selections duplicate information across the two equal
      // columns, so each side may alternatively be blanked — the variants
      // describe the same delivered set on this answer, and a blanked
      // side survives projections that remove its column.
      if (options.four_case && sel.rhs_is_column &&
          sel.op == Comparator::kEq) {
        std::vector<MetaTuple> variants;
        EmitEqualityVariants(candidate, sel.lhs_column, sel.rhs_column,
                             &variants);
        for (MetaTuple& variant : variants) {
          out.Add(std::move(variant));
        }
      }
      out.Add(std::move(candidate));
    }
  }
  return RemoveDuplicates(out);
}

MetaRelation MetaProject(const MetaRelation& input,
                         const std::vector<int>& keep) {
  std::vector<Attribute> columns;
  columns.reserve(keep.size());
  for (int c : keep) {
    VIEWAUTH_CHECK(c >= 0 && c < input.arity())
        << "projection column out of range";
    columns.push_back(input.columns()[c]);
  }
  std::set<int> kept(keep.begin(), keep.end());

  MetaRelation out(std::move(columns));
  for (const MetaTuple& tuple : input.tuples()) {
    // Definition 3: a removed attribute must be blank.
    bool droppable = true;
    for (int c = 0; c < tuple.arity(); ++c) {
      if (!kept.contains(c) && !tuple.cells()[c].is_blank()) {
        droppable = false;
        break;
      }
    }
    if (!droppable) continue;
    MetaTuple projected = tuple;
    std::vector<MetaCell> cells;
    cells.reserve(keep.size());
    for (int c : keep) cells.push_back(tuple.cells()[c]);
    projected.cells() = std::move(cells);
    out.Add(std::move(projected));
  }
  return out;
}

void ClearImpliedRestrictions(MetaRelation* rel, const ConstraintSet& lambda,
                              const std::function<TermId(int)>& column_term) {
  for (MetaTuple& tuple : rel->tuples()) {
    // Constant cells: cleared when the query already pins the column.
    for (int c = 0; c < tuple.arity(); ++c) {
      MetaCell& cell = tuple.cells()[c];
      if (cell.kind != CellKind::kConst) continue;
      Truth implied = lambda.Implies(ConstraintAtom::TermConst(
          column_term(c), Comparator::kEq, cell.constant));
      if (implied == Truth::kTrue) {
        cell = MetaCell::Blank(cell.projected);
      }
    }
    // Variable cells: cleared when the query implies both the variable's
    // constant constraints and (for shared variables) the equality of its
    // columns. Only variables whose constraints are self-contained (no
    // relations to other variables, no dangling atoms) qualify.
    for (VarId var : tuple.CellVars()) {
      std::vector<int> cells = tuple.CellsOfVar(var);
      if (!VariableIsLocal(tuple, var, cells)) continue;
      bool all_implied = true;
      for (size_t i = 1; i < cells.size() && all_implied; ++i) {
        all_implied = lambda.Implies(ConstraintAtom::TermTerm(
                          column_term(cells[0]), Comparator::kEq,
                          column_term(cells[i]))) == Truth::kTrue;
      }
      for (const ConstraintAtom& atom :
           tuple.constraints().ExportAtoms({var})) {
        if (!all_implied) break;
        if (atom.rhs_is_term) {
          all_implied = false;  // relates to another term after all
          break;
        }
        all_implied = lambda.Implies(ConstraintAtom::TermConst(
                          column_term(cells[0]), atom.op,
                          atom.rhs_const)) == Truth::kTrue;
      }
      if (all_implied) tuple.ClearVariable(var);
    }
  }
}

MetaRelation PruneDanglingTuples(const MetaRelation& input) {
  MetaRelation out(input.columns());
  for (const MetaTuple& tuple : input.tuples()) {
    if (!tuple.HasDanglingVariable()) out.Add(tuple);
  }
  return out;
}

MetaRelation RemoveDuplicates(const MetaRelation& input,
                              bool respect_provenance) {
  MetaRelation out(input.columns());
  std::set<std::string> seen;
  for (const MetaTuple& tuple : input.tuples()) {
    if (seen.insert(tuple.StructuralKey(respect_provenance)).second) {
      out.Add(tuple);
    }
  }
  return out;
}

namespace {

// Structural key ignoring projection flags and provenance, for
// subsumption grouping (subsumption runs on the final mask only).
std::string SelectionOnlyKey(const MetaTuple& tuple) {
  MetaTuple stripped = tuple;
  for (MetaCell& cell : stripped.cells()) cell.projected = false;
  return stripped.StructuralKey(/*include_provenance=*/false);
}

std::set<int> ProjectedColumns(const MetaTuple& tuple) {
  std::set<int> cols;
  for (int i = 0; i < tuple.arity(); ++i) {
    if (tuple.cells()[i].projected) cols.insert(i);
  }
  return cols;
}

bool IsUnrestricted(const MetaTuple& tuple) {
  for (const MetaCell& cell : tuple.cells()) {
    if (!cell.is_blank()) return false;
  }
  return tuple.constraints().atom_count() == 0;
}

}  // namespace

MetaRelation RemoveSubsumed(const MetaRelation& input) {
  const int n = input.size();
  std::vector<bool> dead(static_cast<size_t>(n), false);
  std::vector<std::set<int>> projections;
  projections.reserve(static_cast<size_t>(n));
  for (const MetaTuple& tuple : input.tuples()) {
    projections.push_back(ProjectedColumns(tuple));
  }

  // Rule 1: within a group of identical selection structure, keep only
  // tuples whose projection set is maximal.
  std::map<std::string, std::vector<int>> groups;
  for (int i = 0; i < n; ++i) {
    groups[SelectionOnlyKey(input.tuples()[i])].push_back(i);
  }
  for (const auto& [key, members] : groups) {
    (void)key;
    for (int i : members) {
      if (dead[i]) continue;
      for (int j : members) {
        if (i == j || dead[j] || dead[i]) continue;
        const bool superset =
            std::includes(projections[i].begin(), projections[i].end(),
                          projections[j].begin(), projections[j].end());
        if (superset && (projections[i] != projections[j] || j > i)) {
          dead[j] = true;
        }
      }
    }
  }

  // Rule 2: an unrestricted tuple absorbs any tuple projecting a subset
  // of its columns. Unrestricted tuples are few; scan against them only.
  std::vector<int> unrestricted;
  for (int i = 0; i < n; ++i) {
    if (!dead[i] && IsUnrestricted(input.tuples()[i])) {
      unrestricted.push_back(i);
    }
  }
  for (int j = 0; j < n; ++j) {
    if (dead[j]) continue;
    for (int i : unrestricted) {
      if (i == j || dead[i]) continue;
      if (std::includes(projections[i].begin(), projections[i].end(),
                        projections[j].begin(), projections[j].end())) {
        dead[j] = true;
        break;
      }
    }
  }

  MetaRelation out(input.columns());
  for (int i = 0; i < n; ++i) {
    if (!dead[i]) out.Add(input.tuples()[i]);
  }
  return out;
}

}  // namespace viewauth
