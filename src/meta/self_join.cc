#include "meta/self_join.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/logging.h"

namespace viewauth {

namespace {

void MergeBookkeeping(const MetaTuple& from, MetaTuple* into) {
  into->constraints().AddAll(from.constraints());
  for (const std::string& view : from.views()) into->views().insert(view);
  for (const auto& [var, atoms] : from.var_atoms()) {
    into->var_atoms()[var].insert(atoms.begin(), atoms.end());
  }
  for (AtomId atom : from.origin_atoms()) into->origin_atoms().insert(atom);
}

}  // namespace

std::optional<MetaTuple> SelfJoinPair(const MetaTuple& r, const MetaTuple& s,
                                      const RelationSchema& schema) {
  VIEWAUTH_CHECK(r.arity() == s.arity() &&
                 r.arity() == schema.arity())
      << "self-join arity mismatch";
  // The paper restricts self-joins to tuples of different views.
  for (const std::string& view : r.views()) {
    if (s.views().contains(view)) return std::nullopt;
  }
  // Lossless join requires both projections to include the key.
  if (!schema.has_key()) return std::nullopt;
  for (int k : schema.key()) {
    if (!r.cells()[k].projected || !s.cells()[k].projected) {
      return std::nullopt;
    }
  }

  MetaTuple joined;
  joined.cells().reserve(static_cast<size_t>(r.arity()));
  MergeBookkeeping(r, &joined);
  MergeBookkeeping(s, &joined);

  for (int i = 0; i < r.arity(); ++i) {
    const MetaCell& a = r.cells()[i];
    const MetaCell& b = s.cells()[i];
    const bool starred = a.projected || b.projected;
    // The joined column must satisfy both sides' cell predicates.
    if (a.is_blank()) {
      MetaCell cell = b;
      cell.projected = starred;
      joined.cells().push_back(std::move(cell));
      continue;
    }
    if (b.is_blank()) {
      MetaCell cell = a;
      cell.projected = starred;
      joined.cells().push_back(std::move(cell));
      continue;
    }
    if (a.kind == CellKind::kConst && b.kind == CellKind::kConst) {
      if (!(a.constant == b.constant) &&
          !a.constant.Satisfies(Comparator::kEq, b.constant)) {
        return std::nullopt;  // contradictory selections: empty join
      }
      joined.cells().push_back(MetaCell::Const(a.constant, starred));
      continue;
    }
    if (a.kind == CellKind::kVar && b.kind == CellKind::kVar) {
      joined.cells().push_back(MetaCell::Var(a.var, starred));
      if (a.var != b.var) {
        joined.constraints().AddTermTerm(a.var, Comparator::kEq, b.var);
      }
      continue;
    }
    // One constant, one variable: keep the variable (it may link other
    // cells or tuples) and pin it to the constant.
    const MetaCell& var_cell = a.kind == CellKind::kVar ? a : b;
    const MetaCell& const_cell = a.kind == CellKind::kConst ? a : b;
    joined.cells().push_back(MetaCell::Var(var_cell.var, starred));
    joined.constraints().AddTermConst(var_cell.var, Comparator::kEq,
                                      const_cell.constant);
  }

  if (!joined.constraints().IsSatisfiable()) return std::nullopt;
  return joined;
}

MetaRelation WithSelfJoins(const MetaRelation& input,
                           const RelationSchema& schema, int rounds) {
  MetaRelation out(input.columns());
  std::set<std::string> seen;
  for (const MetaTuple& tuple : input.tuples()) {
    seen.insert(tuple.StructuralKey());
    out.Add(tuple);
  }
  if (!schema.has_key()) return out;

  // `frontier` holds the tuples produced in the previous round; joins are
  // taken between the frontier and the originals.
  std::vector<MetaTuple> originals = input.tuples();
  std::vector<MetaTuple> frontier = originals;
  for (int round = 0; round < rounds; ++round) {
    std::vector<MetaTuple> produced;
    for (const MetaTuple& r : frontier) {
      for (const MetaTuple& s : originals) {
        std::optional<MetaTuple> joined = SelfJoinPair(r, s, schema);
        if (!joined.has_value()) continue;
        std::string key = joined->StructuralKey();
        if (!seen.insert(key).second) continue;
        out.Add(*joined);
        produced.push_back(std::move(*joined));
      }
    }
    if (produced.empty()) break;
    frontier = std::move(produced);
  }
  return out;
}

}  // namespace viewauth
