// Self-join inference (paper Section 4.2, third refinement, and the
// mechanism behind Example 3).
//
// Two meta-tuples r, s of *different* views stored in the same
// meta-relation whose projections both include the relation's key define
// subviews that join losslessly on that key. Their join is itself a
// permitted subview: cell-wise, constraints conjoin (a blank absorbs the
// other side; a constant against a variable pins the variable) and a cell
// is projected when either side projects it. The paper's example: SAE
// (*, _, *) joined with EST (*, x4*, _) yields (*, x4*, *), which is what
// lets Brown see salaries of same-title pairs.

#ifndef VIEWAUTH_META_SELF_JOIN_H_
#define VIEWAUTH_META_SELF_JOIN_H_

#include <vector>

#include "meta/meta_tuple.h"
#include "schema/schema.h"

namespace viewauth {

// Returns `input` extended with every pairwise self-join of its tuples
// (deduplicated). `schema` supplies the key; relations without a declared
// key yield no self-joins. `rounds` > 1 also joins joined tuples with the
// originals, covering three-or-more-view combinations.
MetaRelation WithSelfJoins(const MetaRelation& input,
                           const RelationSchema& schema, int rounds = 1);

// The pairwise join of two meta-tuples over the same relation, or
// nothing when the tuples belong to overlapping view sets, either misses
// a key column in its projection, or their selections contradict.
std::optional<MetaTuple> SelfJoinPair(const MetaTuple& r, const MetaTuple& s,
                                      const RelationSchema& schema);

}  // namespace viewauth

#endif  // VIEWAUTH_META_SELF_JOIN_H_
