// ViewCatalog: compilation and storage of access permissions
// (paper Section 3).
//
// Each view (a conjunctive query) is compiled into meta-tuples — one per
// membership atom — using the paper's rules:
//   * equality subformulas are substituted away (variables merged,
//     constants propagated);
//   * projection variables (the a's) star every cell of their class;
//   * variables that occur only once and carry no comparative constraint
//     become blanks;
//   * comparative subformulas become COMPARISON entries, held as a
//     ConstraintSet on the view's variables.
//
// The catalog also stores the PERMISSION relation (user -> view grants)
// and can materialize the extended database of Figure 1: for each base
// relation R, the meta-relation R' as an actual Relation whose rows are
// the printable meta-tuples, plus COMPARISON and PERMISSION relations.

#ifndef VIEWAUTH_META_VIEW_STORE_H_
#define VIEWAUTH_META_VIEW_STORE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "meta/meta_tuple.h"
#include "meta/ops.h"
#include "parser/ast.h"
#include "schema/schema.h"
#include "storage/relation.h"

namespace viewauth {

// Access modes for grants. The paper's model covers retrieval; insert
// and delete implement its conclusion (1) ("we see no difficulty in
// extending it to incorporate update permissions"): an update-mode view
// is a window of rows the user may create or remove.
enum class AccessMode { kRetrieve = 0, kInsert = 1, kDelete = 2, kModify = 3 };

std::string_view AccessModeToString(AccessMode mode);

// One entry of the catalog's mutation journal, consumed by the
// authorization cache (authz/authz_cache.h) for selective invalidation.
// Each record names exactly the cached-entry population the mutation can
// affect:
//   * `users` — the users whose retrieval entitlements may have changed,
//     resolved at mutation time (the grantee plus the current members
//     when the grantee is a group);
//   * `scopes` — relation-set scopes; a cached entry is dependent iff
//     its user is in `users` AND some scope is a subset of the entry's
//     recorded relation read set (a mask only embeds a view when the
//     query covers all of the view's relations).
// An empty scope list means the mutation cannot affect any cached
// retrieval entry (e.g. an update-mode grant, or a definition of a view
// nobody holds yet).
struct CatalogMutation {
  enum class Kind {
    kViewDefined = 0,
    kViewDropped = 1,
    kGrantAdded = 2,
    kGrantRevoked = 3,
    kMemberAdded = 4,
    kMemberRemoved = 5,
  };
  long long seq = 0;
  Kind kind = Kind::kGrantAdded;
  // Grant name of the view involved; empty for membership changes.
  std::string view;
  std::vector<std::string> users;
  std::vector<std::set<std::string>> scopes;
};

// One stored COMPARISON row (kept in source form for display; the
// operational form lives in the tuples' ConstraintSets).
struct ComparisonEntry {
  std::string view;
  VarId lhs = -1;
  Comparator op = Comparator::kGe;
  bool rhs_is_var = false;
  VarId rhs_var = -1;
  Value rhs_const;
};

// A compiled view definition.
struct ViewDefinition {
  std::string name;
  ConjunctiveQuery query;
  // One meta-tuple per membership atom, aligned with query.atoms().
  std::vector<MetaTuple> tuples;
  // Relation name of each tuple (== query.atoms()[i].relation).
  std::vector<std::string> tuple_relations;
  // Distinct relation names the view is defined over.
  std::set<std::string> relations;
  // This view's variables, in display order.
  std::vector<VarId> vars;
  // Source-form comparative subformulas.
  std::vector<ComparisonEntry> comparisons;
};

class ViewCatalog {
 public:
  // Non-owning binding: the caller guarantees `schema` outlives the
  // catalog (the standalone-test idiom `ViewCatalog catalog(&db.schema())`).
  // The engine uses the owning overload so catalog snapshots keep their
  // schema alive on their own.
  explicit ViewCatalog(const DatabaseSchema* schema)
      : schema_(schema, [](const DatabaseSchema*) {}) {}
  explicit ViewCatalog(std::shared_ptr<const DatabaseSchema> schema)
      : schema_(std::move(schema)) {}

  ViewCatalog& operator=(const ViewCatalog&) = delete;

  // A deep copy bound to `schema` — how the engine forks the catalog for
  // a copy-on-write snapshot before a catalog mutation. The synthetic
  // variable allocator is intentionally *shared* between the clone and
  // the original: cached masks embed synthetic VarIds, and those ids
  // must stay unique across every catalog version the cache has ever
  // seen (the allocator is atomic, so sharing is thread-safe).
  std::shared_ptr<ViewCatalog> Clone(
      std::shared_ptr<const DatabaseSchema> schema) const {
    auto copy = std::shared_ptr<ViewCatalog>(new ViewCatalog(*this));
    copy->schema_ = std::move(schema);
    return copy;
  }

  // Points an unshared catalog at a (possibly re-created) schema object
  // after DDL cloned it. Definitions are unaffected — the schema's
  // content for already-compiled views is identical.
  void RebindSchema(std::shared_ptr<const DatabaseSchema> schema) {
    schema_ = std::move(schema);
  }

  // Compiles and registers a view. Fails on name clashes, schema errors,
  // or views that provably define the empty relation. A view statement
  // with `or` branches (paper conclusion (2)) compiles every branch as a
  // separate conjunctive definition under the same grant name; granting
  // the view grants all branches. Note the semantics: the user is
  // entitled to each branch as a view of its own (the same entitlement
  // as granting the branches individually), which is strictly more than
  // an opaque union.
  Status DefineView(const ViewStmt& stmt);
  Status DefineView(std::string name, const ConjunctiveQuery& query);
  Status DropView(std::string_view name);

  // PERMISSION maintenance. Permitting requires the view to exist;
  // denying removes an existing grant.
  Status Permit(std::string_view view, std::string_view user,
                AccessMode mode = AccessMode::kRetrieve);
  Status Deny(std::string_view view, std::string_view user,
              AccessMode mode = AccessMode::kRetrieve);

  bool HasView(std::string_view name) const;
  // For disjunctive views, returns the first branch; use GetViewBranches
  // for all of them.
  Result<const ViewDefinition*> GetView(std::string_view name) const;
  Result<std::vector<const ViewDefinition*>> GetViewBranches(
      std::string_view name) const;
  const std::vector<std::string>& view_names() const { return view_order_; }

  // The views granted to `user` for `mode`, in grant order.
  std::vector<const ViewDefinition*> PermittedViews(
      std::string_view user, AccessMode mode = AccessMode::kRetrieve) const;
  bool IsPermitted(std::string_view user, std::string_view view,
                   AccessMode mode = AccessMode::kRetrieve) const;

  // Every user any grant can apply to — direct grantees plus the current
  // members of granted groups — in first-appearance order. The analyzer
  // and the disclosure auditor iterate this so their per-user passes use
  // exactly the membership resolution PermittedViews enforces.
  std::vector<std::string> PrincipalUsers() const;

  // Display name of a variable ("x1", "x2", ... in catalog allocation
  // order; synthetic mid-pipeline variables render as "w<k>").
  std::string VarName(VarId var) const;

  VarAllocator* synthetic_allocator() const { return synthetic_alloc_.get(); }

  // Which view and relation each membership atom (by global AtomId)
  // belongs to. Used for early pruning of meta-products: a combined tuple
  // missing more atoms of view V over relation X than there are X
  // operands remaining is hopeless (one operand tuple carries at most one
  // atom of any given view, since self-joins never pair a view with
  // itself).
  struct AtomInfo {
    std::string view;
    std::string relation;
  };
  const std::map<AtomId, AtomInfo>& atom_info() const { return atom_info_; }

  // --- Figure 1 materialization -------------------------------------
  // The meta-relation R' of `relation_name` as a printable Relation with
  // scheme (VIEW, <attrs...>), all string-typed; cells use the paper's
  // notation (blank, "x1*", "Acme*", "*").
  Result<Relation> MaterializeMetaRelation(
      std::string_view relation_name) const;
  // COMPARISON = (VIEW, X, COMPARE, Y).
  Relation MaterializeComparison() const;
  // PERMISSION = (USER, VIEW).
  Relation MaterializePermission() const;

  const DatabaseSchema& schema() const { return *schema_; }

  struct Grant {
    std::string user;
    std::string view;
    AccessMode mode;

    bool operator==(const Grant&) const = default;
  };
  // Every grant, in grant order (used by persistence and audits).
  const std::vector<Grant>& grants() const { return permissions_; }

  // A recorded deny: the administrator revoked this exact grant and has
  // not re-issued it since. The static analyzer (src/analysis) uses the
  // record to detect shadowed denies — revocations whose effect is still
  // re-granted by a group grant or by a broader permitted view. A later
  // Permit of the same (user, view, mode) clears the record; dropping
  // the view clears its records.
  const std::vector<Grant>& revocations() const { return revocations_; }

  // --- Group membership -------------------------------------------------
  // Views may be permitted to groups; a user holds a grant when it names
  // the user directly or a group the user belongs to. Groups are flat
  // (no nesting).
  Status AddMember(std::string_view user, std::string_view group);
  Status RemoveMember(std::string_view user, std::string_view group);
  bool IsMember(std::string_view user, std::string_view group) const;
  const std::map<std::string, std::set<std::string>, std::less<>>&
  group_members() const {
    return group_members_;
  }

  // Bumped on every mutation (view definition/drop, permit, deny, group
  // membership); equal to the sequence number of the newest journal
  // record. The authorization cache (authz/authz_cache.h) replays the
  // journal from its last synced sequence number and drops only the
  // entries each record's (users, scopes) dependency test selects.
  long long catalog_version() const { return catalog_version_; }

  // Appends the journal records with sequence numbers in (since, now]
  // to *out (oldest first). Returns false — with *out untouched — when
  // the bounded journal no longer reaches back to `since`; the caller
  // must then treat every cached entry as potentially stale.
  bool MutationsSince(long long since, std::vector<CatalogMutation>* out)
      const;

  // The base relations `name` transitively reads through the ViewCatalog:
  // branch relations, expanded recursively should a referenced name
  // itself be a registered view. (Today's views are conjunctive queries
  // over base relations, so the walk terminates after one level; the
  // closure is written transitively so layered views stay correct.)
  // Empty set when the view does not exist.
  std::set<std::string> ViewClosureRelations(std::string_view name) const;

  // Reverse-dependency query: every view (grant name, in definition
  // order) whose transitive closure reads `relation`.
  std::vector<std::string> ViewsReferencingRelation(
      std::string_view relation) const;

 private:
  // Deep copy used by Clone(); shares synthetic_alloc_ (see Clone).
  ViewCatalog(const ViewCatalog&) = default;

  // Compiles one conjunctive definition without registering it.
  Result<ViewDefinition> CompileView(const std::string& display_name,
                                     const ConjunctiveQuery& query);
  void CommitView(std::string storage_key, ViewDefinition def);

  // Advances catalog_version_ and appends the matching journal record.
  void RecordMutation(CatalogMutation::Kind kind, std::string view,
                      std::vector<std::string> users,
                      std::vector<std::set<std::string>> scopes);
  // The users a grant issued to `grantee` applies to, resolved now:
  // the grantee itself plus the current members when it is a group.
  std::vector<std::string> AffectedUsers(std::string_view grantee) const;
  // One scope per branch of `view` (its transitive relation read set).
  std::vector<std::set<std::string>> BranchScopes(
      std::string_view view) const;
  // One scope per branch of every view `group` holds a retrieve grant
  // on; the scopes a membership change in that group can touch.
  std::vector<std::set<std::string>> GroupGrantScopes(
      std::string_view group) const;

  // Owning or non-owning (no-op deleter) handle; see the constructors.
  std::shared_ptr<const DatabaseSchema> schema_;
  // Storage keys: the view name for conjunctive views, "name@i" for the
  // branches of disjunctive views.
  std::map<std::string, ViewDefinition, std::less<>> views_;
  // Grant name -> storage keys of its branches.
  std::map<std::string, std::vector<std::string>, std::less<>> groups_;
  std::vector<std::string> view_order_;
  // Grants in grant order.
  std::vector<Grant> permissions_;
  // Revoked grants that were not re-issued (see revocations()).
  std::vector<Grant> revocations_;
  VarId next_var_ = 1;
  AtomId next_atom_ = 1;
  std::map<AtomId, AtomInfo> atom_info_;
  // Shared across every clone of this catalog (see Clone); ids must be
  // globally unique across catalog versions, not per version.
  std::shared_ptr<VarAllocator> synthetic_alloc_ =
      std::make_shared<VarAllocator>(1000000);
  // Group name -> members.
  std::map<std::string, std::set<std::string>, std::less<>> group_members_;
  long long catalog_version_ = 0;
  // Mutation journal, oldest first; journal_.back().seq ==
  // catalog_version_ once any mutation has happened. Bounded: once
  // kJournalCapacity is exceeded the oldest records are discarded and
  // MutationsSince reports truncation for readers that far behind.
  static constexpr size_t kJournalCapacity = 4096;
  std::deque<CatalogMutation> journal_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_META_VIEW_STORE_H_
