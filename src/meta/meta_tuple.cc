#include "meta/meta_tuple.h"

#include <algorithm>
#include <sstream>

#include "common/str_util.h"

namespace viewauth {

bool MetaCell::operator==(const MetaCell& other) const {
  if (kind != other.kind || projected != other.projected) return false;
  switch (kind) {
    case CellKind::kBlank:
      return true;
    case CellKind::kConst:
      return constant == other.constant;
    case CellKind::kVar:
      return var == other.var;
  }
  return false;
}

std::string MetaCell::ToString(
    const std::function<std::string(VarId)>& var_namer) const {
  std::string out;
  switch (kind) {
    case CellKind::kBlank:
      break;
    case CellKind::kConst:
      out = constant.ToDisplayString(/*commas=*/false);
      break;
    case CellKind::kVar:
      out = var_namer(var);
      break;
  }
  if (projected) out += "*";
  return out;
}

std::set<VarId> MetaTuple::CellVars() const {
  std::set<VarId> vars;
  for (const MetaCell& cell : cells_) {
    if (cell.kind == CellKind::kVar) vars.insert(cell.var);
  }
  return vars;
}

std::vector<int> MetaTuple::CellsOfVar(VarId var) const {
  std::vector<int> positions;
  for (int i = 0; i < arity(); ++i) {
    if (cells_[i].kind == CellKind::kVar && cells_[i].var == var) {
      positions.push_back(i);
    }
  }
  return positions;
}

bool MetaTuple::HasDanglingVariable() const {
  for (VarId var : CellVars()) {
    auto it = var_atoms_.find(var);
    if (it == var_atoms_.end()) continue;  // synthetic variable: never dangles
    for (AtomId atom : it->second) {
      if (!origin_atoms_.contains(atom)) return true;
    }
  }
  return false;
}

void MetaTuple::ClearVariable(VarId var) {
  for (MetaCell& cell : cells_) {
    if (cell.kind == CellKind::kVar && cell.var == var) {
      bool starred = cell.projected;
      cell = MetaCell::Blank(starred);
    }
  }
  constraints_.ForgetTerm(var);
  var_atoms_.erase(var);
}

std::string MetaTuple::ViewLabel() const {
  return Join(views_, ",");
}

std::string MetaTuple::StructuralKey(bool include_provenance) const {
  std::ostringstream out;
  // Cells, with variables renamed to their first-occurrence index so that
  // alpha-equivalent tuples collide. Variable identity across *different*
  // tuples matters for joins, so the key also appends the exported
  // constraints using the same local names.
  std::map<VarId, int> local;
  auto local_name = [&local](VarId v) {
    auto it = local.find(v);
    if (it == local.end()) {
      it = local.emplace(v, static_cast<int>(local.size())).first;
    }
    return "v" + std::to_string(it->second);
  };
  for (const MetaCell& cell : cells_) {
    out << cell.ToString(local_name) << "|";
  }
  // Constraints over cell vars only, in canonical (sorted) text form.
  std::set<VarId> vars = CellVars();
  std::vector<TermId> terms(vars.begin(), vars.end());
  std::vector<std::string> atom_strs;
  for (const ConstraintAtom& atom : constraints_.ExportAtoms(terms)) {
    atom_strs.push_back(atom.ToString(local_name));
  }
  std::sort(atom_strs.begin(), atom_strs.end());
  out << "#" << Join(atom_strs, "&");
  // Provenance: tuples with identical cells but different atom coverage
  // are NOT interchangeable — one may dangle in a later product where the
  // other does not (e.g. the two EST self-join tuples of Example 3).
  if (include_provenance) {
    out << "@";
    for (AtomId atom : origin_atoms_) out << atom << ",";
    out << "@";
    for (VarId var : CellVars()) {
      auto it = var_atoms_.find(var);
      if (it == var_atoms_.end()) continue;
      out << local_name(var) << ":";
      for (AtomId atom : it->second) out << atom << ",";
      out << ";";
    }
  }
  return out.str();
}

std::string MetaTuple::ToString(
    const std::function<std::string(VarId)>& var_namer) const {
  std::vector<std::string> parts;
  parts.reserve(cells_.size());
  for (const MetaCell& cell : cells_) {
    parts.push_back(cell.ToString(var_namer));
  }
  return "(" + Join(parts, ", ") + ")";
}

std::string MetaRelation::ToString(
    const std::function<std::string(VarId)>& var_namer) const {
  std::ostringstream out;
  // Header.
  std::vector<std::string> header;
  header.push_back("VIEW");
  for (const Attribute& col : columns_) header.push_back(col.name);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(std::move(header));
  for (const MetaTuple& tuple : tuples_) {
    std::vector<std::string> row;
    row.push_back(tuple.ViewLabel());
    for (const MetaCell& cell : tuple.cells()) {
      row.push_back(cell.ToString(var_namer));
    }
    rows.push_back(std::move(row));
  }
  // Column widths.
  std::vector<size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    out << "|";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      out << " " << rows[r][i]
          << std::string(widths[i] - rows[r][i].size(), ' ') << " |";
    }
    out << "\n";
    if (r == 0) {
      out << "|";
      for (size_t i = 0; i < widths.size(); ++i) {
        out << std::string(widths[i] + 2, '-') << "|";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string DefaultVarName(VarId var) { return "x" + std::to_string(var); }

}  // namespace viewauth
