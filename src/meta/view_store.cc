#include "meta/view_store.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace viewauth {

namespace {

// Union-find over flat column indices, used to merge variable classes
// along equality subformulas.
class ColumnUnionFind {
 public:
  explicit ColumnUnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(b)] = Find(a); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Status ViewCatalog::DefineView(const ViewStmt& stmt) {
  if (stmt.or_branches.empty()) {
    VIEWAUTH_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                              ConjunctiveQuery::FromView(*schema_, stmt));
    return DefineView(stmt.name, query);
  }
  // Disjunctive view: compile every branch, then commit atomically.
  if (groups_.contains(stmt.name)) {
    return Status::AlreadyExists("view '" + stmt.name +
                                 "' already exists");
  }
  std::vector<std::vector<Condition>> branches;
  branches.push_back(stmt.conditions);
  for (const std::vector<Condition>& branch : stmt.or_branches) {
    branches.push_back(branch);
  }
  std::vector<ViewDefinition> compiled;
  for (const std::vector<Condition>& branch : branches) {
    VIEWAUTH_ASSIGN_OR_RETURN(
        ConjunctiveQuery query,
        ConjunctiveQuery::Build(*schema_, "view " + stmt.name,
                                stmt.targets, branch));
    Result<ViewDefinition> def = CompileView(stmt.name, query);
    if (!def.ok()) {
      // A provably-empty branch contributes nothing to the union and is
      // skipped; other errors abort the definition.
      if (def.status().IsInvalidArgument()) continue;
      return def.status();
    }
    compiled.push_back(std::move(*def));
  }
  if (compiled.empty()) {
    return Status::InvalidArgument("view '" + stmt.name +
                                   "' defines the empty relation (every "
                                   "branch is contradictory)");
  }
  std::vector<std::string> keys;
  for (size_t i = 0; i < compiled.size(); ++i) {
    std::string key = stmt.name + "@" + std::to_string(i + 1);
    keys.push_back(key);
    CommitView(std::move(key), std::move(compiled[i]));
  }
  groups_.emplace(stmt.name, std::move(keys));
  view_order_.push_back(stmt.name);
  // A fresh definition carries no grants yet, so no cached entry can
  // depend on it: empty users/scopes.
  RecordMutation(CatalogMutation::Kind::kViewDefined, stmt.name, {}, {});
  return Status::OK();
}

Status ViewCatalog::DefineView(std::string name,
                               const ConjunctiveQuery& query) {
  if (groups_.contains(name)) {
    return Status::AlreadyExists("view '" + name + "' already exists");
  }
  VIEWAUTH_ASSIGN_OR_RETURN(ViewDefinition def, CompileView(name, query));
  groups_.emplace(name, std::vector<std::string>{name});
  view_order_.push_back(name);
  std::string view_name = name;
  CommitView(std::move(name), std::move(def));
  RecordMutation(CatalogMutation::Kind::kViewDefined, std::move(view_name),
                 {}, {});
  return Status::OK();
}

Result<ViewDefinition> ViewCatalog::CompileView(
    const std::string& display_name, const ConjunctiveQuery& query) {
  const std::string& name = display_name;

  const int n = query.TotalColumns();
  ColumnUnionFind uf(n);

  // Pass 1: merge classes along column=column equalities.
  for (const CalculusCondition& cond : query.conditions()) {
    if (cond.op == Comparator::kEq && cond.rhs_is_column) {
      uf.Union(query.FlatIndex(cond.lhs), query.FlatIndex(cond.rhs_column));
    }
  }

  // Pass 2: constant pins from column=constant equalities.
  std::map<int, Value> pins;
  for (const CalculusCondition& cond : query.conditions()) {
    if (cond.op != Comparator::kEq || cond.rhs_is_column) continue;
    int root = uf.Find(query.FlatIndex(cond.lhs));
    auto [it, inserted] = pins.emplace(root, cond.rhs_const);
    if (!inserted && !(it->second == cond.rhs_const) &&
        !it->second.Satisfies(Comparator::kEq, cond.rhs_const)) {
      return Status::InvalidArgument(
          "view '" + name + "' defines the empty relation (contradictory "
          "equality constants)");
    }
  }

  // Pass 3: residual (non-equality) conditions, with pinned sides
  // substituted by their constants.
  struct ResidualCondition {
    int lhs_root;
    Comparator op;
    bool rhs_is_root = false;
    int rhs_root = 0;
    Value rhs_const;
  };
  std::vector<ResidualCondition> residual;
  for (const CalculusCondition& cond : query.conditions()) {
    if (cond.op == Comparator::kEq) continue;
    int lhs_root = uf.Find(query.FlatIndex(cond.lhs));
    auto lhs_pin = pins.find(lhs_root);
    if (cond.rhs_is_column) {
      int rhs_root = uf.Find(query.FlatIndex(cond.rhs_column));
      auto rhs_pin = pins.find(rhs_root);
      if (lhs_pin != pins.end() && rhs_pin != pins.end()) {
        if (!lhs_pin->second.Satisfies(cond.op, rhs_pin->second)) {
          return Status::InvalidArgument("view '" + name +
                                         "' defines the empty relation");
        }
        continue;  // subsumed by the substitution
      }
      if (lhs_pin != pins.end()) {
        residual.push_back(ResidualCondition{
            rhs_root, ReverseComparator(cond.op), false, 0, lhs_pin->second});
      } else if (rhs_pin != pins.end()) {
        residual.push_back(ResidualCondition{lhs_root, cond.op, false, 0,
                                             rhs_pin->second});
      } else {
        residual.push_back(
            ResidualCondition{lhs_root, cond.op, true, rhs_root, Value()});
      }
    } else {
      if (lhs_pin != pins.end()) {
        if (!lhs_pin->second.Satisfies(cond.op, cond.rhs_const)) {
          return Status::InvalidArgument("view '" + name +
                                         "' defines the empty relation");
        }
        continue;
      }
      residual.push_back(
          ResidualCondition{lhs_root, cond.op, false, 0, cond.rhs_const});
    }
  }

  // Class properties.
  std::vector<int> occurrences(n, 0);
  for (int c = 0; c < n; ++c) ++occurrences[uf.Find(c)];
  std::set<int> has_residual;
  for (const ResidualCondition& rc : residual) {
    has_residual.insert(rc.lhs_root);
    if (rc.rhs_is_root) has_residual.insert(rc.rhs_root);
  }
  std::set<int> target_roots;
  for (const ColumnRef& target : query.targets()) {
    target_roots.insert(uf.Find(query.FlatIndex(target)));
  }

  // Class domain type: int only when every member column is int.
  auto class_type = [&](int root) {
    bool any = false;
    bool all_int = true;
    bool any_string = false;
    // Walk flat columns to find members.
    int col = 0;
    for (size_t a = 0; a < query.atoms().size(); ++a) {
      const RelationSchema& rel = query.atom_schema(static_cast<int>(a));
      for (int i = 0; i < rel.arity(); ++i, ++col) {
        if (uf.Find(col) != root) continue;
        any = true;
        ValueType t = rel.attribute(i).type;
        if (t != ValueType::kInt64) all_int = false;
        if (t == ValueType::kString) any_string = true;
      }
    }
    VIEWAUTH_CHECK(any) << "class with no member columns";
    if (any_string) return ValueType::kString;
    return all_int ? ValueType::kInt64 : ValueType::kDouble;
  };

  // Variable assignment in left-to-right first-appearance order, matching
  // the paper's x1, x2, ... numbering.
  std::map<int, VarId> var_of_root;
  VarId first_var = next_var_;
  for (int c = 0; c < n; ++c) {
    int root = uf.Find(c);
    if (var_of_root.contains(root) || pins.contains(root)) continue;
    if (occurrences[root] >= 2 || has_residual.contains(root)) {
      var_of_root.emplace(root, next_var_++);
    }
  }

  // COMPARISON content as a constraint store.
  ConstraintSet store;
  std::vector<ComparisonEntry> comparisons;
  for (const auto& [root, var] : var_of_root) {
    store.DeclareTermType(var, class_type(root));
  }
  for (const ResidualCondition& rc : residual) {
    ComparisonEntry entry;
    entry.view = name;
    entry.lhs = var_of_root.at(rc.lhs_root);
    entry.op = rc.op;
    if (rc.rhs_is_root) {
      entry.rhs_is_var = true;
      entry.rhs_var = var_of_root.at(rc.rhs_root);
      store.AddTermTerm(entry.lhs, rc.op, entry.rhs_var);
    } else {
      entry.rhs_const = rc.rhs_const;
      store.AddTermConst(entry.lhs, rc.op, rc.rhs_const);
    }
    comparisons.push_back(std::move(entry));
  }
  if (!store.IsSatisfiable()) {
    // Roll back the variable ids we consumed.
    next_var_ = first_var;
    return Status::InvalidArgument("view '" + name +
                                   "' defines the empty relation "
                                   "(contradictory comparisons)");
  }

  // Build one meta-tuple per membership atom.
  ViewDefinition def;
  def.name = name;
  def.query = query;
  std::vector<AtomId> atom_ids;
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    atom_ids.push_back(next_atom_);
    atom_info_.emplace(next_atom_,
                       AtomInfo{name, query.atoms()[a].relation});
    ++next_atom_;
  }
  int col = 0;
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const RelationSchema& rel = query.atom_schema(static_cast<int>(a));
    MetaTuple tuple;
    for (int i = 0; i < rel.arity(); ++i, ++col) {
      int root = uf.Find(col);
      const bool starred = target_roots.contains(root);
      auto pin = pins.find(root);
      if (pin != pins.end()) {
        tuple.cells().push_back(MetaCell::Const(pin->second, starred));
      } else if (auto var = var_of_root.find(root);
                 var != var_of_root.end()) {
        tuple.cells().push_back(MetaCell::Var(var->second, starred));
      } else {
        tuple.cells().push_back(MetaCell::Blank(starred));
      }
    }
    tuple.constraints() = store;
    tuple.views().insert(name);
    tuple.origin_atoms().insert(atom_ids[a]);
    def.tuples.push_back(std::move(tuple));
    def.tuple_relations.push_back(query.atoms()[a].relation);
    def.relations.insert(query.atoms()[a].relation);
  }

  // var_atoms: which atoms mention each variable; every tuple carries the
  // full map (merging in products is a plain union).
  std::map<VarId, std::set<AtomId>> var_atoms;
  for (size_t a = 0; a < def.tuples.size(); ++a) {
    for (VarId var : def.tuples[a].CellVars()) {
      var_atoms[var].insert(atom_ids[a]);
    }
  }
  for (MetaTuple& tuple : def.tuples) {
    tuple.var_atoms() = var_atoms;
  }
  for (const auto& [root, var] : var_of_root) {
    (void)root;
    def.vars.push_back(var);
  }
  std::sort(def.vars.begin(), def.vars.end());
  def.comparisons = std::move(comparisons);

  return def;
}

void ViewCatalog::CommitView(std::string storage_key, ViewDefinition def) {
  views_.emplace(std::move(storage_key), std::move(def));
}

Status ViewCatalog::DropView(std::string_view name) {
  auto group = groups_.find(std::string(name));
  if (group == groups_.end()) {
    return Status::NotFound("view '" + std::string(name) +
                            "' does not exist");
  }
  // Dependency capture happens BEFORE the erase: the drop affects
  // exactly the users who held a retrieve grant on this view, over the
  // view's (per-branch) relation scopes.
  std::vector<std::string> affected;
  for (const Grant& grant : permissions_) {
    if (grant.view != name || grant.mode != AccessMode::kRetrieve) continue;
    for (std::string& user : AffectedUsers(grant.user)) {
      if (std::find(affected.begin(), affected.end(), user) ==
          affected.end()) {
        affected.push_back(std::move(user));
      }
    }
  }
  std::vector<std::set<std::string>> scopes =
      affected.empty() ? std::vector<std::set<std::string>>{}
                       : BranchScopes(name);
  for (const std::string& key : group->second) {
    views_.erase(key);
  }
  groups_.erase(group);
  view_order_.erase(
      std::find(view_order_.begin(), view_order_.end(), std::string(name)));
  std::erase_if(permissions_, [&name](const Grant& grant) {
    return grant.view == name;
  });
  std::erase_if(revocations_, [&name](const Grant& grant) {
    return grant.view == name;
  });
  RecordMutation(CatalogMutation::Kind::kViewDropped, std::string(name),
                 std::move(affected), std::move(scopes));
  return Status::OK();
}

std::string_view AccessModeToString(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRetrieve:
      return "retrieve";
    case AccessMode::kInsert:
      return "insert";
    case AccessMode::kDelete:
      return "delete";
    case AccessMode::kModify:
      return "modify";
  }
  return "?";
}

Status ViewCatalog::Permit(std::string_view view, std::string_view user,
                           AccessMode mode) {
  if (!groups_.contains(std::string(view))) {
    return Status::NotFound("view '" + std::string(view) +
                            "' does not exist");
  }
  const Grant grant{std::string(user), std::string(view), mode};
  // Re-granting supersedes an earlier deny of the same grant. Clearing
  // the revocation record changes what the static analyzer sees but no
  // retrieval entitlement, so the record carries no scopes.
  if (std::erase(revocations_, grant) > 0) {
    RecordMutation(CatalogMutation::Kind::kGrantAdded, std::string(view),
                   {}, {});
  }
  if (IsPermitted(user, view, mode)) return Status::OK();  // idempotent
  permissions_.push_back(grant);
  RecordMutation(CatalogMutation::Kind::kGrantAdded, std::string(view),
                 AffectedUsers(user),
                 mode == AccessMode::kRetrieve
                     ? BranchScopes(view)
                     : std::vector<std::set<std::string>>{});
  return Status::OK();
}

Status ViewCatalog::Deny(std::string_view view, std::string_view user,
                         AccessMode mode) {
  auto it = std::find(permissions_.begin(), permissions_.end(),
                      Grant{std::string(user), std::string(view), mode});
  if (it == permissions_.end()) {
    return Status::NotFound("user '" + std::string(user) +
                            "' holds no " +
                            std::string(AccessModeToString(mode)) +
                            " permit for view '" + std::string(view) + "'");
  }
  const Grant revoked = *it;
  permissions_.erase(it);
  if (std::find(revocations_.begin(), revocations_.end(), revoked) ==
      revocations_.end()) {
    revocations_.push_back(revoked);
  }
  RecordMutation(CatalogMutation::Kind::kGrantRevoked, std::string(view),
                 AffectedUsers(user),
                 mode == AccessMode::kRetrieve
                     ? BranchScopes(view)
                     : std::vector<std::set<std::string>>{});
  return Status::OK();
}

bool ViewCatalog::HasView(std::string_view name) const {
  return groups_.find(std::string(name)) != groups_.end();
}

Result<const ViewDefinition*> ViewCatalog::GetView(
    std::string_view name) const {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<const ViewDefinition*> branches,
                            GetViewBranches(name));
  return branches.front();
}

Result<std::vector<const ViewDefinition*>> ViewCatalog::GetViewBranches(
    std::string_view name) const {
  auto group = groups_.find(std::string(name));
  if (group == groups_.end()) {
    return Status::NotFound("view '" + std::string(name) +
                            "' does not exist");
  }
  std::vector<const ViewDefinition*> branches;
  for (const std::string& key : group->second) {
    branches.push_back(&views_.at(key));
  }
  return branches;
}

namespace {
// Does a grant issued to `grantee` apply to `user`, directly or through
// group membership?
bool GrantApplies(
    const std::string& grantee, std::string_view user,
    const std::map<std::string, std::set<std::string>, std::less<>>&
        group_members) {
  if (grantee == user) return true;
  auto group = group_members.find(grantee);
  return group != group_members.end() &&
         group->second.contains(std::string(user));
}
}  // namespace

std::vector<const ViewDefinition*> ViewCatalog::PermittedViews(
    std::string_view user, AccessMode mode) const {
  std::vector<const ViewDefinition*> result;
  for (const Grant& grant : permissions_) {
    if (grant.mode != mode ||
        !GrantApplies(grant.user, user, group_members_)) {
      continue;
    }
    auto group = groups_.find(grant.view);
    if (group == groups_.end()) continue;
    for (const std::string& key : group->second) {
      const ViewDefinition* def = &views_.at(key);
      // A user in several granted groups must not receive duplicates.
      if (std::find(result.begin(), result.end(), def) == result.end()) {
        result.push_back(def);
      }
    }
  }
  return result;
}

std::vector<std::string> ViewCatalog::PrincipalUsers() const {
  std::vector<std::string> users;
  std::set<std::string> seen;
  auto add = [&](const std::string& user) {
    if (seen.insert(user).second) users.push_back(user);
  };
  for (const Grant& grant : permissions_) {
    auto group = group_members_.find(grant.user);
    if (group == group_members_.end()) {
      add(grant.user);
    } else {
      for (const std::string& member : group->second) add(member);
    }
  }
  return users;
}

bool ViewCatalog::IsPermitted(std::string_view user, std::string_view view,
                              AccessMode mode) const {
  for (const Grant& grant : permissions_) {
    if (grant.view == view && grant.mode == mode &&
        GrantApplies(grant.user, user, group_members_)) {
      return true;
    }
  }
  return false;
}

std::vector<std::set<std::string>> ViewCatalog::GroupGrantScopes(
    std::string_view group) const {
  std::vector<std::set<std::string>> scopes;
  for (const Grant& grant : permissions_) {
    if (grant.user != group || grant.mode != AccessMode::kRetrieve) {
      continue;
    }
    for (std::set<std::string>& scope : BranchScopes(grant.view)) {
      scopes.push_back(std::move(scope));
    }
  }
  return scopes;
}

Status ViewCatalog::AddMember(std::string_view user,
                              std::string_view group) {
  if (user == group) {
    return Status::InvalidArgument("a group cannot contain itself");
  }
  const bool inserted =
      group_members_[std::string(group)].insert(std::string(user)).second;
  // Joining a group changes only the joining user's entitlements, over
  // the scopes of the grants the group already holds. A duplicate join
  // changes nothing.
  RecordMutation(CatalogMutation::Kind::kMemberAdded, "",
                 {std::string(user)},
                 inserted ? GroupGrantScopes(group)
                          : std::vector<std::set<std::string>>{});
  return Status::OK();
}

Status ViewCatalog::RemoveMember(std::string_view user,
                                 std::string_view group) {
  auto it = group_members_.find(std::string(group));
  if (it == group_members_.end() ||
      it->second.erase(std::string(user)) == 0) {
    return Status::NotFound("user '" + std::string(user) +
                            "' is not a member of group '" +
                            std::string(group) + "'");
  }
  if (it->second.empty()) group_members_.erase(it);
  RecordMutation(CatalogMutation::Kind::kMemberRemoved, "",
                 {std::string(user)}, GroupGrantScopes(group));
  return Status::OK();
}

bool ViewCatalog::IsMember(std::string_view user,
                           std::string_view group) const {
  auto it = group_members_.find(std::string(group));
  return it != group_members_.end() &&
         it->second.contains(std::string(user));
}

std::string ViewCatalog::VarName(VarId var) const {
  if (var >= 1000000) return "w" + std::to_string(var - 1000000 + 1);
  return "x" + std::to_string(var);
}

Result<Relation> ViewCatalog::MaterializeMetaRelation(
    std::string_view relation_name) const {
  VIEWAUTH_ASSIGN_OR_RETURN(const RelationSchema* base,
                            schema_->GetRelation(relation_name));
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"VIEW", ValueType::kString});
  for (const Attribute& attr : base->attributes()) {
    attrs.push_back(Attribute{attr.name, ValueType::kString});
  }
  VIEWAUTH_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Make(std::string(relation_name) + "'",
                           std::move(attrs)));
  Relation out(std::move(schema));
  auto namer = [this](VarId v) { return VarName(v); };
  for (const std::string& view_name : view_order_) {
    for (const std::string& key : groups_.at(view_name)) {
    const ViewDefinition& def = views_.at(key);
    for (size_t i = 0; i < def.tuples.size(); ++i) {
      if (def.tuple_relations[i] != relation_name) continue;
      std::vector<Value> row;
      row.push_back(Value::String(view_name));
      for (const MetaCell& cell : def.tuples[i].cells()) {
        row.push_back(Value::String(cell.ToString(namer)));
      }
      // Identical meta-tuples of one view (EST stores two equal EMPLOYEE'
      // rows) collapse under set semantics here; the compiled
      // ViewDefinition keeps them distinct, and display code that needs
      // the duplicated rows (the Figure 1 reproduction) prints from the
      // definitions.
      out.InsertUnchecked(Tuple(std::move(row)));
    }
    }
  }
  return out;
}

Relation ViewCatalog::MaterializeComparison() const {
  RelationSchema schema =
      RelationSchema::Make("COMPARISON",
                           {Attribute{"VIEW", ValueType::kString},
                            Attribute{"X", ValueType::kString},
                            Attribute{"COMPARE", ValueType::kString},
                            Attribute{"Y", ValueType::kString}})
          .value();
  Relation out(std::move(schema));
  for (const std::string& view_name : view_order_) {
    for (const std::string& key : groups_.at(view_name)) {
    const ViewDefinition& def = views_.at(key);
    for (const ComparisonEntry& entry : def.comparisons) {
      std::string y = entry.rhs_is_var
                          ? VarName(entry.rhs_var)
                          : entry.rhs_const.ToDisplayString(false);
      out.InsertUnchecked(Tuple({Value::String(entry.view),
                                 Value::String(VarName(entry.lhs)),
                                 Value::String(std::string(
                                     ComparatorToString(entry.op))),
                                 Value::String(std::move(y))}));
    }
    }
  }
  return out;
}

void ViewCatalog::RecordMutation(
    CatalogMutation::Kind kind, std::string view,
    std::vector<std::string> users,
    std::vector<std::set<std::string>> scopes) {
  CatalogMutation record;
  record.seq = ++catalog_version_;
  record.kind = kind;
  record.view = std::move(view);
  record.users = std::move(users);
  record.scopes = std::move(scopes);
  journal_.push_back(std::move(record));
  while (journal_.size() > kJournalCapacity) journal_.pop_front();
}

std::vector<std::string> ViewCatalog::AffectedUsers(
    std::string_view grantee) const {
  std::vector<std::string> users;
  users.emplace_back(grantee);
  auto group = group_members_.find(grantee);
  if (group != group_members_.end()) {
    users.insert(users.end(), group->second.begin(), group->second.end());
  }
  return users;
}

std::vector<std::set<std::string>> ViewCatalog::BranchScopes(
    std::string_view view) const {
  std::vector<std::set<std::string>> scopes;
  auto group = groups_.find(std::string(view));
  if (group == groups_.end()) return scopes;
  for (const std::string& key : group->second) {
    const ViewDefinition& def = views_.at(key);
    std::set<std::string> scope;
    for (const std::string& relation : def.relations) {
      if (HasView(relation)) {
        std::set<std::string> nested = ViewClosureRelations(relation);
        scope.insert(nested.begin(), nested.end());
      } else {
        scope.insert(relation);
      }
    }
    scopes.push_back(std::move(scope));
  }
  return scopes;
}

bool ViewCatalog::MutationsSince(long long since,
                                 std::vector<CatalogMutation>* out) const {
  if (since >= catalog_version_) return true;  // already caught up
  // The journal covers (catalog_version_ - journal_.size(),
  // catalog_version_]; a reader synced before that window has lost
  // records.
  const long long oldest_covered =
      catalog_version_ - static_cast<long long>(journal_.size());
  if (since < oldest_covered) return false;
  for (const CatalogMutation& record : journal_) {
    if (record.seq > since) out->push_back(record);
  }
  return true;
}

std::set<std::string> ViewCatalog::ViewClosureRelations(
    std::string_view name) const {
  std::set<std::string> closure;
  std::vector<std::string> frontier{std::string(name)};
  std::set<std::string> expanded;
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    if (!expanded.insert(current).second) continue;
    auto group = groups_.find(current);
    if (group == groups_.end()) {
      // Not a view: only the root name must be a view for the query to
      // be meaningful; any other name is a base relation.
      if (current != name) closure.insert(std::move(current));
      continue;
    }
    for (const std::string& key : group->second) {
      const ViewDefinition& def = views_.at(key);
      for (const std::string& relation : def.relations) {
        frontier.push_back(relation);
      }
    }
  }
  return closure;
}

std::vector<std::string> ViewCatalog::ViewsReferencingRelation(
    std::string_view relation) const {
  std::vector<std::string> views;
  for (const std::string& name : view_order_) {
    if (ViewClosureRelations(name).contains(std::string(relation))) {
      views.push_back(name);
    }
  }
  return views;
}

Relation ViewCatalog::MaterializePermission() const {
  RelationSchema schema =
      RelationSchema::Make("PERMISSION",
                           {Attribute{"USER", ValueType::kString},
                            Attribute{"VIEW", ValueType::kString}})
          .value();
  Relation out(std::move(schema));
  // The paper's PERMISSION relation records retrieval grants; update-mode
  // grants live alongside but are not part of Figure 1.
  for (const Grant& grant : permissions_) {
    if (grant.mode != AccessMode::kRetrieve) continue;
    out.InsertUnchecked(
        Tuple({Value::String(grant.user), Value::String(grant.view)}));
  }
  return out;
}

}  // namespace viewauth
