// Extended algebraic operators on meta-relations (paper Section 4).
//
// MetaProduct, MetaSelect and MetaProject generalize product, selection
// and projection to relations of view definitions (Definitions 1-3), with
// the Section 4.2 refinements available behind options:
//   * padding:   the product also emits (r, blank...) and (blank..., s)
//                so pre-existing subviews survive projections that remove
//                one operand entirely;
//   * four_case: the selection decides, per meta-tuple, whether the query
//                predicate lambda implies / is implied by / contradicts /
//                overlaps the tuple predicate mu, and clears, retains,
//                discards, or conjoins accordingly (backed by the
//                ConstraintSet decision procedures). With the option off,
//                the base Definition 2 behaviour (always conjoin) is used.
//
// PruneDanglingTuples implements the post-product pruning of tuples that
// reference meta-tuples outside the result; RemoveDuplicates and
// RemoveSubsumed implement the "after replications are removed" cleanup.

#ifndef VIEWAUTH_META_OPS_H_
#define VIEWAUTH_META_OPS_H_

#include <atomic>
#include <vector>

#include "common/exec_context.h"
#include "meta/meta_tuple.h"
#include "types/value.h"

namespace viewauth {

// Allocates fresh variable ids for synthetic variables introduced by
// base-mode selections. Ids start high to stay clear of catalog ids.
// Atomic: the catalog's allocator is shared by concurrent sessions.
class VarAllocator {
 public:
  explicit VarAllocator(VarId first = 1000000) : next_(first) {}
  VarId Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<VarId> next_;
};

struct MetaOpOptions {
  bool padding = true;
  bool four_case = true;
};

// One primitive selection predicate over the meta-relation's columns.
struct MetaSelection {
  static MetaSelection ColumnConst(int column, Comparator op, Value value) {
    MetaSelection sel;
    sel.lhs_column = column;
    sel.op = op;
    sel.rhs_is_column = false;
    sel.rhs_const = std::move(value);
    return sel;
  }
  static MetaSelection ColumnColumn(int lhs, Comparator op, int rhs) {
    MetaSelection sel;
    sel.lhs_column = lhs;
    sel.op = op;
    sel.rhs_is_column = true;
    sel.rhs_column = rhs;
    return sel;
  }

  int lhs_column = 0;
  Comparator op = Comparator::kEq;
  bool rhs_is_column = false;
  int rhs_column = 0;
  Value rhs_const;
};

// Definition 1 (+ padding refinement): the product of two meta-relations.
// A non-null `ctx` charges each emitted meta-tuple against the execution
// governor (the S' side of the budget symmetry) and stops emitting once
// the context trips; callers must then check ctx->status() and discard
// the partial result.
MetaRelation MetaProduct(const MetaRelation& left, const MetaRelation& right,
                         const MetaOpOptions& options,
                         ExecContext* ctx = nullptr);

// Definition 2 (+ four-case refinement): selection by one primitive
// predicate. Tuples whose relevant cells are not projected are dropped
// (the paper's precondition), as are tuples whose predicate becomes
// unsatisfiable. `alloc` supplies fresh variables for base-mode conjoins
// onto blank cells.
// A non-null `ctx` ticks per input tuple (the four-case analysis can
// invoke the constraint solver per tuple) and stops once tripped.
MetaRelation MetaSelect(const MetaRelation& input, const MetaSelection& sel,
                        const MetaOpOptions& options, VarAllocator* alloc,
                        ExecContext* ctx = nullptr);

// Definition 3 (generalized to keep-lists): projection onto `keep`
// columns, in order. Tuples restricting a removed column are dropped.
MetaRelation MetaProject(const MetaRelation& input,
                         const std::vector<int>& keep);

// Post-pass of the four-case refinement. Selections are applied one
// primitive predicate at a time, so a *conjunction* of query predicates
// that jointly implies a tuple's restriction (the paper's case 3:
// view 300k-600k, query 400k-500k) is only detectable afterwards. This
// pass clears every variable or constant cell whose restriction is
// implied by `lambda`, the query's full selection conjunction expressed
// over column terms (`column_term(col)` maps a column index to its term
// id in `lambda`). Cleared cells survive later projections.
void ClearImpliedRestrictions(MetaRelation* rel, const ConstraintSet& lambda,
                              const std::function<TermId(int)>& column_term);

// Post-product pruning of tuples with dangling variable references.
MetaRelation PruneDanglingTuples(const MetaRelation& input);

// Structural duplicate elimination (alpha-equivalent tuples collapse).
// `respect_provenance` must stay true while products may still follow;
// on the final mask it can be false, collapsing tuples that differ only
// in which view atoms produced them.
MetaRelation RemoveDuplicates(const MetaRelation& input,
                              bool respect_provenance = true);

// Conservative subsumption: drops a tuple whose permitted cells are a
// subset of another tuple's. Two rules are applied:
//   (1) same cells and constraints, smaller projection set;
//   (2) an unrestricted tuple (all cells blank, no constraints) absorbs
//       any tuple projecting a subset of its starred columns.
MetaRelation RemoveSubsumed(const MetaRelation& input);

}  // namespace viewauth

#endif  // VIEWAUTH_META_OPS_H_
