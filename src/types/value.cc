#include "types/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/str_util.h"

namespace viewauth {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string_view ComparatorToString(Comparator op) {
  switch (op) {
    case Comparator::kEq:
      return "=";
    case Comparator::kNe:
      return "!=";
    case Comparator::kLt:
      return "<";
    case Comparator::kLe:
      return "<=";
    case Comparator::kGt:
      return ">";
    case Comparator::kGe:
      return ">=";
  }
  return "?";
}

Result<Comparator> ComparatorFromString(std::string_view text) {
  if (text == "=" || text == "==") return Comparator::kEq;
  if (text == "!=" || text == "<>") return Comparator::kNe;
  if (text == "<") return Comparator::kLt;
  if (text == "<=") return Comparator::kLe;
  if (text == ">") return Comparator::kGt;
  if (text == ">=") return Comparator::kGe;
  return Status::InvalidArgument("unknown comparator: '" + std::string(text) +
                                 "'");
}

Comparator ReverseComparator(Comparator op) {
  switch (op) {
    case Comparator::kEq:
      return Comparator::kEq;
    case Comparator::kNe:
      return Comparator::kNe;
    case Comparator::kLt:
      return Comparator::kGt;
    case Comparator::kLe:
      return Comparator::kGe;
    case Comparator::kGt:
      return Comparator::kLt;
    case Comparator::kGe:
      return Comparator::kLe;
  }
  return op;
}

Comparator NegateComparator(Comparator op) {
  switch (op) {
    case Comparator::kEq:
      return Comparator::kNe;
    case Comparator::kNe:
      return Comparator::kEq;
    case Comparator::kLt:
      return Comparator::kGe;
    case Comparator::kLe:
      return Comparator::kGt;
    case Comparator::kGt:
      return Comparator::kLe;
    case Comparator::kGe:
      return Comparator::kLt;
  }
  return op;
}

ValueType Value::type() const {
  VIEWAUTH_CHECK(!is_null()) << "type() of NULL value";
  if (is_int64()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsDouble() const {
  VIEWAUTH_CHECK(is_numeric()) << "AsDouble() of non-numeric value";
  return is_int64() ? static_cast<double>(int64_value()) : double_value();
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return std::nullopt;
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = int64_value();
      const int64_t b = other.int64_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    const int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;  // string vs numeric
}

bool Value::Satisfies(Comparator op, const Value& other) const {
  // NULL never satisfies a predicate (even NULL = NULL), so masked cells
  // cannot leak through qualifications.
  if (is_null() || other.is_null()) return false;
  std::optional<int> cmp = Compare(other);
  if (!cmp.has_value()) return false;
  switch (op) {
    case Comparator::kEq:
      return *cmp == 0;
    case Comparator::kNe:
      return *cmp != 0;
    case Comparator::kLt:
      return *cmp < 0;
    case Comparator::kLe:
      return *cmp <= 0;
    case Comparator::kGt:
      return *cmp > 0;
    case Comparator::kGe:
      return *cmp >= 0;
  }
  return false;
}

bool Value::operator==(const Value& other) const { return rep_ == other.rep_; }

bool Value::operator<(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  const int ra = rank(*this);
  const int rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL
  if (ra == 1) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a != b) return a < b;
    return is_int64() && other.is_double();
  }
  return string_value() < other.string_value();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_int64()) {
    // Hash int64 via its double image so that Int64(5) and Double(5.0)
    // (which compare equal) hash identically when exactly representable.
    const double d = static_cast<double>(int64_value());
    if (static_cast<int64_t>(d) == int64_value()) {
      return std::hash<double>()(d);
    }
    return std::hash<int64_t>()(int64_value());
  }
  if (is_double()) return std::hash<double>()(double_value());
  return std::hash<std::string>()(string_value());
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int64()) return std::to_string(int64_value());
  if (is_double()) {
    std::ostringstream out;
    out << double_value();
    return out.str();
  }
  return string_value();
}

std::string Value::ToDisplayString(bool commas) const {
  if (is_null()) return "null";
  if (is_int64() && commas) return FormatWithCommas(int64_value());
  if (is_string()) {
    const std::string& s = string_value();
    bool needs_quotes = s.empty();
    for (char c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '-') {
        needs_quotes = true;
        break;
      }
    }
    if (needs_quotes) return "'" + s + "'";
    return s;
  }
  return ToString();
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

Result<Value> ParseValueAs(std::string_view text, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("not an integer literal: '" +
                                       std::string(text) + "'");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      // std::from_chars<double> is available but accept int syntax too.
      std::string buf(text);
      char* end = nullptr;
      const double v = std::strtod(buf.c_str(), &end);
      if (end != buf.c_str() + buf.size() || buf.empty()) {
        return Status::InvalidArgument("not a numeric literal: '" + buf +
                                       "'");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(std::string(text));
  }
  return Status::Internal("unhandled value type");
}

}  // namespace viewauth
