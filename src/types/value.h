// Typed domain values for viewauth relations.
//
// The paper (Section 2, following Maier) associates a domain with each
// attribute. viewauth supports three concrete domains — 64-bit integers,
// doubles, and strings — plus a NULL marker that the masking layer uses
// for withheld cells. Integers and doubles compare numerically with each
// other; strings compare lexicographically; NULL compares equal only to
// NULL and is unordered relative to everything else.

#ifndef VIEWAUTH_TYPES_VALUE_H_
#define VIEWAUTH_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace viewauth {

// The domain of an attribute.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ValueTypeToString(ValueType type);

// The comparators theta of the paper's comparative subformulas.
enum class Comparator {
  kEq = 0,  // =
  kNe = 1,  // !=
  kLt = 2,  // <
  kLe = 3,  // <=
  kGt = 4,  // >
  kGe = 5,  // >=
};

// Symbolic form, e.g. ">=".
std::string_view ComparatorToString(Comparator op);
// Parses "=", "!=", "<>", "<", "<=", ">", ">=". Fails otherwise.
Result<Comparator> ComparatorFromString(std::string_view text);
// ReverseComparator(op) is the comparator r such that `a op b` iff
// `b r a` (e.g. < becomes >).
Comparator ReverseComparator(Comparator op);
// NegateComparator(op) is the comparator n such that `a op b` iff
// NOT `a n b` (e.g. < becomes >=).
Comparator NegateComparator(Comparator op);

class Value {
 public:
  // The default value is NULL (a masked / withheld cell).
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  bool is_null() const { return std::holds_alternative<NullRep>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  // True for int64 or double.
  bool is_numeric() const { return is_int64() || is_double(); }

  // Type of a non-null value. Must not be called on NULL.
  ValueType type() const;

  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }
  // Numeric value widened to double (int64 or double).
  double AsDouble() const;

  // Three-way comparison: negative/zero/positive, or nullopt when the
  // values are incomparable (NULL vs anything, or string vs numeric).
  std::optional<int> Compare(const Value& other) const;

  // Evaluates `*this op other`. Incomparable pairs yield false for every
  // comparator (NULL never satisfies a predicate), matching SQL-style
  // filtering semantics.
  bool Satisfies(Comparator op, const Value& other) const;

  // Strict equality: same type and same contents (NULL == NULL). Unlike
  // Satisfies(kEq, ...), this treats two NULLs as equal, which is what
  // tuple identity (set semantics, hashing) needs.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order for container use: NULL < numerics < strings; numerics
  // among themselves by numeric value (ties broken int64 < double).
  bool operator<(const Value& other) const;

  size_t Hash() const;

  // Display form: integers as-is, doubles with minimal digits, strings
  // unquoted, NULL as "null".
  std::string ToString() const;
  // Like ToString but strings are single-quoted when they contain
  // whitespace or punctuation that would confuse the parser, and integers
  // may use thousands separators if `commas` is set (paper figures style).
  std::string ToDisplayString(bool commas) const;

 private:
  struct NullRep {
    bool operator==(const NullRep&) const { return true; }
  };
  using Rep = std::variant<NullRep, int64_t, double, std::string>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// Parses a literal in the viewauth surface syntax into a value of the
// requested type, with int64->double widening allowed.
Result<Value> ParseValueAs(std::string_view text, ValueType type);

}  // namespace viewauth

#endif  // VIEWAUTH_TYPES_VALUE_H_
