// Tokens of the viewauth surface language (the paper's view / permit /
// retrieve statements, plus DDL and DML needed to build databases).

#ifndef VIEWAUTH_PARSER_TOKEN_H_
#define VIEWAUTH_PARSER_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace viewauth {

enum class TokenKind {
  kIdentifier,  // EMPLOYEE, Acme, bq-45
  kInteger,     // 250000
  kDouble,      // 1.5
  kString,      // 'hello world'
  kComma,       // ,
  kLParen,      // (
  kRParen,      // )
  kDot,         // .
  kColon,       // :
  kSemicolon,   // ;
  kComparator,  // = != <> < <= > >=
  kEnd,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  // Raw text (identifier spelling, comparator symbol, string contents
  // without quotes).
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  // 1-based source position, for error messages.
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace viewauth

#endif  // VIEWAUTH_PARSER_TOKEN_H_
