#include "parser/ast.h"

#include <sstream>

#include "common/str_util.h"

namespace viewauth {

std::string AttributeRef::ToString() const {
  std::string out = relation;
  if (occurrence != 1) {
    out += ":" + std::to_string(occurrence);
  }
  out += "." + attribute;
  return out;
}

std::string ConditionOperand::ToString() const {
  if (is_attribute) return attribute.ToString();
  return constant.ToDisplayString(/*commas=*/false);
}

std::string Condition::ToString() const {
  std::ostringstream out;
  out << lhs.ToString() << " " << ComparatorToString(op) << " "
      << rhs.ToString();
  return out.str();
}

std::string RelationStmt::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes.size());
  for (const AttributeDecl& attr : attributes) {
    std::string part = attr.name + " ";
    part += ValueTypeToString(attr.type);
    if (attr.is_key) part += " key";
    parts.push_back(std::move(part));
  }
  return "relation " + name + " (" + Join(parts, ", ") + ")";
}

std::string InsertStmt::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) {
    parts.push_back(v.ToDisplayString(/*commas=*/false));
  }
  std::string out =
      "insert into " + relation + " values (" + Join(parts, ", ") + ")";
  if (!as_user.empty()) out += " as " + as_user;
  return out;
}

std::string_view GrantModeToString(GrantMode mode) {
  switch (mode) {
    case GrantMode::kRetrieve:
      return "retrieve";
    case GrantMode::kInsert:
      return "insert";
    case GrantMode::kDelete:
      return "delete";
    case GrantMode::kModify:
      return "modify";
  }
  return "?";
}

namespace {

std::string TargetsAndConditions(const std::vector<AttributeRef>& targets,
                                 const std::vector<Condition>& conditions) {
  std::vector<std::string> target_parts;
  target_parts.reserve(targets.size());
  for (const AttributeRef& ref : targets) target_parts.push_back(ref.ToString());
  std::string out = "(" + Join(target_parts, ", ") + ")";
  if (!conditions.empty()) {
    std::vector<std::string> cond_parts;
    cond_parts.reserve(conditions.size());
    for (const Condition& c : conditions) cond_parts.push_back(c.ToString());
    out += " where " + Join(cond_parts, " and ");
  }
  return out;
}

}  // namespace

std::string ViewStmt::ToString() const {
  std::string out = "view " + name + " " +
                    TargetsAndConditions(targets, conditions);
  for (const std::vector<Condition>& branch : or_branches) {
    std::vector<std::string> parts;
    parts.reserve(branch.size());
    for (const Condition& c : branch) parts.push_back(c.ToString());
    out += " or " + Join(parts, " and ");
  }
  return out;
}

std::string PermitStmt::ToString() const {
  std::string out = "permit " + view + " to " + user;
  if (mode != GrantMode::kRetrieve) {
    out += " for " + std::string(GrantModeToString(mode));
  }
  return out;
}

std::string DenyStmt::ToString() const {
  std::string out = "deny " + view + " to " + user;
  if (mode != GrantMode::kRetrieve) {
    out += " for " + std::string(GrantModeToString(mode));
  }
  return out;
}

std::string DeleteStmt::ToString() const {
  std::string out = "delete from " + relation;
  if (!conditions.empty()) {
    std::vector<std::string> parts;
    parts.reserve(conditions.size());
    for (const Condition& c : conditions) parts.push_back(c.ToString());
    out += " where " + Join(parts, " and ");
  }
  if (!as_user.empty()) out += " as " + as_user;
  return out;
}

std::string RetrieveStmt::ToString() const {
  std::string out = "retrieve " + TargetsAndConditions(targets, conditions);
  for (const std::vector<Condition>& branch : or_branches) {
    std::vector<std::string> parts;
    parts.reserve(branch.size());
    for (const Condition& c : branch) parts.push_back(c.ToString());
    out += " or " + Join(parts, " and ");
  }
  if (!as_user.empty()) out += " as " + as_user;
  return out;
}

std::string ModifyStmt::ToString() const {
  std::vector<std::string> sets;
  sets.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    sets.push_back(a.attribute + " = " +
                   a.value.ToDisplayString(/*commas=*/false));
  }
  std::string out = "modify " + relation + " set " + Join(sets, ", ");
  if (!conditions.empty()) {
    std::vector<std::string> parts;
    parts.reserve(conditions.size());
    for (const Condition& c : conditions) parts.push_back(c.ToString());
    out += " where " + Join(parts, " and ");
  }
  if (!as_user.empty()) out += " as " + as_user;
  return out;
}

std::string DropStmt::ToString() const {
  return std::string("drop ") + (is_view ? "view " : "relation ") + name;
}

std::string MemberStmt::ToString() const {
  return std::string(remove ? "unmember " : "member ") + user + " of " +
         group;
}

std::string AnalyzeStmt::ToString() const {
  return audit ? "analyze audit" : "analyze";
}

std::string StatementToString(const Statement& stmt) {
  return std::visit([](const auto& s) { return s.ToString(); }, stmt);
}

}  // namespace viewauth
