#include "parser/lexer.h"

#include <cctype>
#include <charconv>

namespace viewauth {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      VIEWAUTH_ASSIGN_OR_RETURN(Token token, Next(tokens));
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    end.column = column_;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at line " +
                                   std::to_string(line_) + ", column " +
                                   std::to_string(column_));
  }

  Result<Token> Next(const std::vector<Token>& so_far) {
    Token token;
    token.line = line_;
    token.column = column_;
    char c = Peek();

    if (IsIdentStart(c)) return LexIdentifier(std::move(token));
    if (IsDigit(c)) return LexNumber(std::move(token), /*negative=*/false);
    if (c == '-' && IsDigit(Peek(1)) && !PreviousIsValue(so_far)) {
      Advance();
      return LexNumber(std::move(token), /*negative=*/true);
    }
    if (c == '\'') return LexString(std::move(token));

    Advance();
    switch (c) {
      case ',':
        token.kind = TokenKind::kComma;
        return token;
      case '(':
        token.kind = TokenKind::kLParen;
        return token;
      case ')':
        token.kind = TokenKind::kRParen;
        return token;
      case '.':
        token.kind = TokenKind::kDot;
        return token;
      case ':':
        token.kind = TokenKind::kColon;
        return token;
      case ';':
        token.kind = TokenKind::kSemicolon;
        return token;
      case '=':
        token.kind = TokenKind::kComparator;
        token.text = "=";
        return token;
      case '!':
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kComparator;
          token.text = "!=";
          return token;
        }
        return Error("unexpected '!'");
      case '<':
        token.kind = TokenKind::kComparator;
        if (Peek() == '=') {
          Advance();
          token.text = "<=";
        } else if (Peek() == '>') {
          Advance();
          token.text = "!=";
        } else {
          token.text = "<";
        }
        return token;
      case '>':
        token.kind = TokenKind::kComparator;
        if (Peek() == '=') {
          Advance();
          token.text = ">=";
        } else {
          token.text = ">";
        }
        return token;
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  // True if the most recent token could end a value expression, in which
  // case a following '-' cannot start a negative literal.
  static bool PreviousIsValue(const std::vector<Token>& so_far) {
    if (so_far.empty()) return false;
    switch (so_far.back().kind) {
      case TokenKind::kIdentifier:
      case TokenKind::kInteger:
      case TokenKind::kDouble:
      case TokenKind::kString:
      case TokenKind::kRParen:
        return true;
      default:
        return false;
    }
  }

  Result<Token> LexIdentifier(Token token) {
    std::string text;
    text.push_back(Advance());
    while (!AtEnd()) {
      char c = Peek();
      if (IsIdentChar(c)) {
        text.push_back(Advance());
      } else if (c == '-' && IsIdentChar(Peek(1))) {
        // Interior dash: part of identifiers like "bq-45".
        text.push_back(Advance());
      } else {
        break;
      }
    }
    token.kind = TokenKind::kIdentifier;
    token.text = std::move(text);
    return token;
  }

  Result<Token> LexNumber(Token token, bool negative) {
    std::string digits;
    bool is_double = false;
    while (!AtEnd() && IsDigit(Peek())) digits.push_back(Advance());
    if (!AtEnd() && Peek() == '.' && IsDigit(Peek(1))) {
      is_double = true;
      digits.push_back(Advance());
      while (!AtEnd() && IsDigit(Peek())) digits.push_back(Advance());
    }
    if (negative) digits.insert(digits.begin(), '-');
    if (is_double) {
      token.kind = TokenKind::kDouble;
      token.double_value = std::stod(digits);
    } else {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), v);
      if (ec != std::errc()) return Error("integer literal out of range");
      (void)ptr;
      token.kind = TokenKind::kInteger;
      token.int_value = v;
    }
    token.text = std::move(digits);
    return token;
  }

  Result<Token> LexString(Token token) {
    Advance();  // opening quote
    std::string text;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {
          text.push_back('\'');
          Advance();
        } else {
          break;
        }
      } else {
        text.push_back(c);
      }
    }
    token.kind = TokenKind::kString;
    token.text = std::move(text);
    return token;
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  return LexerImpl(input).Run();
}

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kString:
      return "string";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kComparator:
      return "comparator";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kEnd) return "end of input";
  if (text.empty()) return std::string(TokenKindToString(kind));
  return std::string(TokenKindToString(kind)) + " '" + text + "'";
}

}  // namespace viewauth
