// Recursive-descent parser for the viewauth surface language.

#ifndef VIEWAUTH_PARSER_PARSER_H_
#define VIEWAUTH_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"

namespace viewauth {

// Parses a single statement. Trailing input after the statement is an
// error (use ParseProgram for statement sequences).
Result<Statement> ParseStatement(std::string_view input);

// Parses a sequence of statements (semicolons between statements are
// optional; keywords delimit statements).
Result<std::vector<Statement>> ParseProgram(std::string_view input);

}  // namespace viewauth

#endif  // VIEWAUTH_PARSER_PARSER_H_
