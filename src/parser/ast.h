// Abstract syntax for the viewauth surface language.
//
// Statements:
//   relation R (A type [key], ...)             -- DDL
//   insert into R values (v, ...)              -- DML
//   view V (R.A, S:2.B, ...) [where cond and ...]
//   permit V to USER
//   deny V to USER                             -- revokes a permit
//   retrieve (R.A, ...) [where cond and ...] [as USER]
//
// Conditions are primitive comparisons between qualified attribute
// references and constants. `R:i` denotes the i'th occurrence of R when a
// view or query mentions the same relation several times (paper Sec. 2).

#ifndef VIEWAUTH_PARSER_AST_H_
#define VIEWAUTH_PARSER_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "types/value.h"

namespace viewauth {

// A qualified attribute reference `RELATION[:occurrence].ATTRIBUTE`.
struct AttributeRef {
  std::string relation;
  int occurrence = 1;  // 1-based
  std::string attribute;

  bool operator==(const AttributeRef& other) const {
    return relation == other.relation && occurrence == other.occurrence &&
           attribute == other.attribute;
  }
  // "EMPLOYEE.NAME" or "EMPLOYEE:2.NAME".
  std::string ToString() const;
};

// The right-hand side of a condition: an attribute or a constant.
struct ConditionOperand {
  bool is_attribute = false;
  AttributeRef attribute;  // valid when is_attribute
  Value constant;          // valid otherwise

  static ConditionOperand Attr(AttributeRef ref) {
    ConditionOperand op;
    op.is_attribute = true;
    op.attribute = std::move(ref);
    return op;
  }
  static ConditionOperand Const(Value value) {
    ConditionOperand op;
    op.constant = std::move(value);
    return op;
  }
  std::string ToString() const;
};

// One conjunct of a where clause.
struct Condition {
  AttributeRef lhs;
  Comparator op = Comparator::kEq;
  ConditionOperand rhs;

  std::string ToString() const;
};

struct RelationStmt {
  struct AttributeDecl {
    std::string name;
    ValueType type = ValueType::kString;
    bool is_key = false;
  };
  std::string name;
  std::vector<AttributeDecl> attributes;

  std::string ToString() const;
};

struct InsertStmt {
  std::string relation;
  std::vector<Value> values;
  // Optional `as USER`: the insert is then subject to insert-mode
  // permissions; without it the statement is an administrative load.
  std::string as_user;

  std::string ToString() const;
};

struct ViewStmt {
  std::string name;
  std::vector<AttributeRef> targets;
  // The first (or only) conjunctive branch of the where clause.
  std::vector<Condition> conditions;
  // Additional branches: `where c1 and c2 or c3 and c4` parses as two
  // branches {c1,c2} and {c3,c4} (the paper's conclusion (2): views with
  // disjunctions). Empty for purely conjunctive views.
  std::vector<std::vector<Condition>> or_branches;

  std::string ToString() const;
};

// The access mode of a grant:
// `permit V to U [for insert|delete|modify]`.
enum class GrantMode { kRetrieve = 0, kInsert = 1, kDelete = 2, kModify = 3 };

std::string_view GrantModeToString(GrantMode mode);

struct PermitStmt {
  std::string view;
  std::string user;
  GrantMode mode = GrantMode::kRetrieve;

  std::string ToString() const;
};

struct DenyStmt {
  std::string view;
  std::string user;
  GrantMode mode = GrantMode::kRetrieve;

  std::string ToString() const;
};

// delete from R [where cond and ...] [as USER]
struct DeleteStmt {
  std::string relation;
  std::vector<Condition> conditions;
  std::string as_user;

  std::string ToString() const;
};

// modify R set A = v [, B = w ...] [where cond and ...] [as USER]
struct ModifyStmt {
  struct Assignment {
    std::string attribute;
    Value value;
  };
  std::string relation;
  std::vector<Assignment> assignments;
  std::vector<Condition> conditions;
  std::string as_user;

  std::string ToString() const;
};

struct RetrieveStmt {
  std::vector<AttributeRef> targets;
  std::vector<Condition> conditions;
  // Additional `or` branches (paper conclusion (2) also covers queries):
  // the answer is the union of the branches' answers, each authorized
  // independently.
  std::vector<std::vector<Condition>> or_branches;
  // Optional `as USER` clause; empty means the ambient session user.
  std::string as_user;

  std::string ToString() const;
};

// member U of G   |   unmember U of G
struct MemberStmt {
  bool remove = false;
  std::string user;
  std::string group;

  std::string ToString() const;
};

// drop relation R   |   drop view V
struct DropStmt {
  bool is_view = false;
  std::string name;

  std::string ToString() const;
};

// analyze [audit] — run the static catalog analyzer (src/analysis) and
// print its report. With `audit`, additionally run the disclosure
// auditor (inference channels, deny bypasses) and merge its findings
// into the report. Read-only with respect to both data and catalog.
struct AnalyzeStmt {
  bool audit = false;

  std::string ToString() const;
};

using Statement = std::variant<RelationStmt, InsertStmt, ViewStmt, PermitStmt,
                               DenyStmt, RetrieveStmt, DeleteStmt,
                               ModifyStmt, DropStmt, MemberStmt, AnalyzeStmt>;

std::string StatementToString(const Statement& stmt);

}  // namespace viewauth

#endif  // VIEWAUTH_PARSER_AST_H_
