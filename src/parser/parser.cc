#include "parser/parser.h"

#include <optional>

#include "common/str_util.h"
#include "parser/lexer.h"

namespace viewauth {

namespace {

// Keywords are recognized case-insensitively so that both the paper's
// upper-case style and conventional lower-case work.
bool IsKeyword(const Token& token, std::string_view keyword) {
  return token.kind == TokenKind::kIdentifier &&
         EqualsIgnoreCaseAscii(token.text, keyword);
}

bool IsStatementStart(const Token& token) {
  static constexpr std::string_view kStarts[] = {
      "relation", "insert",   "view",   "permit",  "deny",
      "modify",   "drop",     "retrieve", "delete", "member",
      "unmember", "analyze"};
  for (std::string_view kw : kStarts) {
    if (IsKeyword(token, kw)) return true;
  }
  return false;
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    while (!AtEnd()) {
      while (Peek().kind == TokenKind::kSemicolon) Advance();
      if (AtEnd()) break;
      VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseOne());
      statements.push_back(std::move(stmt));
    }
    return statements;
  }

  Result<Statement> ParseSingle() {
    VIEWAUTH_ASSIGN_OR_RETURN(Statement stmt, ParseOne());
    while (Peek().kind == TokenKind::kSemicolon) Advance();
    if (!AtEnd()) {
      return Error("unexpected " + Peek().Describe() + " after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument(message + " (line " +
                                   std::to_string(t.line) + ", column " +
                                   std::to_string(t.column) + ")");
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Error("expected " + std::string(what) + ", found " +
                   Peek().Describe());
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!IsKeyword(Peek(), keyword)) {
      return Error("expected '" + std::string(keyword) + "', found " +
                   Peek().Describe());
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + std::string(what) + ", found " +
                   Peek().Describe());
    }
    return Advance().text;
  }

  Result<Statement> ParseOne() {
    const Token& t = Peek();
    if (IsKeyword(t, "relation")) return ParseRelation();
    if (IsKeyword(t, "insert")) return ParseInsert();
    if (IsKeyword(t, "view")) return ParseView();
    if (IsKeyword(t, "permit")) return ParsePermit();
    if (IsKeyword(t, "deny")) return ParseDeny();
    if (IsKeyword(t, "retrieve")) return ParseRetrieve();
    if (IsKeyword(t, "delete")) return ParseDelete();
    if (IsKeyword(t, "modify")) return ParseModify();
    if (IsKeyword(t, "drop")) return ParseDrop();
    if (IsKeyword(t, "member")) return ParseMember(false);
    if (IsKeyword(t, "unmember")) return ParseMember(true);
    if (IsKeyword(t, "analyze")) {
      Advance();  // analyze
      AnalyzeStmt stmt;
      if (IsKeyword(Peek(), "audit")) {
        Advance();  // audit
        stmt.audit = true;
      }
      return Statement{stmt};
    }
    return Error("expected a statement keyword, found " + t.Describe());
  }

  Result<Statement> ParseRelation() {
    Advance();  // relation
    RelationStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("relation name"));
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      RelationStmt::AttributeDecl decl;
      VIEWAUTH_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("attribute name"));
      VIEWAUTH_ASSIGN_OR_RETURN(std::string type_name,
                                ExpectIdentifier("attribute type"));
      if (EqualsIgnoreCaseAscii(type_name, "int") ||
          EqualsIgnoreCaseAscii(type_name, "integer")) {
        decl.type = ValueType::kInt64;
      } else if (EqualsIgnoreCaseAscii(type_name, "double") ||
                 EqualsIgnoreCaseAscii(type_name, "float") ||
                 EqualsIgnoreCaseAscii(type_name, "real")) {
        decl.type = ValueType::kDouble;
      } else if (EqualsIgnoreCaseAscii(type_name, "string") ||
                 EqualsIgnoreCaseAscii(type_name, "text")) {
        decl.type = ValueType::kString;
      } else {
        return Error("unknown attribute type '" + type_name + "'");
      }
      if (IsKeyword(Peek(), "key")) {
        Advance();
        decl.is_key = true;
      }
      stmt.attributes.push_back(std::move(decl));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    Advance();  // insert
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("into"));
    InsertStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.relation,
                              ExpectIdentifier("relation name"));
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("values"));
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      VIEWAUTH_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      stmt.values.push_back(std::move(v));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    if (IsKeyword(Peek(), "as")) {
      Advance();
      VIEWAUTH_ASSIGN_OR_RETURN(stmt.as_user, ExpectIdentifier("user name"));
    }
    return Statement(std::move(stmt));
  }

  // Optional "for insert|delete|retrieve" clause of permit/deny.
  Result<GrantMode> ParseOptionalGrantMode() {
    if (!IsKeyword(Peek(), "for")) return GrantMode::kRetrieve;
    Advance();
    VIEWAUTH_ASSIGN_OR_RETURN(std::string mode,
                              ExpectIdentifier("access mode"));
    if (EqualsIgnoreCaseAscii(mode, "retrieve")) return GrantMode::kRetrieve;
    if (EqualsIgnoreCaseAscii(mode, "insert")) return GrantMode::kInsert;
    if (EqualsIgnoreCaseAscii(mode, "delete")) return GrantMode::kDelete;
    if (EqualsIgnoreCaseAscii(mode, "modify")) return GrantMode::kModify;
    return Error("unknown access mode '" + mode + "'");
  }

  Result<Statement> ParseDelete() {
    Advance();  // delete
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("from"));
    DeleteStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.relation,
                              ExpectIdentifier("relation name"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.conditions, ParseOptionalWhere());
    if (IsKeyword(Peek(), "as")) {
      Advance();
      VIEWAUTH_ASSIGN_OR_RETURN(stmt.as_user, ExpectIdentifier("user name"));
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseModify() {
    Advance();  // modify
    ModifyStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.relation,
                              ExpectIdentifier("relation name"));
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("set"));
    while (true) {
      ModifyStmt::Assignment assignment;
      VIEWAUTH_ASSIGN_OR_RETURN(assignment.attribute,
                                ExpectIdentifier("attribute name"));
      if (Peek().kind != TokenKind::kComparator || Peek().text != "=") {
        return Error("expected '=' in set clause, found " +
                     Peek().Describe());
      }
      Advance();
      VIEWAUTH_ASSIGN_OR_RETURN(assignment.value, ParseLiteral());
      stmt.assignments.push_back(std::move(assignment));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.conditions, ParseOptionalWhere());
    if (IsKeyword(Peek(), "as")) {
      Advance();
      VIEWAUTH_ASSIGN_OR_RETURN(stmt.as_user, ExpectIdentifier("user name"));
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseMember(bool remove) {
    Advance();  // member / unmember
    MemberStmt stmt;
    stmt.remove = remove;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.user, ExpectIdentifier("user name"));
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("of"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.group, ExpectIdentifier("group name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    Advance();  // drop
    DropStmt stmt;
    if (IsKeyword(Peek(), "view")) {
      stmt.is_view = true;
      Advance();
    } else if (IsKeyword(Peek(), "relation")) {
      Advance();
    } else {
      return Error("expected 'relation' or 'view' after 'drop'");
    }
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("name"));
    return Statement(std::move(stmt));
  }

  // Further conjunctive branches separated by `or` (lower precedence
  // than `and`), shared by view and retrieve statements.
  Result<std::vector<std::vector<Condition>>> ParseOrBranches(
      bool has_where) {
    std::vector<std::vector<Condition>> branches;
    while (IsKeyword(Peek(), "or")) {
      if (!has_where && branches.empty()) {
        return Error("'or' requires a preceding where clause");
      }
      Advance();  // or
      std::vector<Condition> branch;
      while (true) {
        VIEWAUTH_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
        branch.push_back(std::move(cond));
        if (IsKeyword(Peek(), "and")) {
          Advance();
          continue;
        }
        break;
      }
      branches.push_back(std::move(branch));
    }
    return branches;
  }

  Result<Statement> ParseView() {
    Advance();  // view
    ViewStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("view name"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.targets, ParseTargetList());
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.conditions, ParseOptionalWhere());
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.or_branches,
                              ParseOrBranches(!stmt.conditions.empty()));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParsePermit() {
    Advance();  // permit
    PermitStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("to"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.user, ExpectIdentifier("user name"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.mode, ParseOptionalGrantMode());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDeny() {
    Advance();  // deny
    DenyStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    VIEWAUTH_RETURN_NOT_OK(ExpectKeyword("to"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.user, ExpectIdentifier("user name"));
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.mode, ParseOptionalGrantMode());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseRetrieve() {
    Advance();  // retrieve
    RetrieveStmt stmt;
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.targets, ParseTargetList());
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.conditions, ParseOptionalWhere());
    VIEWAUTH_ASSIGN_OR_RETURN(stmt.or_branches,
                              ParseOrBranches(!stmt.conditions.empty()));
    if (IsKeyword(Peek(), "as")) {
      Advance();
      VIEWAUTH_ASSIGN_OR_RETURN(stmt.as_user, ExpectIdentifier("user name"));
    }
    return Statement(std::move(stmt));
  }

  Result<std::vector<AttributeRef>> ParseTargetList() {
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<AttributeRef> targets;
    while (true) {
      VIEWAUTH_ASSIGN_OR_RETURN(AttributeRef ref, ParseAttributeRef());
      targets.push_back(std::move(ref));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return targets;
  }

  Result<std::vector<Condition>> ParseOptionalWhere() {
    std::vector<Condition> conditions;
    if (!IsKeyword(Peek(), "where")) return conditions;
    Advance();  // where
    while (true) {
      VIEWAUTH_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
      conditions.push_back(std::move(cond));
      if (IsKeyword(Peek(), "and")) {
        Advance();
        continue;
      }
      break;
    }
    return conditions;
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    VIEWAUTH_ASSIGN_OR_RETURN(cond.lhs, ParseAttributeRef());
    if (Peek().kind != TokenKind::kComparator) {
      return Error("expected comparator, found " + Peek().Describe());
    }
    VIEWAUTH_ASSIGN_OR_RETURN(cond.op, ComparatorFromString(Advance().text));
    // The right-hand side: a qualified attribute reference (IDENT '.' or
    // IDENT ':'), or a constant. A bare identifier is a string constant
    // (the paper writes SPONSOR = Acme without quotes).
    if (Peek().kind == TokenKind::kIdentifier &&
        (Peek(1).kind == TokenKind::kDot ||
         Peek(1).kind == TokenKind::kColon)) {
      VIEWAUTH_ASSIGN_OR_RETURN(AttributeRef ref, ParseAttributeRef());
      cond.rhs = ConditionOperand::Attr(std::move(ref));
    } else {
      VIEWAUTH_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      cond.rhs = ConditionOperand::Const(std::move(v));
    }
    return cond;
  }

  Result<AttributeRef> ParseAttributeRef() {
    AttributeRef ref;
    VIEWAUTH_ASSIGN_OR_RETURN(ref.relation, ExpectIdentifier("relation name"));
    if (Peek().kind == TokenKind::kColon) {
      Advance();
      if (Peek().kind != TokenKind::kInteger || Peek().int_value < 1) {
        return Error("expected positive occurrence number after ':'");
      }
      ref.occurrence = static_cast<int>(Advance().int_value);
    }
    VIEWAUTH_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
    VIEWAUTH_ASSIGN_OR_RETURN(ref.attribute,
                              ExpectIdentifier("attribute name"));
    return ref;
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        Advance();
        return Value::Int64(t.int_value);
      case TokenKind::kDouble:
        Advance();
        return Value::Double(t.double_value);
      case TokenKind::kString:
        Advance();
        return Value::String(t.text);
      case TokenKind::kIdentifier:
        // Bare identifiers in value position are string constants, unless
        // they begin a new statement (missing operand).
        if (IsStatementStart(t)) {
          return Error("expected a value, found " + t.Describe());
        }
        Advance();
        return Value::String(t.text);
      default:
        return Error("expected a value, found " + t.Describe());
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return ParserImpl(std::move(tokens)).ParseSingle();
}

Result<std::vector<Statement>> ParseProgram(std::string_view input) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return ParserImpl(std::move(tokens)).ParseAll();
}

}  // namespace viewauth
