// Lexer for the viewauth surface language.
//
// Notes on the token grammar:
//   * Identifiers start with a letter or underscore and may contain
//     letters, digits, underscores and interior dashes ("bq-45" is one
//     identifier, matching the paper's project numbers).
//   * Numbers are integers or decimals; a leading '-' is part of the
//     number when it cannot bind to a preceding value token.
//   * Strings are single-quoted; '' escapes a quote.
//   * Comments run from "--" to end of line.

#ifndef VIEWAUTH_PARSER_LEXER_H_
#define VIEWAUTH_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace viewauth {

// Tokenizes `input`; the result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace viewauth

#endif  // VIEWAUTH_PARSER_LEXER_H_
