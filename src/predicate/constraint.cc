#include "predicate/constraint.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/str_util.h"

namespace viewauth {

namespace {

// Unordered pair key with a canonical order.
std::pair<TermId, TermId> OrderedPair(TermId a, TermId b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

}  // namespace

bool ConstraintAtom::operator==(const ConstraintAtom& other) const {
  if (lhs != other.lhs || op != other.op ||
      rhs_is_term != other.rhs_is_term) {
    return false;
  }
  if (rhs_is_term) return rhs_term == other.rhs_term;
  return rhs_const == other.rhs_const;
}

std::string ConstraintAtom::ToString(
    const std::function<std::string(TermId)>& namer) const {
  std::ostringstream out;
  out << namer(lhs) << " " << ComparatorToString(op) << " ";
  if (rhs_is_term) {
    out << namer(rhs_term);
  } else {
    out << rhs_const.ToDisplayString(/*commas=*/false);
  }
  return out.str();
}

std::string_view TruthToString(Truth truth) {
  switch (truth) {
    case Truth::kFalse:
      return "false";
    case Truth::kTrue:
      return "true";
    case Truth::kUnknown:
      return "unknown";
  }
  return "?";
}

TermId ConstraintSet::Solved::Find(TermId t) {
  auto it = parent.find(t);
  if (it == parent.end()) {
    parent[t] = t;
    return t;
  }
  if (it->second == t) return t;
  TermId root = Find(it->second);
  parent[t] = root;
  return root;
}

TermId ConstraintSet::Solved::FindConst(TermId t) const {
  auto it = parent.find(t);
  while (it != parent.end() && it->second != t) {
    t = it->second;
    it = parent.find(t);
  }
  return t;
}

void ConstraintSet::DeclareTermType(TermId term, ValueType type) {
  term_types_[term] = type;
  solved_.reset();
}

void ConstraintSet::Add(const ConstraintAtom& atom) {
  atoms_.push_back(atom);
  solved_.reset();
}

void ConstraintSet::AddAll(const ConstraintSet& other) {
  for (const auto& [term, type] : other.term_types_) {
    term_types_.emplace(term, type);
  }
  for (const ConstraintAtom& atom : other.atoms_) {
    // Skip exact duplicates: meta-products repeatedly merge tuples that
    // carry the same view-level constraint store.
    if (std::find(atoms_.begin(), atoms_.end(), atom) == atoms_.end()) {
      atoms_.push_back(atom);
    }
  }
  solved_.reset();
}

namespace {

// Three-way compare of two bound endpoints; nullopt when incomparable.
std::optional<int> CompareValues(const Value& a, const Value& b) {
  return a.Compare(b);
}

}  // namespace

const ConstraintSet::Solved& ConstraintSet::Normalized() const {
  if (solved_.has_value()) return *solved_;
  Solved s;

  // Collect every mentioned term so union-find covers them all.
  auto touch = [&s](TermId t) { s.Find(t); };
  for (const ConstraintAtom& atom : atoms_) {
    touch(atom.lhs);
    if (atom.rhs_is_term) touch(atom.rhs_term);
  }

  // Outer loop: re-derive all per-class state whenever classes merge.
  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool merged = false;
    s.lower.clear();
    s.upper.clear();
    s.pin.clear();
    s.edges.clear();
    s.diseq_terms.clear();
    s.diseq_consts.clear();
    s.unsat = false;

    // -- Phase 1: term=term unions.
    for (const ConstraintAtom& atom : atoms_) {
      if (atom.rhs_is_term && atom.op == Comparator::kEq) {
        TermId a = s.Find(atom.lhs);
        TermId b = s.Find(atom.rhs_term);
        if (a != b) {
          s.parent[b] = a;
          merged = true;
        }
      }
    }
    if (merged) continue;

    // Domain type of a class: string / numeric / unknown, with conflicts
    // detected. Returns unsat via flag.
    std::map<TermId, int> class_kind;  // 0 unknown, 1 numeric, 2 string
    std::map<TermId, bool> class_all_int;  // all typed members int64
    std::map<TermId, bool> class_any_typed;
    for (const auto& [term, type] : term_types_) {
      TermId root = s.Find(term);
      int kind = IsNumericType(type) ? 1 : 2;
      auto [it, inserted] = class_kind.emplace(root, kind);
      if (!inserted && it->second != 0 && it->second != kind) {
        s.unsat = true;  // string and numeric terms forced equal
      }
      bool is_int = (type == ValueType::kInt64);
      auto [jt, j_ins] = class_all_int.emplace(root, is_int);
      if (!j_ins) jt->second = jt->second && is_int;
      class_any_typed[root] = true;
    }
    if (s.unsat) break;

    auto kind_of_value = [](const Value& v) { return v.is_string() ? 2 : 1; };
    auto const_compatible = [&](TermId root, const Value& c) {
      auto it = class_kind.find(root);
      if (it == class_kind.end() || it->second == 0) return true;
      return it->second == kind_of_value(c);
    };

    // -- Phase 2: apply the remaining atoms onto class state.
    auto apply_lower = [&s](TermId root, const Value& v, bool strict) {
      Bound& b = s.lower[root];
      if (!b.value.has_value()) {
        b.value = v;
        b.strict = strict;
        return;
      }
      std::optional<int> cmp = CompareValues(v, *b.value);
      if (!cmp.has_value()) {
        s.unsat = true;  // bounds from incomparable domains
        return;
      }
      if (*cmp > 0 || (*cmp == 0 && strict && !b.strict)) {
        b.value = v;
        b.strict = strict;
      }
    };
    auto apply_upper = [&s](TermId root, const Value& v, bool strict) {
      Bound& b = s.upper[root];
      if (!b.value.has_value()) {
        b.value = v;
        b.strict = strict;
        return;
      }
      std::optional<int> cmp = CompareValues(v, *b.value);
      if (!cmp.has_value()) {
        s.unsat = true;
        return;
      }
      if (*cmp < 0 || (*cmp == 0 && strict && !b.strict)) {
        b.value = v;
        b.strict = strict;
      }
    };
    auto apply_pin = [&s](TermId root, const Value& v) {
      auto it = s.pin.find(root);
      if (it == s.pin.end()) {
        s.pin.emplace(root, v);
        return;
      }
      std::optional<int> cmp = CompareValues(it->second, v);
      if (!cmp.has_value() || *cmp != 0) s.unsat = true;
    };
    auto add_edge = [&s](TermId a, TermId b, bool strict) {
      if (a == b) {
        if (strict) s.unsat = true;
        return;
      }
      auto [it, inserted] = s.edges.emplace(std::make_pair(a, b), strict);
      if (!inserted) it->second = it->second || strict;
    };

    for (const ConstraintAtom& atom : atoms_) {
      if (s.unsat) break;
      TermId a = s.Find(atom.lhs);
      if (atom.rhs_is_term) {
        TermId b = s.Find(atom.rhs_term);
        switch (atom.op) {
          case Comparator::kEq:
            break;  // already unioned
          case Comparator::kNe:
            if (a == b) {
              s.unsat = true;
            } else {
              s.diseq_terms.insert(OrderedPair(a, b));
            }
            break;
          case Comparator::kLt:
            add_edge(a, b, true);
            break;
          case Comparator::kLe:
            add_edge(a, b, false);
            break;
          case Comparator::kGt:
            add_edge(b, a, true);
            break;
          case Comparator::kGe:
            add_edge(b, a, false);
            break;
        }
        continue;
      }
      const Value& c = atom.rhs_const;
      if (!const_compatible(a, c)) {
        // A predicate comparing incompatible domains is never satisfied,
        // except != which is always satisfied.
        if (atom.op != Comparator::kNe) s.unsat = true;
        continue;
      }
      switch (atom.op) {
        case Comparator::kEq:
          apply_pin(a, c);
          apply_lower(a, c, false);
          apply_upper(a, c, false);
          break;
        case Comparator::kNe:
          s.diseq_consts.insert(std::make_pair(a, c));
          break;
        case Comparator::kLt:
          apply_upper(a, c, true);
          break;
        case Comparator::kLe:
          apply_upper(a, c, false);
          break;
        case Comparator::kGt:
          apply_lower(a, c, true);
          break;
        case Comparator::kGe:
          apply_lower(a, c, false);
          break;
      }
    }
    if (s.unsat) break;

    // -- Phase 3: transitive closure of the order graph (Floyd-Warshall
    // over the small set of classes).
    std::vector<TermId> roots;
    for (const auto& [t, p] : s.parent) {
      if (t == p) roots.push_back(t);
    }
    for (TermId k : roots) {
      for (TermId i : roots) {
        auto ik = s.edges.find(std::make_pair(i, k));
        if (ik == s.edges.end()) continue;
        for (TermId j : roots) {
          auto kj = s.edges.find(std::make_pair(k, j));
          if (kj == s.edges.end()) continue;
          add_edge(i, j, ik->second || kj->second);
          if (s.unsat) break;
        }
        if (s.unsat) break;
      }
      if (s.unsat) break;
    }
    if (s.unsat) break;

    // a <= b and b <= a (both non-strict) forces a = b: merge and redo.
    for (const auto& [key, strict] : s.edges) {
      if (strict) continue;
      auto back = s.edges.find(std::make_pair(key.second, key.first));
      if (back != s.edges.end() && !back->second) {
        s.parent[key.second] = key.first;
        merged = true;
        break;
      }
    }
    if (merged) continue;

    // A disequality plus a non-strict edge sharpens the edge to strict.
    for (const auto& [key, strict] : s.edges) {
      if (strict) continue;
      if (s.diseq_terms.contains(OrderedPair(key.first, key.second))) {
        s.edges[key] = true;
      }
    }

    // -- Phase 4: bound propagation + integer tightening, to fixpoint.
    for (int iter = 0; iter < 32; ++iter) {
      bool changed = false;
      auto lower_before = s.lower;
      auto upper_before = s.upper;
      // Propagate bounds along edges a (<,<=) b.
      for (const auto& [key, strict] : s.edges) {
        TermId a = key.first;
        TermId b = key.second;
        auto lo_a = s.lower.find(a);
        if (lo_a != s.lower.end() && lo_a->second.value.has_value()) {
          apply_lower(b, *lo_a->second.value,
                      lo_a->second.strict || strict);
        }
        auto up_b = s.upper.find(b);
        if (up_b != s.upper.end() && up_b->second.value.has_value()) {
          apply_upper(a, *up_b->second.value,
                      up_b->second.strict || strict);
        }
      }
      if (s.unsat) break;
      // Integer tightening: on classes whose typed members are all int,
      // strict constant bounds become non-strict at the next integer, and
      // a != c at a closed bound endpoint reopens the bound.
      for (TermId root : roots) {
        auto any_it = class_any_typed.find(root);
        auto all_it = class_all_int.find(root);
        bool is_int_class = any_it != class_any_typed.end() &&
                            any_it->second && all_it != class_all_int.end() &&
                            all_it->second;
        if (!is_int_class) continue;
        auto lo = s.lower.find(root);
        if (lo != s.lower.end() && lo->second.value.has_value() &&
            lo->second.value->is_numeric()) {
          double v = lo->second.value->AsDouble();
          int64_t tightened = lo->second.strict
                                  ? static_cast<int64_t>(std::floor(v)) + 1
                                  : static_cast<int64_t>(std::ceil(v));
          Value nv = Value::Int64(tightened);
          if (!(nv == *lo->second.value) || lo->second.strict) {
            lo->second.value = nv;
            lo->second.strict = false;
          }
        }
        auto up = s.upper.find(root);
        if (up != s.upper.end() && up->second.value.has_value() &&
            up->second.value->is_numeric()) {
          double v = up->second.value->AsDouble();
          int64_t tightened = up->second.strict
                                  ? static_cast<int64_t>(std::ceil(v)) - 1
                                  : static_cast<int64_t>(std::floor(v));
          Value nv = Value::Int64(tightened);
          if (!(nv == *up->second.value) || up->second.strict) {
            up->second.value = nv;
            up->second.strict = false;
          }
        }
      }
      // != at a closed endpoint opens it.
      for (const auto& [root, c] : s.diseq_consts) {
        auto lo = s.lower.find(root);
        if (lo != s.lower.end() && lo->second.value.has_value() &&
            !lo->second.strict) {
          std::optional<int> cmp = CompareValues(*lo->second.value, c);
          if (cmp.has_value() && *cmp == 0) lo->second.strict = true;
        }
        auto up = s.upper.find(root);
        if (up != s.upper.end() && up->second.value.has_value() &&
            !up->second.strict) {
          std::optional<int> cmp = CompareValues(*up->second.value, c);
          if (cmp.has_value() && *cmp == 0) up->second.strict = true;
        }
      }
      changed = !(lower_before == s.lower && upper_before == s.upper);
      if (!changed || s.unsat) break;
    }
    if (s.unsat) break;

    // -- Phase 5: derive pins from collapsed bounds; consistency checks.
    for (TermId root : roots) {
      auto lo = s.lower.find(root);
      auto up = s.upper.find(root);
      bool has_lo = lo != s.lower.end() && lo->second.value.has_value();
      bool has_up = up != s.upper.end() && up->second.value.has_value();
      if (!has_lo || !has_up) continue;
      std::optional<int> cmp =
          CompareValues(*lo->second.value, *up->second.value);
      if (!cmp.has_value() || *cmp > 0) {
        s.unsat = true;
        break;
      }
      if (*cmp == 0) {
        if (lo->second.strict || up->second.strict) {
          s.unsat = true;
          break;
        }
        apply_pin(root, *lo->second.value);
      }
    }
    if (s.unsat) break;

    for (const auto& [root, c] : s.diseq_consts) {
      auto pin = s.pin.find(root);
      if (pin != s.pin.end()) {
        std::optional<int> cmp = CompareValues(pin->second, c);
        if (cmp.has_value() && *cmp == 0) {
          s.unsat = true;
          break;
        }
      }
    }
    if (s.unsat) break;

    for (const auto& pair : s.diseq_terms) {
      if (pair.first == pair.second) {
        s.unsat = true;
        break;
      }
      auto pa = s.pin.find(pair.first);
      auto pb = s.pin.find(pair.second);
      if (pa != s.pin.end() && pb != s.pin.end()) {
        std::optional<int> cmp = CompareValues(pa->second, pb->second);
        if (cmp.has_value() && *cmp == 0) {
          s.unsat = true;
          break;
        }
      }
    }
    if (s.unsat) break;

    // Edges between pinned classes must hold.
    for (const auto& [key, strict] : s.edges) {
      auto pa = s.pin.find(key.first);
      auto pb = s.pin.find(key.second);
      if (pa == s.pin.end() || pb == s.pin.end()) continue;
      std::optional<int> cmp = CompareValues(pa->second, pb->second);
      if (!cmp.has_value() || *cmp > 0 || (*cmp == 0 && strict)) {
        s.unsat = true;
        break;
      }
    }
    break;
  }

  solved_ = std::move(s);
  return *solved_;
}

bool ConstraintSet::IsSatisfiable() const { return !Normalized().unsat; }

Truth ConstraintSet::DeepCheckSatisfiable(long long limit) const {
  const Solved& s = Normalized();
  if (s.unsat) return Truth::kFalse;
  std::vector<TermId> terms = MentionedTerms();
  if (terms.empty()) return Truth::kTrue;

  // Group the mentioned terms into solver classes; enumeration assigns
  // one value per class (equalities are sound, so every model agrees
  // within a class).
  std::map<TermId, std::vector<TermId>> classes;
  for (TermId t : terms) classes[s.FindConst(t)].push_back(t);

  struct ClassDomain {
    std::vector<TermId> members;
    std::vector<Value> values;
  };
  std::vector<ClassDomain> domains;
  long long combinations = 1;
  for (auto& [root, members] : classes) {
    ClassDomain domain;
    domain.members = members;
    auto pin = s.pin.find(root);
    if (pin != s.pin.end()) {
      domain.values.push_back(pin->second);
      domains.push_back(std::move(domain));
      continue;
    }
    // Without a pin, a finite domain requires an all-integer class with
    // both bounds derived. (The derived bounds are necessary conditions,
    // so every model lies inside them.)
    for (TermId member : members) {
      auto type = term_types_.find(member);
      if (type == term_types_.end() || type->second != ValueType::kInt64) {
        return Truth::kUnknown;
      }
    }
    auto lo = s.lower.find(root);
    auto up = s.upper.find(root);
    if (lo == s.lower.end() || !lo->second.value.has_value() ||
        up == s.upper.end() || !up->second.value.has_value() ||
        !lo->second.value->is_numeric() || !up->second.value->is_numeric()) {
      return Truth::kUnknown;
    }
    // Integer tightening normally leaves closed Int64 bounds; re-derive
    // the closed endpoints defensively for strict or fractional ones.
    double lo_raw = lo->second.value->AsDouble();
    double hi_raw = up->second.value->AsDouble();
    int64_t lo_int = static_cast<int64_t>(std::ceil(lo_raw));
    if (lo->second.strict && lo_int == static_cast<int64_t>(lo_raw)) ++lo_int;
    int64_t hi_int = static_cast<int64_t>(std::floor(hi_raw));
    if (up->second.strict && hi_int == static_cast<int64_t>(hi_raw)) --hi_int;
    if (lo_int > hi_int) return Truth::kFalse;
    long long width = hi_int - lo_int + 1;
    if (width > limit || combinations > limit / width) {
      return Truth::kUnknown;
    }
    combinations *= width;
    for (int64_t v = lo_int; v <= hi_int; ++v) {
      domain.values.push_back(Value::Int64(v));
    }
    domains.push_back(std::move(domain));
  }

  // Odometer over the class domains, testing the source atoms directly.
  std::vector<size_t> index(domains.size(), 0);
  std::map<TermId, Value> assignment;
  while (true) {
    for (size_t i = 0; i < domains.size(); ++i) {
      for (TermId member : domains[i].members) {
        assignment[member] = domains[i].values[index[i]];
      }
    }
    if (Satisfied(assignment)) return Truth::kTrue;
    size_t pos = 0;
    while (pos < domains.size() &&
           ++index[pos] == domains[pos].values.size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == domains.size()) break;
  }
  return Truth::kFalse;
}

Truth ConstraintSet::Implies(const ConstraintAtom& atom) const {
  const Solved& s = Normalized();
  if (s.unsat) return Truth::kTrue;  // vacuous

  TermId a = s.FindConst(atom.lhs);
  auto pin_a = s.pin.find(a);
  auto lo_a = s.lower.find(a);
  auto up_a = s.upper.find(a);
  const bool has_lo = lo_a != s.lower.end() && lo_a->second.value.has_value();
  const bool has_up = up_a != s.upper.end() && up_a->second.value.has_value();

  if (!atom.rhs_is_term) {
    const Value& c = atom.rhs_const;
    // Relationship between the class and the constant c.
    bool known_le = false, known_lt = false;  // term <= c / term < c
    bool known_ge = false, known_gt = false;
    bool known_ne = s.diseq_consts.contains(std::make_pair(a, c));
    bool known_eq = false;
    if (pin_a != s.pin.end()) {
      std::optional<int> cmp = pin_a->second.Compare(c);
      if (!cmp.has_value()) {
        known_ne = true;  // incomparable domains are never equal
      } else {
        known_eq = *cmp == 0;
        known_lt = *cmp < 0;
        known_gt = *cmp > 0;
        known_le = *cmp <= 0;
        known_ge = *cmp >= 0;
        known_ne = known_ne || *cmp != 0;
      }
    } else {
      if (has_up) {
        std::optional<int> cmp = up_a->second.value->Compare(c);
        if (cmp.has_value()) {
          if (*cmp < 0 || (*cmp == 0 && up_a->second.strict)) {
            known_lt = known_le = true;
          } else if (*cmp == 0) {
            known_le = true;
          }
        }
      }
      if (has_lo) {
        std::optional<int> cmp = lo_a->second.value->Compare(c);
        if (cmp.has_value()) {
          if (*cmp > 0 || (*cmp == 0 && lo_a->second.strict)) {
            known_gt = known_ge = true;
          } else if (*cmp == 0) {
            known_ge = true;
          }
        }
      }
    }
    known_ne = known_ne || known_lt || known_gt;
    switch (atom.op) {
      case Comparator::kEq:
        if (known_eq) return Truth::kTrue;
        if (known_ne) return Truth::kFalse;
        return Truth::kUnknown;
      case Comparator::kNe:
        if (known_ne) return Truth::kTrue;
        if (known_eq) return Truth::kFalse;
        return Truth::kUnknown;
      case Comparator::kLt:
        if (known_lt) return Truth::kTrue;
        if (known_ge) return Truth::kFalse;
        return Truth::kUnknown;
      case Comparator::kLe:
        if (known_le) return Truth::kTrue;
        if (known_gt) return Truth::kFalse;
        return Truth::kUnknown;
      case Comparator::kGt:
        if (known_gt) return Truth::kTrue;
        if (known_le) return Truth::kFalse;
        return Truth::kUnknown;
      case Comparator::kGe:
        if (known_ge) return Truth::kTrue;
        if (known_lt) return Truth::kFalse;
        return Truth::kUnknown;
    }
    return Truth::kUnknown;
  }

  TermId b = s.FindConst(atom.rhs_term);
  // Derive the known relation between classes a and b.
  bool known_le = false, known_lt = false;
  bool known_ge = false, known_gt = false;
  bool known_eq = (a == b);
  bool known_ne = s.diseq_terms.contains(OrderedPair(a, b));
  if (known_eq) {
    known_le = known_ge = true;
  }
  auto edge_ab = s.edges.find(std::make_pair(a, b));
  if (edge_ab != s.edges.end()) {
    known_le = true;
    known_lt = known_lt || edge_ab->second;
  }
  auto edge_ba = s.edges.find(std::make_pair(b, a));
  if (edge_ba != s.edges.end()) {
    known_ge = true;
    known_gt = known_gt || edge_ba->second;
  }
  auto pin_b = s.pin.find(b);
  if (pin_a != s.pin.end() && pin_b != s.pin.end()) {
    std::optional<int> cmp = pin_a->second.Compare(pin_b->second);
    if (!cmp.has_value()) {
      known_ne = true;
    } else {
      known_eq = known_eq || *cmp == 0;
      known_lt = known_lt || *cmp < 0;
      known_gt = known_gt || *cmp > 0;
      known_le = known_le || *cmp <= 0;
      known_ge = known_ge || *cmp >= 0;
    }
  }
  // Disjoint bounds: up(a) vs lo(b) and lo(a) vs up(b).
  auto lo_b = s.lower.find(b);
  auto up_b = s.upper.find(b);
  const bool b_has_lo =
      lo_b != s.lower.end() && lo_b->second.value.has_value();
  const bool b_has_up =
      up_b != s.upper.end() && up_b->second.value.has_value();
  if (has_up && b_has_lo) {
    std::optional<int> cmp =
        up_a->second.value->Compare(*lo_b->second.value);
    if (cmp.has_value()) {
      if (*cmp < 0) {
        known_lt = known_le = true;
      } else if (*cmp == 0) {
        known_le = true;
        if (up_a->second.strict || lo_b->second.strict) known_lt = true;
      }
    }
  }
  if (has_lo && b_has_up) {
    std::optional<int> cmp =
        lo_a->second.value->Compare(*up_b->second.value);
    if (cmp.has_value()) {
      if (*cmp > 0) {
        known_gt = known_ge = true;
      } else if (*cmp == 0) {
        known_ge = true;
        if (lo_a->second.strict || up_b->second.strict) known_gt = true;
      }
    }
  }
  // Incomparable class domains (string vs numeric) are never equal.
  // (Detected indirectly through pins/bounds above; a full class-kind
  // check would need the type map, which pins usually cover.)
  known_ne = known_ne || known_lt || known_gt;
  if (known_ne && known_le) known_lt = true;
  if (known_ne && known_ge) known_gt = true;

  switch (atom.op) {
    case Comparator::kEq:
      if (known_eq) return Truth::kTrue;
      if (known_ne) return Truth::kFalse;
      return Truth::kUnknown;
    case Comparator::kNe:
      if (known_ne) return Truth::kTrue;
      if (known_eq) return Truth::kFalse;
      return Truth::kUnknown;
    case Comparator::kLt:
      if (known_lt) return Truth::kTrue;
      if (known_ge) return Truth::kFalse;
      return Truth::kUnknown;
    case Comparator::kLe:
      if (known_le) return Truth::kTrue;
      if (known_gt) return Truth::kFalse;
      return Truth::kUnknown;
    case Comparator::kGt:
      if (known_gt) return Truth::kTrue;
      if (known_le) return Truth::kFalse;
      return Truth::kUnknown;
    case Comparator::kGe:
      if (known_ge) return Truth::kTrue;
      if (known_lt) return Truth::kFalse;
      return Truth::kUnknown;
  }
  return Truth::kUnknown;
}

Truth ConstraintSet::ImpliesAll(const ConstraintSet& other) const {
  bool all_true = true;
  for (const ConstraintAtom& atom : other.atoms_) {
    Truth t = Implies(atom);
    if (t == Truth::kFalse) return Truth::kFalse;
    if (t != Truth::kTrue) all_true = false;
  }
  return all_true ? Truth::kTrue : Truth::kUnknown;
}

bool ConstraintSet::ContradictsWith(const ConstraintSet& other) const {
  ConstraintSet merged = *this;
  merged.AddAll(other);
  return !merged.IsSatisfiable();
}

bool ConstraintSet::IsUnconstrained(TermId term) const {
  const Solved& s = Normalized();
  if (s.unsat) return false;
  TermId root = s.FindConst(term);
  // Another term in the same class constrains it.
  for (const auto& [t, p] : s.parent) {
    if (t != term && s.FindConst(t) == root) return false;
  }
  auto lo = s.lower.find(root);
  if (lo != s.lower.end() && lo->second.value.has_value()) return false;
  auto up = s.upper.find(root);
  if (up != s.upper.end() && up->second.value.has_value()) return false;
  if (s.pin.contains(root)) return false;
  for (const auto& [key, strict] : s.edges) {
    (void)strict;
    if (key.first == root || key.second == root) return false;
  }
  for (const auto& pair : s.diseq_terms) {
    if (pair.first == root || pair.second == root) return false;
  }
  for (const auto& [t, c] : s.diseq_consts) {
    (void)c;
    if (t == root) return false;
  }
  return true;
}

bool ConstraintSet::InteractsWithOtherTerms(TermId term) const {
  const Solved& s = Normalized();
  if (s.unsat) return true;
  TermId root = s.FindConst(term);
  for (const auto& [t, p] : s.parent) {
    (void)p;
    if (t != term && s.FindConst(t) == root) return true;
  }
  for (const auto& [key, strict] : s.edges) {
    (void)strict;
    if (key.first == root || key.second == root) return true;
  }
  for (const auto& pair : s.diseq_terms) {
    if (pair.first == root || pair.second == root) return true;
  }
  return false;
}

bool ConstraintSet::AreEqual(TermId a, TermId b) const {
  const Solved& s = Normalized();
  if (s.unsat) return false;
  return s.FindConst(a) == s.FindConst(b);
}

std::optional<Value> ConstraintSet::PinnedConstant(TermId term) const {
  const Solved& s = Normalized();
  if (s.unsat) return std::nullopt;
  auto it = s.pin.find(s.FindConst(term));
  if (it == s.pin.end()) return std::nullopt;
  return it->second;
}

std::vector<ConstraintAtom> ConstraintSet::ExportAtoms(
    const std::vector<TermId>& terms) const {
  const Solved& s = Normalized();
  std::vector<ConstraintAtom> out;
  if (s.unsat) {
    // Export an explicit contradiction so the caller sees an unsatisfiable
    // set rather than an empty (trivially true) one.
    TermId t = terms.empty() ? 0 : terms[0];
    out.push_back(ConstraintAtom::TermConst(t, Comparator::kLt,
                                            Value::Int64(0)));
    out.push_back(ConstraintAtom::TermConst(t, Comparator::kGt,
                                            Value::Int64(0)));
    return out;
  }

  const bool filtered = !terms.empty();
  auto in_filter = [&](TermId t) {
    return !filtered || std::find(terms.begin(), terms.end(), t) != terms.end();
  };

  // Class -> ordered members that pass the filter.
  std::map<TermId, std::vector<TermId>> members;
  for (const auto& [t, p] : s.parent) {
    (void)p;
    if (in_filter(t)) members[s.FindConst(t)].push_back(t);
  }
  for (auto& [root, list] : members) {
    (void)root;
    std::sort(list.begin(), list.end());
  }
  auto rep = [&](TermId root) -> std::optional<TermId> {
    auto it = members.find(root);
    if (it == members.end() || it->second.empty()) return std::nullopt;
    return it->second.front();
  };

  // Intra-class equalities.
  for (const auto& [root, list] : members) {
    (void)root;
    for (size_t i = 1; i < list.size(); ++i) {
      out.push_back(
          ConstraintAtom::TermTerm(list[0], Comparator::kEq, list[i]));
    }
  }
  // Pins and bounds.
  for (const auto& [root, list] : members) {
    if (list.empty()) continue;
    TermId r = list.front();
    auto pin = s.pin.find(root);
    if (pin != s.pin.end()) {
      out.push_back(ConstraintAtom::TermConst(r, Comparator::kEq,
                                              pin->second));
      continue;
    }
    auto lo = s.lower.find(root);
    if (lo != s.lower.end() && lo->second.value.has_value()) {
      out.push_back(ConstraintAtom::TermConst(
          r, lo->second.strict ? Comparator::kGt : Comparator::kGe,
          *lo->second.value));
    }
    auto up = s.upper.find(root);
    if (up != s.upper.end() && up->second.value.has_value()) {
      out.push_back(ConstraintAtom::TermConst(
          r, up->second.strict ? Comparator::kLt : Comparator::kLe,
          *up->second.value));
    }
  }
  // Order edges (skip those already implied by exported bounds on pinned
  // pairs; harmless redundancy is acceptable for display).
  for (const auto& [key, strict] : s.edges) {
    auto ra = rep(key.first);
    auto rb = rep(key.second);
    if (!ra.has_value() || !rb.has_value()) continue;
    if (s.pin.contains(key.first) && s.pin.contains(key.second)) continue;
    out.push_back(ConstraintAtom::TermTerm(
        *ra, strict ? Comparator::kLt : Comparator::kLe, *rb));
  }
  // Disequalities.
  for (const auto& pair : s.diseq_terms) {
    auto ra = rep(pair.first);
    auto rb = rep(pair.second);
    if (!ra.has_value() || !rb.has_value()) continue;
    out.push_back(ConstraintAtom::TermTerm(*ra, Comparator::kNe, *rb));
  }
  for (const auto& [root, c] : s.diseq_consts) {
    auto ra = rep(root);
    if (!ra.has_value()) continue;
    if (s.pin.contains(root)) continue;  // pin already separates them
    // A bound already strictly excluding c makes the atom redundant.
    out.push_back(ConstraintAtom::TermConst(*ra, Comparator::kNe, c));
  }
  return out;
}

std::vector<TermId> ConstraintSet::MentionedTerms() const {
  std::set<TermId> seen;
  for (const ConstraintAtom& atom : atoms_) {
    seen.insert(atom.lhs);
    if (atom.rhs_is_term) seen.insert(atom.rhs_term);
  }
  return std::vector<TermId>(seen.begin(), seen.end());
}

void ConstraintSet::ForgetTerm(TermId term) {
  // Re-materialize the closure over the remaining terms first, so that
  // consequences routed through `term` (x = term, term = y  =>  x = y)
  // survive its removal.
  std::vector<TermId> keep;
  for (TermId t : MentionedTerms()) {
    if (t != term) keep.push_back(t);
  }
  std::vector<ConstraintAtom> exported;
  if (!IsSatisfiable()) {
    // Preserve unsatisfiability (on an arbitrary term id).
    TermId t = keep.empty() ? term : keep[0];
    exported.push_back(
        ConstraintAtom::TermConst(t, Comparator::kLt, Value::Int64(0)));
    exported.push_back(
        ConstraintAtom::TermConst(t, Comparator::kGt, Value::Int64(0)));
  } else if (!keep.empty()) {
    // Note: an empty keep-list means ExportAtoms would export everything
    // (no filter), so it must be special-cased to "no atoms".
    exported = ExportAtoms(keep);
  }
  atoms_ = std::move(exported);
  term_types_.erase(term);
  solved_.reset();
}

bool ConstraintSet::Satisfied(
    const std::map<TermId, Value>& assignment) const {
  for (const ConstraintAtom& atom : atoms_) {
    auto lhs_it = assignment.find(atom.lhs);
    if (lhs_it == assignment.end()) return false;
    Value rhs;
    if (atom.rhs_is_term) {
      auto rhs_it = assignment.find(atom.rhs_term);
      if (rhs_it == assignment.end()) return false;
      rhs = rhs_it->second;
    } else {
      rhs = atom.rhs_const;
    }
    if (!lhs_it->second.Satisfies(atom.op, rhs)) return false;
  }
  return true;
}

std::string ConstraintSet::ToString() const {
  auto namer = [](TermId t) { return "t" + std::to_string(t); };
  std::vector<std::string> parts;
  for (const ConstraintAtom& atom : atoms_) {
    parts.push_back(atom.ToString(namer));
  }
  return Join(parts, " and ");
}

}  // namespace viewauth
