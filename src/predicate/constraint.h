// ConstraintSet: a conjunction of atomic order constraints over abstract
// terms, with decision procedures for satisfiability, implication, and
// contradiction.
//
// This is the reasoning engine behind the paper's Section 4.2 selection
// refinement: given the predicate mu expressed by a meta-tuple and the
// predicate lambda of a query selection, the meta-selection operator must
// decide which of four cases applies (lambda implies mu / mu implies
// lambda / contradiction / overlap). It also backs the COMPARISON
// auxiliary relation: comparative subformulas of views are constraints on
// view variables.
//
// Terms are integers (viewauth uses globally unique view-variable ids).
// Atoms are `term cmp constant` or `term cmp term` with cmp one of
// =, !=, <, <=, >, >=. The decision procedure maintains:
//   * a union-find over terms (equality classes),
//   * per-class constant bounds (with strictness) and constant pins,
//   * an order graph between classes (<= / < edges, transitively closed),
//   * disequalities (class-class and class-constant),
// and tightens integer bounds (x > 2 becomes x >= 3 for int-typed terms).
//
// Soundness: every kTrue/contradiction answer is correct. Completeness:
// complete for conjunctions over dense domains; for integer domains a few
// pigeonhole-style consequences of != are not derived (the paper
// explicitly allows an implementation to leave hard cases undecided, at
// the cost of selecting fewer meta-tuples).

#ifndef VIEWAUTH_PREDICATE_CONSTRAINT_H_
#define VIEWAUTH_PREDICATE_CONSTRAINT_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace viewauth {

using TermId = int;

// One atomic constraint: `lhs op rhs` where rhs is a term or a constant.
struct ConstraintAtom {
  static ConstraintAtom TermConst(TermId lhs, Comparator op, Value rhs) {
    ConstraintAtom atom;
    atom.lhs = lhs;
    atom.op = op;
    atom.rhs_is_term = false;
    atom.rhs_const = std::move(rhs);
    return atom;
  }
  static ConstraintAtom TermTerm(TermId lhs, Comparator op, TermId rhs) {
    ConstraintAtom atom;
    atom.lhs = lhs;
    atom.op = op;
    atom.rhs_is_term = true;
    atom.rhs_term = rhs;
    return atom;
  }

  TermId lhs = 0;
  Comparator op = Comparator::kEq;
  bool rhs_is_term = false;
  TermId rhs_term = 0;
  Value rhs_const;

  bool operator==(const ConstraintAtom& other) const;
  // Human-readable, with `namer` rendering term ids (e.g. "x3 >= 250000").
  std::string ToString(
      const std::function<std::string(TermId)>& namer) const;
};

// Three-valued answers from the decision procedures.
enum class Truth { kFalse = 0, kTrue = 1, kUnknown = 2 };

class ConstraintSet {
 public:
  ConstraintSet() = default;

  // Declares a term's domain type; affects integer bound tightening and
  // type-mismatch contradiction detection. Terms default to an unknown
  // domain (no tightening).
  void DeclareTermType(TermId term, ValueType type);

  // Conjoins one atom. Never fails; an inconsistent conjunction simply
  // renders the set unsatisfiable.
  void Add(const ConstraintAtom& atom);
  void AddTermConst(TermId lhs, Comparator op, Value rhs) {
    Add(ConstraintAtom::TermConst(lhs, op, std::move(rhs)));
  }
  void AddTermTerm(TermId lhs, Comparator op, TermId rhs) {
    Add(ConstraintAtom::TermTerm(lhs, op, rhs));
  }

  // Conjoins every atom of `other` (term ids shared).
  void AddAll(const ConstraintSet& other);

  bool IsSatisfiable() const;

  // A deeper, analyzer-grade satisfiability check. IsSatisfiable() is
  // sound but incomplete on integer domains: pigeonhole consequences of
  // pairwise disequalities (three integer terms confined to a two-value
  // range, say) escape the bound-propagation procedure. This variant
  // additionally enumerates total assignments when every mentioned term
  // lies in an integer class with finite derived bounds, proving such
  // sets unsatisfiable. `limit` caps the number of candidate
  // assignments; beyond it (or with unbounded/non-integer terms) the
  // answer is kUnknown. kFalse: proven unsatisfiable. kTrue: a model
  // exists. Too slow for the per-query masking path; used by the static
  // catalog analyzer (src/analysis), where thoroughness beats latency.
  Truth DeepCheckSatisfiable(long long limit = 100000) const;

  // Does this set entail `atom`? kTrue: every model satisfies it.
  // kFalse: no model satisfies it (the atom contradicts the set).
  // kUnknown: neither is provable.
  Truth Implies(const ConstraintAtom& atom) const;

  // Does this set entail every atom of `other`? (kFalse when some atom is
  // contradicted, kUnknown otherwise.)
  Truth ImpliesAll(const ConstraintSet& other) const;

  // Is `this AND other` unsatisfiable? Sound; complete for dense domains.
  bool ContradictsWith(const ConstraintSet& other) const;

  // True if the set places no restriction at all on `term` (no bounds, no
  // pins, no order edges, no disequalities involving it).
  bool IsUnconstrained(TermId term) const;

  // True if `term` is related to some *other* term (same equality class,
  // an order edge, or a disequality). When false, every constraint on
  // `term` is against constants only, so the term's predicate can be
  // reasoned about in isolation (the clearing case of the selection
  // refinement requires this).
  bool InteractsWithOtherTerms(TermId term) const;

  // True if `a` and `b` are in the same equality class.
  bool AreEqual(TermId a, TermId b) const;
  // The constant `term` is pinned to, if any.
  std::optional<Value> PinnedConstant(TermId term) const;

  // A canonical list of atoms equivalent to this set (pins, bounds, order
  // edges, disequalities), mentioning only the given terms when `terms`
  // is nonempty. Used to print masks as permit statements.
  std::vector<ConstraintAtom> ExportAtoms(
      const std::vector<TermId>& terms = {}) const;

  // Every term mentioned by any constraint.
  std::vector<TermId> MentionedTerms() const;

  // Removes all constraints that mention `term` (used when a cleared
  // view variable disappears from a meta-tuple).
  void ForgetTerm(TermId term);

  // Evaluates whether a concrete assignment satisfies the set. Terms not
  // present in `assignment` make the answer false (total assignments
  // expected). Used by property tests and by mask application.
  bool Satisfied(const std::map<TermId, Value>& assignment) const;

  // Number of stored source atoms (diagnostics).
  int atom_count() const { return static_cast<int>(atoms_.size()); }

  // The stored source atoms, as conjoined. Satisfied() evaluates exactly
  // this list, which is what lets the compiled-mask path
  // (authz/compiled_mask.h) precompile the per-row check.
  const std::vector<ConstraintAtom>& source_atoms() const { return atoms_; }

  std::string ToString() const;

 private:
  struct Bound {
    std::optional<Value> value;
    bool strict = false;

    bool operator==(const Bound& other) const {
      return value == other.value && strict == other.strict;
    }
  };
  // Solver state, rebuilt from `atoms_` by Normalize().
  struct Solved {
    bool unsat = false;
    // Union-find over term ids.
    std::map<TermId, TermId> parent;
    // Per-root state.
    std::map<TermId, Bound> lower;
    std::map<TermId, Bound> upper;
    std::map<TermId, Value> pin;
    // Order edges root->root; value true means strict (<).
    std::map<std::pair<TermId, TermId>, bool> edges;
    std::set<std::pair<TermId, TermId>> diseq_terms;   // unordered pairs
    std::set<std::pair<TermId, Value>> diseq_consts;

    TermId Find(TermId t);
    TermId FindConst(TermId t) const;  // no path compression
  };

  const Solved& Normalized() const;

  std::vector<ConstraintAtom> atoms_;
  std::map<TermId, ValueType> term_types_;
  mutable std::optional<Solved> solved_;  // cache, invalidated by Add
};

std::string_view TruthToString(Truth truth);

}  // namespace viewauth

#endif  // VIEWAUTH_PREDICATE_CONSTRAINT_H_
