#include "predicate/predicate.h"

#include <sstream>

#include "common/str_util.h"

namespace viewauth {

bool SelectionAtom::Matches(const Tuple& tuple) const {
  const Value& lhs = tuple.at(lhs_column);
  if (rhs_is_column) {
    return lhs.Satisfies(op, tuple.at(rhs_column));
  }
  return lhs.Satisfies(op, rhs_const);
}

std::string SelectionAtom::ToString(
    const std::vector<std::string>& column_names) const {
  auto name = [&column_names](int col) {
    if (col >= 0 && col < static_cast<int>(column_names.size())) {
      return column_names[col];
    }
    return "#" + std::to_string(col);
  };
  std::ostringstream out;
  out << name(lhs_column) << " " << ComparatorToString(op) << " ";
  if (rhs_is_column) {
    out << name(rhs_column);
  } else {
    out << rhs_const.ToDisplayString(/*commas=*/false);
  }
  return out.str();
}

bool ConjunctivePredicate::Matches(const Tuple& tuple) const {
  for (const SelectionAtom& atom : atoms_) {
    if (!atom.Matches(tuple)) return false;
  }
  return true;
}

std::string ConjunctivePredicate::ToString(
    const std::vector<std::string>& column_names) const {
  if (atoms_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const SelectionAtom& atom : atoms_) {
    parts.push_back(atom.ToString(column_names));
  }
  return Join(parts, " and ");
}

}  // namespace viewauth
