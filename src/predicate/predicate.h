// Conjunctive selection predicates evaluated over concrete tuples.
//
// This is the lambda of sigma_lambda in the paper's algebra: a conjunction
// of primitive comparisons `A_i theta c` / `A_i theta A_j` where the A's
// are column positions of the operand relation.

#ifndef VIEWAUTH_PREDICATE_PREDICATE_H_
#define VIEWAUTH_PREDICATE_PREDICATE_H_

#include <string>
#include <vector>

#include "storage/tuple.h"
#include "types/value.h"

namespace viewauth {

// One primitive comparison against a column or a constant.
struct SelectionAtom {
  static SelectionAtom ColumnConst(int column, Comparator op, Value value) {
    SelectionAtom atom;
    atom.lhs_column = column;
    atom.op = op;
    atom.rhs_is_column = false;
    atom.rhs_const = std::move(value);
    return atom;
  }
  static SelectionAtom ColumnColumn(int lhs, Comparator op, int rhs) {
    SelectionAtom atom;
    atom.lhs_column = lhs;
    atom.op = op;
    atom.rhs_is_column = true;
    atom.rhs_column = rhs;
    return atom;
  }

  bool Matches(const Tuple& tuple) const;

  // Equality atom between two columns (used by the hash-join optimizer).
  bool IsColumnEquality() const {
    return rhs_is_column && op == Comparator::kEq;
  }

  std::string ToString(const std::vector<std::string>& column_names) const;

  int lhs_column = 0;
  Comparator op = Comparator::kEq;
  bool rhs_is_column = false;
  int rhs_column = 0;
  Value rhs_const;
};

// A conjunction of SelectionAtoms; the empty conjunction is `true`.
class ConjunctivePredicate {
 public:
  ConjunctivePredicate() = default;
  explicit ConjunctivePredicate(std::vector<SelectionAtom> atoms)
      : atoms_(std::move(atoms)) {}

  void Add(SelectionAtom atom) { atoms_.push_back(std::move(atom)); }
  const std::vector<SelectionAtom>& atoms() const { return atoms_; }
  bool IsTrivial() const { return atoms_.empty(); }

  bool Matches(const Tuple& tuple) const;

  std::string ToString(const std::vector<std::string>& column_names) const;

 private:
  std::vector<SelectionAtom> atoms_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_PREDICATE_PREDICATE_H_
