#include "storage/column_batch.h"

namespace viewauth {

namespace {

// Dispatches a scalar comparison over the six comparators with the
// branch hoisted out of the row loop. `Body` receives a predicate
// functor and runs the compaction loop with it inlined.
template <typename Body>
void WithComparator(Comparator op, Body body) {
  switch (op) {
    case Comparator::kEq:
      body([](const auto& a, const auto& b) { return a == b; });
      return;
    case Comparator::kNe:
      body([](const auto& a, const auto& b) { return a != b; });
      return;
    case Comparator::kLt:
      body([](const auto& a, const auto& b) { return a < b; });
      return;
    case Comparator::kLe:
      body([](const auto& a, const auto& b) { return a <= b; });
      return;
    case Comparator::kGt:
      body([](const auto& a, const auto& b) { return a > b; });
      return;
    case Comparator::kGe:
      body([](const auto& a, const auto& b) { return a >= b; });
      return;
  }
}

// Branch-light compaction: sel[out] = sel[i]; out += keep.
template <typename Keep>
void Compact(std::vector<uint32_t>* sel, Keep keep) {
  uint32_t* data = sel->data();
  size_t out = 0;
  const size_t n = sel->size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = data[i];
    data[out] = idx;
    out += static_cast<size_t>(keep(idx));
  }
  sel->resize(out);
}

}  // namespace

void ColumnVector::Classify() {
  const size_t n = boxed_.size();
  bool all_i64 = true;
  bool all_f64 = true;
  bool all_str = true;
  for (size_t i = 0; i < n && (all_i64 || all_f64 || all_str); ++i) {
    const Value& v = *boxed_[i];
    all_i64 = all_i64 && v.is_int64();
    all_f64 = all_f64 && v.is_double();
    all_str = all_str && v.is_string();
  }
  if (n == 0) {
    cls_ = ColumnClass::kMixed;
    return;
  }
  if (all_i64) {
    cls_ = ColumnClass::kInt64;
    i64_.resize(n);
    for (size_t i = 0; i < n; ++i) i64_[i] = boxed_[i]->int64_value();
  } else if (all_f64) {
    cls_ = ColumnClass::kDouble;
    f64_.resize(n);
    for (size_t i = 0; i < n; ++i) f64_[i] = boxed_[i]->double_value();
  } else if (all_str) {
    cls_ = ColumnClass::kString;
    str_.resize(n);
    for (size_t i = 0; i < n; ++i) str_[i] = &boxed_[i]->string_value();
  } else {
    cls_ = ColumnClass::kMixed;
  }
}

void ColumnVector::GatherDense(const std::vector<Tuple>& rows, size_t begin,
                               size_t count, int col) {
  boxed_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    boxed_[i] = &rows[begin + i].values()[col];
  }
  Classify();
}

void ColumnVector::GatherIds(const std::vector<Tuple>& rows,
                             const uint32_t* ids, size_t count, int col) {
  boxed_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    boxed_[i] = &rows[ids[i]].values()[col];
  }
  Classify();
}

void ColumnBatch::ResetDense(const std::vector<Tuple>& rows, size_t begin,
                             size_t count, int arity) {
  rows_ = &rows;
  begin_ = begin;
  ids_ = nullptr;
  count_ = count;
  columns_.resize(arity);
  gathered_.assign(arity, 0);
}

void ColumnBatch::ResetIds(const std::vector<Tuple>& rows, const uint32_t* ids,
                           size_t count, int arity) {
  rows_ = &rows;
  begin_ = 0;
  ids_ = ids;
  count_ = count;
  columns_.resize(arity);
  gathered_.assign(arity, 0);
}

const ColumnVector& ColumnBatch::column(int col) {
  if (gathered_[col] == 0) {
    if (ids_ != nullptr) {
      columns_[col].GatherIds(*rows_, ids_, count_, col);
    } else {
      columns_[col].GatherDense(*rows_, begin_, count_, col);
    }
    gathered_[col] = 1;
  }
  return columns_[col];
}

Tuple ColumnBatch::ProjectRow(size_t i, const std::vector<int>& cols) const {
  std::vector<Value> values;
  values.reserve(cols.size());
  const Tuple& r = row(i);
  for (int c : cols) values.push_back(r.values()[c]);
  return Tuple(std::move(values));
}

void ResetSelection(std::vector<uint32_t>* sel, size_t n) {
  sel->resize(n);
  uint32_t* data = sel->data();
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(i);
}

void FilterColumnConst(const ColumnVector& col, Comparator op,
                       const Value& rhs, std::vector<uint32_t>* sel) {
  // Fast paths only where Satisfies reduces to the plain scalar
  // comparison: exact same concrete type on both sides.
  if (col.cls() == ColumnClass::kInt64 && rhs.is_int64()) {
    const int64_t* a = col.i64();
    const int64_t b = rhs.int64_value();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(a[i], b); });
    });
    return;
  }
  if (col.cls() == ColumnClass::kDouble && rhs.is_double()) {
    const double* a = col.f64();
    const double b = rhs.double_value();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(a[i], b); });
    });
    return;
  }
  if (col.cls() == ColumnClass::kString && rhs.is_string()) {
    const std::string* const* a = col.str();
    const std::string& b = rhs.string_value();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(*a[i], b); });
    });
    return;
  }
  // NULL constant never satisfies any comparator.
  if (rhs.is_null()) {
    sel->clear();
    return;
  }
  Compact(sel, [&](uint32_t i) { return col.value(i).Satisfies(op, rhs); });
}

void FilterColumnColumn(const ColumnVector& lhs, Comparator op,
                        const ColumnVector& rhs, std::vector<uint32_t>* sel) {
  if (lhs.cls() == ColumnClass::kInt64 && rhs.cls() == ColumnClass::kInt64) {
    const int64_t* a = lhs.i64();
    const int64_t* b = rhs.i64();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(a[i], b[i]); });
    });
    return;
  }
  if (lhs.cls() == ColumnClass::kDouble && rhs.cls() == ColumnClass::kDouble) {
    const double* a = lhs.f64();
    const double* b = rhs.f64();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(a[i], b[i]); });
    });
    return;
  }
  if (lhs.cls() == ColumnClass::kString && rhs.cls() == ColumnClass::kString) {
    const std::string* const* a = lhs.str();
    const std::string* const* b = rhs.str();
    WithComparator(op, [&](auto pred) {
      Compact(sel, [&](uint32_t i) { return pred(*a[i], *b[i]); });
    });
    return;
  }
  Compact(sel, [&](uint32_t i) {
    return lhs.value(i).Satisfies(op, rhs.value(i));
  });
}

void FilterNotNull(const ColumnVector& col, std::vector<uint32_t>* sel) {
  // Uniform typed windows are null-free by construction.
  if (col.cls() != ColumnClass::kMixed) return;
  Compact(sel, [&](uint32_t i) { return !col.value(i).is_null(); });
}

}  // namespace viewauth
