#include "storage/relation.h"

#include <algorithm>

namespace viewauth {

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      rows_(other.rows_),
      index_(other.index_),
      version_(other.version_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  rows_ = other.rows_;
  index_ = other.index_;
  version_ = other.version_;
  indexed_version_ = -1;
  column_indexes_.clear();
  ordered_indexes_.clear();
  column_cache_.clear();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      index_(std::move(other.index_)),
      version_(other.version_) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  rows_ = std::move(other.rows_);
  index_ = std::move(other.index_);
  version_ = other.version_;
  indexed_version_ = -1;
  column_indexes_.clear();
  ordered_indexes_.clear();
  column_cache_.clear();
  return *this;
}

Status Relation::ValidateTuple(const Tuple& tuple) const {
  if (tuple.arity() != schema_.arity()) {
    return Status::SchemaMismatch(
        "tuple arity " + std::to_string(tuple.arity()) +
        " does not match relation '" + schema_.name() + "' arity " +
        std::to_string(schema_.arity()));
  }
  for (int i = 0; i < tuple.arity(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;
    const ValueType expected = schema_.attribute(i).type;
    if (v.type() == expected) continue;
    // int64 is acceptable where a double is expected.
    if (expected == ValueType::kDouble && v.is_int64()) continue;
    return Status::SchemaMismatch(
        "attribute '" + schema_.attribute(i).name + "' of relation '" +
        schema_.name() + "' expects " +
        std::string(ValueTypeToString(expected)) + ", got " +
        std::string(ValueTypeToString(v.type())));
  }
  return Status::OK();
}

Status Relation::Insert(Tuple tuple) {
  VIEWAUTH_RETURN_NOT_OK(ValidateTuple(tuple));
  if (schema_.has_key()) {
    // Reject a second tuple with the same key but different payload.
    Tuple key_values = tuple.Project(schema_.key());
    for (const Tuple& row : rows_) {
      if (row.Project(schema_.key()) == key_values && row != tuple) {
        return Status::SchemaMismatch("primary-key violation in relation '" +
                                      schema_.name() + "' for key " +
                                      key_values.ToString());
      }
    }
  }
  InsertUnchecked(std::move(tuple));
  return Status::OK();
}

bool Relation::InsertUnchecked(Tuple tuple) {
  auto [it, inserted] = index_.insert(tuple);
  if (inserted) {
    rows_.push_back(std::move(tuple));
    ++version_;
  }
  return inserted;
}

bool Relation::Erase(const Tuple& tuple) {
  auto it = index_.find(tuple);
  if (it == index_.end()) return false;
  index_.erase(it);
  rows_.erase(std::find(rows_.begin(), rows_.end(), tuple));
  ++version_;
  return true;
}

void Relation::Clear() {
  rows_.clear();
  index_.clear();
  ++version_;
}

const Relation::ColumnIndex& Relation::IndexOn(int column) const {
  // Serialize lazy builds: concurrent read-only sessions may race to
  // index the same relation. Map nodes are stable, so the returned
  // reference stays valid after unlock as long as no mutation intervenes
  // (mutations are externally excluded from readers).
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexed_version_ != version_) {
    column_indexes_.clear();
    ordered_indexes_.clear();
    column_cache_.clear();
    indexed_version_ = version_;
  }
  auto it = column_indexes_.find(column);
  if (it == column_indexes_.end()) {
    ColumnIndex built;
    built.reserve(rows_.size());
    for (int row = 0; row < static_cast<int>(rows_.size()); ++row) {
      built.emplace(rows_[static_cast<size_t>(row)].at(column), row);
    }
    it = column_indexes_.emplace(column, std::move(built)).first;
  }
  return it->second;
}

const Relation::OrderedIndex& Relation::OrderedIndexOn(int column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexed_version_ != version_) {
    column_indexes_.clear();
    ordered_indexes_.clear();
    column_cache_.clear();
    indexed_version_ = version_;
  }
  auto it = ordered_indexes_.find(column);
  if (it == ordered_indexes_.end()) {
    OrderedIndex built;
    built.reserve(rows_.size());
    for (int row = 0; row < static_cast<int>(rows_.size()); ++row) {
      built.emplace_back(rows_[static_cast<size_t>(row)].at(column), row);
    }
    std::sort(built.begin(), built.end(),
              [](const std::pair<Value, int>& a,
                 const std::pair<Value, int>& b) {
                if (a.first < b.first) return true;
                if (b.first < a.first) return false;
                return a.second < b.second;
              });
    it = ordered_indexes_.emplace(column, std::move(built)).first;
  }
  return it->second;
}

const ColumnVector& Relation::ColumnOn(int column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexed_version_ != version_) {
    column_indexes_.clear();
    ordered_indexes_.clear();
    column_cache_.clear();
    indexed_version_ = version_;
  }
  auto it = column_cache_.find(column);
  if (it == column_cache_.end()) {
    ColumnVector built;
    built.GatherDense(rows_, 0, rows_.size(), column);
    it = column_cache_.emplace(column, std::move(built)).first;
  }
  return it->second;
}

bool Relation::Contains(const Tuple& tuple) const {
  return index_.contains(tuple);
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool Relation::SameTuples(const Relation& other) const {
  if (size() != other.size()) return false;
  for (const Tuple& row : rows_) {
    if (!other.Contains(row)) return false;
  }
  return true;
}

DatabaseSchema& DatabaseInstance::MutableSchema() {
  if (schema_.use_count() > 1) {
    schema_ = std::make_shared<DatabaseSchema>(*schema_);
  }
  return *schema_;
}

Status DatabaseInstance::CreateRelation(RelationSchema schema) {
  VIEWAUTH_RETURN_NOT_OK(MutableSchema().AddRelation(schema));
  // Copy the name out first: argument evaluation order is unspecified, so
  // passing schema.name() and std::move(schema) in one call would race.
  std::string name = schema.name();
  relations_.emplace(std::move(name),
                     std::make_shared<Relation>(std::move(schema)));
  ++ddl_version_;
  return Status::OK();
}

Status DatabaseInstance::DropRelation(std::string_view name) {
  VIEWAUTH_RETURN_NOT_OK(MutableSchema().DropRelation(name));
  relations_.erase(relations_.find(name));
  ++ddl_version_;
  return Status::OK();
}

Result<Relation*> DatabaseInstance::GetRelation(std::string_view name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) +
                            "' does not exist");
  }
  // Copy-on-write: a use count above one means a snapshot still reads
  // this relation object; give the writer its own clone. (Refcounts only
  // move under the engine's exclusive mutation lock or when a reader
  // releases its snapshot — a concurrent release can at worst leave the
  // count momentarily high, causing a spurious clone, never a shared
  // mutation.)
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<Relation>(*it->second);
  }
  return it->second.get();
}

Result<const Relation*> DatabaseInstance::GetRelation(
    std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) +
                            "' does not exist");
  }
  return it->second.get();
}

Status DatabaseInstance::Insert(std::string_view relation_name, Tuple tuple) {
  VIEWAUTH_ASSIGN_OR_RETURN(Relation * rel, GetRelation(relation_name));
  return rel->Insert(std::move(tuple));
}

}  // namespace viewauth
