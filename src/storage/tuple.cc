#include "storage/tuple.h"

#include <sstream>

#include "common/str_util.h"

namespace viewauth {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values;
  values.reserve(left.values_.size() + right.values_.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<int>& columns) const {
  std::vector<Value> values;
  values.reserve(columns.size());
  for (int c : columns) values.push_back(values_.at(c));
  return Tuple(std::move(values));
}

bool Tuple::operator<(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

size_t Tuple::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace viewauth
