// KeyView: a non-owning view of join-key Values referenced in place.
//
// The hash-join build/probe loops used to allocate a projected key Tuple
// per row (`row.Project(key_cols)`), which dominated the data-side hot
// path. A KeyView instead collects `const Value*` references to the key
// cells of a (possibly scattered) row and hashes them in place with the
// exact combine scheme of Tuple::Hash, so a view over (v1..vk) hashes
// identically to Tuple({v1..vk}) — hash tables built from either agree.
//
// Equality is strict Value equality (Value::operator==: same type, same
// contents, NULL == NULL), matching Tuple::operator== — the semantics the
// hash-join optimizer has always used for join keys.

#ifndef VIEWAUTH_STORAGE_KEY_VIEW_H_
#define VIEWAUTH_STORAGE_KEY_VIEW_H_

#include <vector>

#include "types/value.h"

namespace viewauth {

class KeyView {
 public:
  KeyView() = default;

  // Reusable: Clear keeps the capacity, so a view refilled once per row
  // allocates only on its first use.
  void Clear() { refs_.clear(); }
  void Add(const Value& value) { refs_.push_back(&value); }
  void Reserve(size_t n) { refs_.reserve(n); }

  size_t size() const { return refs_.size(); }
  const Value& at(size_t i) const { return *refs_[i]; }

  // Same combine as Tuple::Hash over the referenced values.
  size_t Hash() const;

  // Strict component-wise Value equality (coherent with Hash: equal views
  // always hash equal).
  bool operator==(const KeyView& other) const;
  bool operator!=(const KeyView& other) const { return !(*this == other); }

 private:
  std::vector<const Value*> refs_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_STORAGE_KEY_VIEW_H_
