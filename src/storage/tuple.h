// Tuples: fixed-arity rows of Values with value-based equality and
// hashing, so relations can enforce set semantics.

#ifndef VIEWAUTH_STORAGE_TUPLE_H_
#define VIEWAUTH_STORAGE_TUPLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "types/value.h"

namespace viewauth {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  const Value& at(int i) const { return values_.at(i); }
  Value& at(int i) { return values_.at(i); }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value value) { values_.push_back(std::move(value)); }

  // Concatenation of two tuples (used by the product operator).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  // Projection onto the given column indices, in the given order.
  Tuple Project(const std::vector<int>& columns) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  // Lexicographic order (for deterministic printing).
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  // e.g. "(Jones, manager, 26000)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

}  // namespace viewauth

#endif  // VIEWAUTH_STORAGE_TUPLE_H_
