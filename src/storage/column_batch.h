// Columnar batches for the vectorized data plan (DESIGN.md §17).
//
// A ColumnBatch is a window of up to kColumnBatchRows rows over a
// Relation's tuple store — either a dense range [begin, begin+n) or an
// explicit row-id list — with lazy per-column gathering into
// ColumnVectors. A ColumnVector classifies the gathered window: when
// every cell is non-null and of one concrete type it exposes a flat
// typed array (int64_t / double / const std::string*) that the
// predicate kernels below iterate with branch-light, SIMD-friendly
// loops; otherwise it degrades to kMixed and the kernels fall back to
// per-row Value::Satisfies through boxed pointers (never copies).
//
// The kernels filter a selection vector — a vector of row ordinals
// into the batch — in place, compacting it to the ordinals whose rows
// pass. They are bit-identical to evaluating Value::Satisfies on every
// row: fast paths exist only for exact same-type comparisons, where
// Satisfies reduces to the plain scalar comparison; every other pair
// (cross-numeric, NULLs, string-vs-numeric) routes through Satisfies
// itself.

#ifndef VIEWAUTH_STORAGE_COLUMN_BATCH_H_
#define VIEWAUTH_STORAGE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"
#include "types/value.h"

namespace viewauth {

// Rows per batch. 1024 keeps the working set (a handful of gathered
// columns plus the selection vector) inside L1/L2 while amortizing
// per-batch overhead (governor ticks, kernel dispatch) to noise.
inline constexpr uint32_t kColumnBatchRows = 1024;

// Classification of a gathered column window.
enum class ColumnClass {
  kInt64,   // every cell non-null int64; i64() is valid
  kDouble,  // every cell non-null double; f64() is valid
  kString,  // every cell non-null string; str() is valid
  kMixed,   // anything else (NULLs or mixed types); boxed access only
};

// One gathered column window. Always holds boxed pointers to the
// source Values (for fallbacks and materialization); additionally
// holds a flat typed array when the window is uniform.
class ColumnVector {
 public:
  // Gathers `count` cells of column `col` from rows
  // [begin, begin + count) of `rows`.
  void GatherDense(const std::vector<Tuple>& rows, size_t begin, size_t count,
                   int col);
  // Gathers `count` cells of column `col` from rows ids[0..count).
  void GatherIds(const std::vector<Tuple>& rows, const uint32_t* ids,
                 size_t count, int col);

  ColumnClass cls() const { return cls_; }
  size_t size() const { return boxed_.size(); }

  const int64_t* i64() const { return i64_.data(); }
  const double* f64() const { return f64_.data(); }
  const std::string* const* str() const { return str_.data(); }
  // Boxed cell access; valid for every class.
  const Value& value(size_t i) const { return *boxed_[i]; }

 private:
  void Classify();

  ColumnClass cls_ = ColumnClass::kMixed;
  std::vector<const Value*> boxed_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<const std::string*> str_;
};

// A window of rows over a Relation's tuple vector with per-column
// lazily gathered ColumnVectors. Reusable: Reset* keeps column
// capacity across batches.
class ColumnBatch {
 public:
  // Dense window over rows [begin, begin + count).
  void ResetDense(const std::vector<Tuple>& rows, size_t begin, size_t count,
                  int arity);
  // Window over the listed row ids (pointer must stay valid while the
  // batch is in use).
  void ResetIds(const std::vector<Tuple>& rows, const uint32_t* ids,
                size_t count, int arity);

  size_t size() const { return count_; }
  // Source row index (into the relation) of batch ordinal `i`.
  uint32_t row_id(size_t i) const {
    return ids_ != nullptr ? ids_[i] : static_cast<uint32_t>(begin_ + i);
  }
  const Tuple& row(size_t i) const { return (*rows_)[row_id(i)]; }

  // Column `col`, gathered on first access per Reset.
  const ColumnVector& column(int col);
  // Boxed cell access without forcing a gather of the whole column.
  const Value& value(size_t i, int col) const {
    return row(i).values()[col];
  }

  // Materializes batch ordinal `i` projected onto `cols` (the adapter
  // back to tuple-land at plan output boundaries).
  Tuple ProjectRow(size_t i, const std::vector<int>& cols) const;

 private:
  const std::vector<Tuple>* rows_ = nullptr;
  size_t begin_ = 0;
  const uint32_t* ids_ = nullptr;
  size_t count_ = 0;
  std::vector<ColumnVector> columns_;
  std::vector<char> gathered_;
};

// Resets `sel` to the identity selection [0, n).
void ResetSelection(std::vector<uint32_t>* sel, size_t n);

// Keeps the selected rows where `col[i] op rhs` per Value::Satisfies.
void FilterColumnConst(const ColumnVector& col, Comparator op,
                       const Value& rhs, std::vector<uint32_t>* sel);

// Keeps the selected rows where `lhs[i] op rhs[i]` per Value::Satisfies.
void FilterColumnColumn(const ColumnVector& lhs, Comparator op,
                        const ColumnVector& rhs, std::vector<uint32_t>* sel);

// Keeps the selected rows whose cell is non-null.
void FilterNotNull(const ColumnVector& col, std::vector<uint32_t>* sel);

}  // namespace viewauth

#endif  // VIEWAUTH_STORAGE_COLUMN_BATCH_H_
