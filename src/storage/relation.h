// In-memory relations with set semantics (the relational model of the
// paper: a relation is a *set* of tuples over the scheme's domains), and
// the database instance holding one relation per relation scheme.

#ifndef VIEWAUTH_STORAGE_RELATION_H_
#define VIEWAUTH_STORAGE_RELATION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "schema/schema.h"
#include "storage/column_batch.h"
#include "storage/tuple.h"

namespace viewauth {

class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  // Copies and moves transfer the data but not the lazily-built indexes
  // (each copy rebuilds its own on demand, under its own lock).
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const RelationSchema& schema() const { return schema_; }

  // Inserts a tuple; duplicates are silently absorbed (set semantics).
  // Fails on arity or type mismatch, or on a primary-key violation (same
  // key, different non-key values) when the schema declares a key.
  Status Insert(Tuple tuple);
  // Inserts without schema validation (for operator outputs whose tuples
  // are correct by construction). Still deduplicates. Returns true if the
  // tuple was new.
  bool InsertUnchecked(Tuple tuple);

  // Removes a tuple if present; returns true if it was removed.
  bool Erase(const Tuple& tuple);
  void Clear();

  bool Contains(const Tuple& tuple) const;
  int size() const { return static_cast<int>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  // Insertion-ordered rows.
  const std::vector<Tuple>& rows() const { return rows_; }

  // Rows sorted lexicographically (deterministic display/comparison).
  std::vector<Tuple> SortedRows() const;

  // A hash index over one column: value -> indices into rows(). Built
  // lazily on first use and rebuilt after mutations (cheap version
  // check). Building is mutex-guarded, so concurrent read-only sessions
  // may share one relation; mutations must still be externally excluded
  // from readers (the engine's statement locking provides this).
  // Index lookups use strict Value equality, so callers must
  // coerce probe constants to the column's type (the engine's literal
  // coercion already guarantees this for stored data).
  using ColumnIndex = std::unordered_multimap<Value, int, ValueHash>;
  const ColumnIndex& IndexOn(int column) const;

  // An ordered index over one column: (value, row index) pairs sorted by
  // value (Value's total order). Built lazily like IndexOn; enables
  // binary-searched range scans for one-sided and interval predicates.
  using OrderedIndex = std::vector<std::pair<Value, int>>;
  const OrderedIndex& OrderedIndexOn(int column) const;

  // The whole column gathered into a ColumnVector (a flat typed array
  // when the column is uniform and null-free, boxed pointers
  // otherwise). Built lazily like IndexOn and invalidated by the same
  // version check; the vectorized plan's full scans run predicate
  // kernels directly over this image — selection entries are row
  // indices — instead of re-gathering cells tuple-by-tuple on every
  // scan. Cell pointers alias rows(), so the same reader/mutator
  // exclusion rules as the indexes apply.
  const ColumnVector& ColumnOn(int column) const;

  // True if both relations hold the same set of tuples (schema names are
  // not compared; arity must match).
  bool SameTuples(const Relation& other) const;

 private:
  // Validates tuple types against the schema; NULLs are always accepted.
  Status ValidateTuple(const Tuple& tuple) const;

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> index_;
  // Lazily-built per-column indexes, keyed by column; `version_` detects
  // staleness after Insert/Erase/Clear. `index_mutex_` serializes builds
  // from concurrent readers.
  long long version_ = 0;
  mutable std::mutex index_mutex_;
  mutable long long indexed_version_ = -1;
  mutable std::map<int, ColumnIndex> column_indexes_;
  mutable std::map<int, OrderedIndex> ordered_indexes_;
  mutable std::map<int, ColumnVector> column_cache_;
};

// A database instance: one relation per relation scheme of the database
// scheme, addressable by name.
//
// Copies are shallow and copy-on-write: a copy shares the schema object
// and every relation with the original, and the first mutation through
// either instance clones just the touched relation (or the schema, for
// DDL) before writing. This is what makes forking an engine snapshot
// O(#relations) pointer copies instead of a deep copy of all data —
// readers pinning the old instance keep an immutable view.
class DatabaseInstance {
 public:
  DatabaseInstance() : schema_(std::make_shared<DatabaseSchema>()) {}
  DatabaseInstance(const DatabaseInstance&) = default;
  DatabaseInstance& operator=(const DatabaseInstance&) = default;
  DatabaseInstance(DatabaseInstance&&) = default;
  DatabaseInstance& operator=(DatabaseInstance&&) = default;

  // Creates a relation for `schema`, registering it in the database
  // scheme as well.
  Status CreateRelation(RelationSchema schema);
  Status DropRelation(std::string_view name);

  // The non-const lookup is the write path: if the relation is shared
  // with another instance (a pinned snapshot), it is cloned first so the
  // mutation stays invisible to the sharer.
  Result<Relation*> GetRelation(std::string_view name);
  Result<const Relation*> GetRelation(std::string_view name) const;
  bool HasRelation(std::string_view name) const {
    return schema_->HasRelation(name);
  }

  Status Insert(std::string_view relation_name, Tuple tuple);

  const DatabaseSchema& schema() const { return *schema_; }
  // The schema as a shareable handle — the ViewCatalog binds to this so
  // catalog snapshots keep their schema alive independently of the
  // instance that created it.
  std::shared_ptr<const DatabaseSchema> schema_ptr() const { return schema_; }

  // Bumped on every relation create/drop; the authorization cache folds
  // it into its generation so DDL invalidates cached masks (data
  // mutations deliberately do not bump it — masks are data-independent).
  long long ddl_version() const { return ddl_version_; }

 private:
  // Clones the schema first when it is shared with a snapshot.
  DatabaseSchema& MutableSchema();

  std::shared_ptr<DatabaseSchema> schema_;
  std::map<std::string, std::shared_ptr<Relation>, std::less<>> relations_;
  long long ddl_version_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_STORAGE_RELATION_H_
