#include "storage/key_view.h"

namespace viewauth {

size_t KeyView::Hash() const {
  // Must mirror Tuple::Hash exactly (tests assert the equivalence).
  size_t h = 0x345678;
  for (const Value* v : refs_) {
    h = h * 1000003 ^ v->Hash();
  }
  return h;
}

bool KeyView::operator==(const KeyView& other) const {
  if (refs_.size() != other.refs_.size()) return false;
  for (size_t i = 0; i < refs_.size(); ++i) {
    if (!(*refs_[i] == *other.refs_[i])) return false;
  }
  return true;
}

}  // namespace viewauth
