// System R authorization baseline (Griffiths & Wade, TODS 1976), the
// first comparison point in the paper's introduction.
//
// Characteristics reproduced here:
//   * privileges are granted per object (base relation or view), with an
//     optional GRANT OPTION enabling re-granting;
//   * revocation is recursive with timestamp semantics: a grant survives
//     only while it is supported by a chain of earlier grants (with grant
//     option) leading back to the object's owner;
//   * views are *access windows*: a user with access to view V but not to
//     the underlying relations can query V only by name. A query that
//     addresses an underlying relation directly is rejected outright —
//     the all-or-nothing behaviour Motro's model removes.

#ifndef VIEWAUTH_BASELINES_SYSTEMR_GRANT_TABLE_H_
#define VIEWAUTH_BASELINES_SYSTEMR_GRANT_TABLE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "schema/schema.h"

namespace viewauth {
namespace systemr {

enum class Privilege { kRead = 0, kInsert = 1, kDelete = 2, kUpdate = 3 };

std::string_view PrivilegeToString(Privilege privilege);

struct GrantRecord {
  long long timestamp = 0;
  std::string grantor;
  std::string grantee;
  std::string object;
  Privilege privilege = Privilege::kRead;
  bool grant_option = false;

  bool operator==(const GrantRecord& other) const = default;
};

class SystemRAuthorizer {
 public:
  explicit SystemRAuthorizer(const DatabaseSchema* schema)
      : schema_(schema) {}

  // Registers a base relation with its owner. The owner holds every
  // privilege with grant option, implicitly, from timestamp 0.
  Status RegisterTable(std::string table, std::string owner);

  // Registers a view owned by `owner`, defined by `definition`. The owner
  // receives READ on the view iff they hold READ on every underlying
  // table, with grant option iff they hold all of those with grant
  // option (the System R "derived authorization" rule).
  Status RegisterView(std::string view, std::string owner,
                      ConjunctiveQuery definition);

  // GRANT `privilege` ON `object` TO `grantee` [WITH GRANT OPTION],
  // issued by `grantor`. Fails unless the grantor holds the privilege
  // with grant option at this time.
  Status Grant(const std::string& grantor, const std::string& grantee,
               const std::string& object, Privilege privilege,
               bool grant_option);

  // REVOKE: removes the grantor's grants of (object, privilege) to
  // grantee, then recursively invalidates grants that are no longer
  // supported by a timestamp-increasing chain from the owner.
  Status Revoke(const std::string& revoker, const std::string& grantee,
                const std::string& object, Privilege privilege);

  // Does `user` currently hold `privilege` on `object`?
  bool HasPrivilege(const std::string& user, const std::string& object,
                    Privilege privilege,
                    bool require_grant_option = false) const;

  // System R query check: every membership atom's relation must be
  // readable by the user. All-or-nothing: no partial results.
  Status CheckQuery(const std::string& user,
                    const ConjunctiveQuery& query) const;

  // Querying a view *by name*: allowed iff the user holds READ on the
  // view object; returns the view's definition for execution against the
  // base relations (query rewriting).
  Result<const ConjunctiveQuery*> OpenView(const std::string& user,
                                           const std::string& view) const;

  // Currently valid grants, for inspection and tests.
  const std::vector<GrantRecord>& grants() const { return grants_; }
  const std::map<std::string, std::string>& owners() const { return owners_; }

 private:
  // Recomputes the set of supported grants after a revocation, per the
  // Griffiths-Wade semantics.
  void PruneUnsupportedGrants();

  // True if `user` holds (object, privilege[, grant option]) at
  // `before_timestamp` through ownership or a supported chain, considering
  // only grants with timestamp < before_timestamp.
  bool HeldAt(const std::string& user, const std::string& object,
              Privilege privilege, bool require_grant_option,
              long long before_timestamp) const;

  const DatabaseSchema* schema_;
  std::map<std::string, std::string> owners_;  // object -> owner
  std::map<std::string, ConjunctiveQuery> view_definitions_;
  std::vector<GrantRecord> grants_;
  long long clock_ = 1;
};

}  // namespace systemr
}  // namespace viewauth

#endif  // VIEWAUTH_BASELINES_SYSTEMR_GRANT_TABLE_H_
