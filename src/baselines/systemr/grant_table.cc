#include "baselines/systemr/grant_table.h"

#include <algorithm>

namespace viewauth {
namespace systemr {

std::string_view PrivilegeToString(Privilege privilege) {
  switch (privilege) {
    case Privilege::kRead:
      return "READ";
    case Privilege::kInsert:
      return "INSERT";
    case Privilege::kDelete:
      return "DELETE";
    case Privilege::kUpdate:
      return "UPDATE";
  }
  return "?";
}

Status SystemRAuthorizer::RegisterTable(std::string table,
                                        std::string owner) {
  if (owners_.contains(table)) {
    return Status::AlreadyExists("object '" + table +
                                 "' is already registered");
  }
  owners_.emplace(std::move(table), std::move(owner));
  return Status::OK();
}

Status SystemRAuthorizer::RegisterView(std::string view, std::string owner,
                                       ConjunctiveQuery definition) {
  if (owners_.contains(view)) {
    return Status::AlreadyExists("object '" + view +
                                 "' is already registered");
  }
  // Derived authorization: the view owner's READ on the view mirrors
  // their READ on every underlying relation.
  bool readable = true;
  bool grantable = true;
  for (const MembershipAtom& atom : definition.atoms()) {
    if (!HasPrivilege(owner, atom.relation, Privilege::kRead)) {
      readable = false;
    }
    if (!HasPrivilege(owner, atom.relation, Privilege::kRead,
                      /*require_grant_option=*/true)) {
      grantable = false;
    }
  }
  if (!readable) {
    return Status::PermissionDenied(
        "user '" + owner + "' cannot define view '" + view +
        "': missing READ on an underlying relation");
  }
  owners_.emplace(view, owner);
  view_definitions_.emplace(view, std::move(definition));
  if (!grantable) {
    // The owner may read the view but cannot grant it onward. Model this
    // by recording ownership but remembering the restriction via a
    // non-grant-option self grant; HeldAt treats owners of views with
    // full derivation as grant-capable, so encode the weaker case:
    owners_[view] = "";  // no grant-capable owner
    grants_.push_back(GrantRecord{clock_++, "", owner, view,
                                  Privilege::kRead, false});
  }
  return Status::OK();
}

bool SystemRAuthorizer::HeldAt(const std::string& user,
                               const std::string& object,
                               Privilege privilege, bool require_grant_option,
                               long long before_timestamp) const {
  auto owner = owners_.find(object);
  if (owner != owners_.end() && owner->second == user && !user.empty()) {
    return true;  // owners hold everything from time 0
  }
  // Breadth of chains is small; recompute reachability restricted to
  // timestamps < before_timestamp.
  for (const GrantRecord& grant : grants_) {
    if (grant.grantee != user || grant.object != object ||
        grant.privilege != privilege) {
      continue;
    }
    if (grant.timestamp >= before_timestamp) continue;
    if (require_grant_option && !grant.grant_option) continue;
    // The grantor must have held the privilege with grant option when
    // granting (empty grantor marks a system-issued derived grant).
    if (grant.grantor.empty() ||
        HeldAt(grant.grantor, object, privilege, true, grant.timestamp)) {
      return true;
    }
  }
  return false;
}

bool SystemRAuthorizer::HasPrivilege(const std::string& user,
                                     const std::string& object,
                                     Privilege privilege,
                                     bool require_grant_option) const {
  return HeldAt(user, object, privilege, require_grant_option,
                clock_ + 1);
}

Status SystemRAuthorizer::Grant(const std::string& grantor,
                                const std::string& grantee,
                                const std::string& object,
                                Privilege privilege, bool grant_option) {
  if (!owners_.contains(object)) {
    return Status::NotFound("object '" + object + "' is not registered");
  }
  if (!HasPrivilege(grantor, object, privilege,
                    /*require_grant_option=*/true)) {
    return Status::PermissionDenied(
        "user '" + grantor + "' cannot grant " +
        std::string(PrivilegeToString(privilege)) + " on '" + object + "'");
  }
  grants_.push_back(GrantRecord{clock_++, grantor, grantee, object,
                                privilege, grant_option});
  return Status::OK();
}

void SystemRAuthorizer::PruneUnsupportedGrants() {
  // Iteratively delete grants whose grantor no longer held the privilege
  // with grant option at grant time (Griffiths-Wade recursive revoke).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = grants_.begin(); it != grants_.end(); ++it) {
      if (it->grantor.empty()) continue;  // system-issued
      if (!HeldAt(it->grantor, it->object, it->privilege, true,
                  it->timestamp)) {
        grants_.erase(it);
        changed = true;
        break;
      }
    }
  }
}

Status SystemRAuthorizer::Revoke(const std::string& revoker,
                                 const std::string& grantee,
                                 const std::string& object,
                                 Privilege privilege) {
  size_t before = grants_.size();
  std::erase_if(grants_, [&](const GrantRecord& grant) {
    return grant.grantor == revoker && grant.grantee == grantee &&
           grant.object == object && grant.privilege == privilege;
  });
  if (grants_.size() == before) {
    return Status::NotFound("no matching grant from '" + revoker + "' to '" +
                            grantee + "'");
  }
  PruneUnsupportedGrants();
  return Status::OK();
}

Status SystemRAuthorizer::CheckQuery(const std::string& user,
                                     const ConjunctiveQuery& query) const {
  for (const MembershipAtom& atom : query.atoms()) {
    if (!HasPrivilege(user, atom.relation, Privilege::kRead)) {
      return Status::PermissionDenied(
          "System R: user '" + user + "' lacks READ on relation '" +
          atom.relation + "' (no partial results)");
    }
  }
  return Status::OK();
}

Result<const ConjunctiveQuery*> SystemRAuthorizer::OpenView(
    const std::string& user, const std::string& view) const {
  auto it = view_definitions_.find(view);
  if (it == view_definitions_.end()) {
    return Status::NotFound("view '" + view + "' is not registered");
  }
  if (!HasPrivilege(user, view, Privilege::kRead)) {
    return Status::PermissionDenied("System R: user '" + user +
                                    "' lacks READ on view '" + view + "'");
  }
  return &it->second;
}

}  // namespace systemr
}  // namespace viewauth
