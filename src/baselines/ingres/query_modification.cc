#include "baselines/ingres/query_modification.h"

#include <algorithm>
#include <set>

#include "algebra/optimizer.h"

namespace viewauth {
namespace ingres {

Status IngresAuthorizer::AddPermission(Permission permission) {
  VIEWAUTH_ASSIGN_OR_RETURN(const RelationSchema* schema,
                            schema_->GetRelation(permission.relation));
  std::set<std::string> allowed(permission.columns.begin(),
                                permission.columns.end());
  for (const std::string& column : permission.columns) {
    if (schema->AttributeIndex(column) < 0) {
      return Status::NotFound("relation '" + permission.relation +
                              "' has no attribute '" + column + "'");
    }
  }
  for (const Condition& cond : permission.qualification) {
    auto check = [&](const AttributeRef& ref) -> Status {
      if (ref.relation != permission.relation || ref.occurrence != 1) {
        return Status::InvalidArgument(
            "INGRES qualifications may only reference the protected "
            "relation (single-relation permissions)");
      }
      if (schema->AttributeIndex(ref.attribute) < 0) {
        return Status::NotFound("relation '" + permission.relation +
                                "' has no attribute '" + ref.attribute +
                                "'");
      }
      return Status::OK();
    };
    VIEWAUTH_RETURN_NOT_OK(check(cond.lhs));
    if (cond.rhs.is_attribute) {
      VIEWAUTH_RETURN_NOT_OK(check(cond.rhs.attribute));
    }
  }
  permissions_.push_back(std::move(permission));
  return Status::OK();
}

Result<std::vector<ConjunctiveQuery>> IngresAuthorizer::Modify(
    const std::string& user, const std::vector<AttributeRef>& targets,
    const std::vector<Condition>& conditions) const {
  // Referenced attributes per relation occurrence.
  std::map<std::pair<std::string, int>, std::set<std::string>> referenced;
  auto note = [&referenced](const AttributeRef& ref) {
    referenced[{ref.relation, ref.occurrence}].insert(ref.attribute);
  };
  for (const AttributeRef& ref : targets) note(ref);
  for (const Condition& cond : conditions) {
    note(cond.lhs);
    if (cond.rhs.is_attribute) note(cond.rhs.attribute);
  }

  // Applicable permissions per occurrence: the permission's column set
  // must contain *every* referenced attribute (the all-or-nothing column
  // check the paper criticizes).
  std::vector<std::pair<std::pair<std::string, int>,
                        std::vector<const Permission*>>>
      choices;
  for (const auto& [occurrence, attrs] : referenced) {
    std::vector<const Permission*> applicable;
    for (const Permission& permission : permissions_) {
      if (permission.user != user ||
          permission.relation != occurrence.first) {
        continue;
      }
      std::set<std::string> allowed(permission.columns.begin(),
                                    permission.columns.end());
      bool covers = std::all_of(
          attrs.begin(), attrs.end(),
          [&allowed](const std::string& a) { return allowed.contains(a); });
      if (covers) applicable.push_back(&permission);
    }
    if (applicable.empty()) {
      return Status::PermissionDenied(
          "INGRES: no permission of user '" + user + "' on relation '" +
          occurrence.first +
          "' covers all addressed attributes (query rejected)");
    }
    choices.emplace_back(occurrence, std::move(applicable));
  }

  // One modified query per combination of applicable permissions.
  size_t combinations = 1;
  for (const auto& [occurrence, applicable] : choices) {
    (void)occurrence;
    combinations *= applicable.size();
    if (combinations > 64) {
      return Status::InvalidArgument(
          "INGRES: too many applicable permission combinations");
    }
  }

  std::vector<ConjunctiveQuery> modified;
  for (size_t index = 0; index < combinations; ++index) {
    std::vector<Condition> merged = conditions;
    size_t radix = index;
    for (const auto& [occurrence, applicable] : choices) {
      const Permission* chosen = applicable[radix % applicable.size()];
      radix /= applicable.size();
      for (Condition cond : chosen->qualification) {
        // Re-target the permission's occurrence-1 references onto this
        // occurrence of the relation.
        cond.lhs.occurrence = occurrence.second;
        if (cond.rhs.is_attribute) {
          cond.rhs.attribute.occurrence = occurrence.second;
        }
        merged.push_back(std::move(cond));
      }
    }
    VIEWAUTH_ASSIGN_OR_RETURN(
        ConjunctiveQuery query,
        ConjunctiveQuery::Build(*schema_, "ingres-modified", targets,
                                merged));
    modified.push_back(std::move(query));
  }
  return modified;
}

Result<Relation> IngresAuthorizer::Retrieve(
    const std::string& user, const std::vector<AttributeRef>& targets,
    const std::vector<Condition>& conditions,
    const DatabaseInstance& db) const {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> modified,
                            Modify(user, targets, conditions));
  Relation result;
  bool first = true;
  for (const ConjunctiveQuery& query : modified) {
    VIEWAUTH_ASSIGN_OR_RETURN(Relation partial,
                              EvaluateOptimized(query, db, "ANSWER"));
    if (first) {
      result = std::move(partial);
      first = false;
    } else {
      for (const Tuple& row : partial.rows()) {
        result.InsertUnchecked(row);
      }
    }
  }
  return result;
}

}  // namespace ingres
}  // namespace viewauth
