// INGRES query-modification baseline (Stonebraker & Wong, ACM 1974), the
// second comparison point in the paper's introduction.
//
// Characteristics reproduced here:
//   * permissions attach to a *single relation*: a permitted column set
//     plus a qualification over that relation's own attributes (no
//     multi-relation permitted views — the paper's first criticism);
//   * query modification conjoins the permission qualification onto the
//     user's query, so over-reaching row requests shrink gracefully;
//   * the column check is all-or-nothing per relation: if the query
//     addresses any attribute outside the permitted column set, the whole
//     query is rejected rather than column-reduced — the row/column
//     asymmetry the paper criticizes;
//   * several permissions on one relation disjoin: the modified query is
//     evaluated once per applicable permission combination and the
//     results are unioned.

#ifndef VIEWAUTH_BASELINES_INGRES_QUERY_MODIFICATION_H_
#define VIEWAUTH_BASELINES_INGRES_QUERY_MODIFICATION_H_

#include <string>
#include <vector>

#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "parser/ast.h"
#include "schema/schema.h"
#include "storage/relation.h"

namespace viewauth {
namespace ingres {

// One protection entry: `user` may access `columns` of `relation` on rows
// satisfying `qualification` (conditions over that relation only,
// occurrence 1).
struct Permission {
  std::string user;
  std::string relation;
  std::vector<std::string> columns;
  std::vector<Condition> qualification;
};

class IngresAuthorizer {
 public:
  explicit IngresAuthorizer(const DatabaseSchema* schema)
      : schema_(schema) {}

  // Validates and stores a permission. The qualification must reference
  // only the permission's relation, and only its permitted columns or
  // constants (INGRES qualifications range over the protected relation).
  Status AddPermission(Permission permission);

  // Query modification. Returns the modified conjunctive queries (one per
  // combination of applicable permissions; results must be unioned), or
  // PermissionDenied when some relation occurrence addresses attributes
  // outside every permission's column set.
  Result<std::vector<ConjunctiveQuery>> Modify(
      const std::string& user, const std::vector<AttributeRef>& targets,
      const std::vector<Condition>& conditions) const;

  // Convenience: modify + evaluate + union.
  Result<Relation> Retrieve(const std::string& user,
                            const std::vector<AttributeRef>& targets,
                            const std::vector<Condition>& conditions,
                            const DatabaseInstance& db) const;

  const std::vector<Permission>& permissions() const { return permissions_; }

 private:
  const DatabaseSchema* schema_;
  std::vector<Permission> permissions_;
};

}  // namespace ingres
}  // namespace viewauth

#endif  // VIEWAUTH_BASELINES_INGRES_QUERY_MODIFICATION_H_
