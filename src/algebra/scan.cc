#include "algebra/scan.h"

#include <algorithm>

namespace viewauth {

std::vector<uint32_t> SelectRowIds(const Relation& rel,
                                   const RelationSchema& schema,
                                   const ConjunctivePredicate& pred,
                                   EvalStats* stats, ExecContext* ctx) {
  std::vector<uint32_t> out;
  ExecMeter meter(ctx);

  // Index probe: an equality-with-constant atom whose constant type
  // matches the column's declared type exactly can use the relation's
  // lazy hash index instead of scanning. (Double columns are excluded:
  // they may store int64 values that compare equal but hash under a
  // different strict type.)
  int probe_column = -1;
  Value probe_value;
  for (const SelectionAtom& atom : pred.atoms()) {
    if (atom.rhs_is_column || atom.op != Comparator::kEq) continue;
    ValueType column_type = schema.attribute(atom.lhs_column).type;
    const bool exact =
        (column_type == ValueType::kInt64 && atom.rhs_const.is_int64()) ||
        (column_type == ValueType::kString && atom.rhs_const.is_string());
    if (exact) {
      probe_column = atom.lhs_column;
      probe_value = atom.rhs_const;
      break;
    }
  }

  // Otherwise, a one-sided range atom can binary-search the ordered
  // index (same exact-type restriction).
  int range_column = -1;
  Comparator range_op = Comparator::kEq;
  Value range_value;
  if (probe_column < 0) {
    for (const SelectionAtom& atom : pred.atoms()) {
      if (atom.rhs_is_column) continue;
      if (atom.op != Comparator::kGe && atom.op != Comparator::kGt &&
          atom.op != Comparator::kLe && atom.op != Comparator::kLt) {
        continue;
      }
      ValueType column_type = schema.attribute(atom.lhs_column).type;
      const bool exact =
          (column_type == ValueType::kInt64 && atom.rhs_const.is_int64()) ||
          (column_type == ValueType::kString && atom.rhs_const.is_string());
      if (exact) {
        range_column = atom.lhs_column;
        range_op = atom.op;
        range_value = atom.rhs_const;
        break;
      }
    }
  }

  if (probe_column >= 0) {
    const Relation::ColumnIndex& index = rel.IndexOn(probe_column);
    auto [lo, hi] = index.equal_range(probe_value);
    for (auto it = lo; it != hi; ++it) {
      const uint32_t id = static_cast<uint32_t>(it->second);
      if (!meter.TickRows(1)) break;
      if (stats != nullptr) ++stats->rows_scanned;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  } else if (range_column >= 0) {
    const Relation::OrderedIndex& index = rel.OrderedIndexOn(range_column);
    auto value_less = [](const std::pair<Value, int>& entry,
                         const Value& probe) { return entry.first < probe; };
    auto probe_less = [](const Value& probe,
                         const std::pair<Value, int>& entry) {
      return probe < entry.first;
    };
    Relation::OrderedIndex::const_iterator begin = index.begin();
    Relation::OrderedIndex::const_iterator end = index.end();
    switch (range_op) {
      case Comparator::kGe:
        begin = std::lower_bound(index.begin(), index.end(), range_value,
                                 value_less);
        break;
      case Comparator::kGt:
        begin = std::upper_bound(index.begin(), index.end(), range_value,
                                 probe_less);
        break;
      case Comparator::kLe:
        end = std::upper_bound(index.begin(), index.end(), range_value,
                               probe_less);
        break;
      case Comparator::kLt:
        end = std::lower_bound(index.begin(), index.end(), range_value,
                               value_less);
        break;
      default:
        break;
    }
    for (auto it = begin; it != end; ++it) {
      const uint32_t id = static_cast<uint32_t>(it->second);
      if (!meter.TickRows(1)) break;
      if (stats != nullptr) ++stats->rows_scanned;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  } else {
    for (uint32_t id = 0; id < static_cast<uint32_t>(rel.size()); ++id) {
      if (!meter.TickRows(1)) break;
      if (stats != nullptr) ++stats->rows_scanned;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  }
  return out;
}

}  // namespace viewauth
