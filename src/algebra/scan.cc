#include "algebra/scan.h"

#include <algorithm>

namespace viewauth {

namespace {

// True when the column's declared type matches the constant's concrete
// type exactly, for the index-eligible types. (Double columns are
// excluded: they may store int64 values that compare equal but hash
// under a different strict type.)
bool ExactIndexType(ValueType column_type, const Value& constant) {
  return (column_type == ValueType::kInt64 && constant.is_int64()) ||
         (column_type == ValueType::kString && constant.is_string());
}

// An equality-with-constant atom that can use the lazy hash index, or
// -1. On a hit, *value is the probe constant.
int FindProbeAtom(const RelationSchema& schema,
                  const ConjunctivePredicate& pred, Value* value) {
  for (const SelectionAtom& atom : pred.atoms()) {
    if (atom.rhs_is_column || atom.op != Comparator::kEq) continue;
    if (ExactIndexType(schema.attribute(atom.lhs_column).type,
                       atom.rhs_const)) {
      if (value != nullptr) *value = atom.rhs_const;
      return atom.lhs_column;
    }
  }
  return -1;
}

// A one-sided range atom that can binary-search the ordered index, or
// -1. On a hit, *op / *value describe the bound.
int FindRangeAtom(const RelationSchema& schema,
                  const ConjunctivePredicate& pred, Comparator* op,
                  Value* value) {
  for (const SelectionAtom& atom : pred.atoms()) {
    if (atom.rhs_is_column) continue;
    if (atom.op != Comparator::kGe && atom.op != Comparator::kGt &&
        atom.op != Comparator::kLe && atom.op != Comparator::kLt) {
      continue;
    }
    if (ExactIndexType(schema.attribute(atom.lhs_column).type,
                       atom.rhs_const)) {
      if (op != nullptr) *op = atom.op;
      if (value != nullptr) *value = atom.rhs_const;
      return atom.lhs_column;
    }
  }
  return -1;
}

}  // namespace

bool HasIndexableAtom(const RelationSchema& schema,
                      const ConjunctivePredicate& pred) {
  return FindProbeAtom(schema, pred, nullptr) >= 0 ||
         FindRangeAtom(schema, pred, nullptr, nullptr) >= 0;
}

std::vector<uint32_t> SelectRowIds(const Relation& rel,
                                   const RelationSchema& schema,
                                   const ConjunctivePredicate& pred,
                                   EvalStats* stats, ExecContext* ctx) {
  std::vector<uint32_t> out;
  ExecMeter meter(ctx);

  Value probe_value;
  const int probe_column = FindProbeAtom(schema, pred, &probe_value);

  Comparator range_op = Comparator::kEq;
  Value range_value;
  const int range_column =
      probe_column >= 0
          ? -1
          : FindRangeAtom(schema, pred, &range_op, &range_value);

  if (probe_column >= 0) {
    const Relation::ColumnIndex& index = rel.IndexOn(probe_column);
    auto [lo, hi] = index.equal_range(probe_value);
    for (auto it = lo; it != hi; ++it) {
      const uint32_t id = static_cast<uint32_t>(it->second);
      if (!ChargeScannedRows(stats, &meter, 1)) break;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  } else if (range_column >= 0) {
    const Relation::OrderedIndex& index = rel.OrderedIndexOn(range_column);
    auto value_less = [](const std::pair<Value, int>& entry,
                         const Value& probe) { return entry.first < probe; };
    auto probe_less = [](const Value& probe,
                         const std::pair<Value, int>& entry) {
      return probe < entry.first;
    };
    Relation::OrderedIndex::const_iterator begin = index.begin();
    Relation::OrderedIndex::const_iterator end = index.end();
    switch (range_op) {
      case Comparator::kGe:
        begin = std::lower_bound(index.begin(), index.end(), range_value,
                                 value_less);
        break;
      case Comparator::kGt:
        begin = std::upper_bound(index.begin(), index.end(), range_value,
                                 probe_less);
        break;
      case Comparator::kLe:
        end = std::upper_bound(index.begin(), index.end(), range_value,
                               probe_less);
        break;
      case Comparator::kLt:
        end = std::lower_bound(index.begin(), index.end(), range_value,
                               value_less);
        break;
      default:
        break;
    }
    for (auto it = begin; it != end; ++it) {
      const uint32_t id = static_cast<uint32_t>(it->second);
      if (!ChargeScannedRows(stats, &meter, 1)) break;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  } else {
    for (uint32_t id = 0; id < static_cast<uint32_t>(rel.size()); ++id) {
      if (!ChargeScannedRows(stats, &meter, 1)) break;
      if (pred.Matches(rel.rows()[id])) out.push_back(id);
    }
  }
  return out;
}

}  // namespace viewauth
