#include "algebra/plan.h"

#include <sstream>

#include "common/str_util.h"

namespace viewauth {

std::unique_ptr<PlanNode> PlanNode::Scan(std::string relation_name) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kScan;
  node->relation = std::move(relation_name);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Product(std::unique_ptr<PlanNode> l,
                                            std::unique_ptr<PlanNode> r) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kProduct;
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Selection(std::unique_ptr<PlanNode> input,
                                              ConjunctivePredicate pred) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kSelection;
  node->child = std::move(input);
  node->predicate = std::move(pred);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Projection(std::unique_ptr<PlanNode> input,
                                               std::vector<int> cols) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kProjection;
  node->child = std::move(input);
  node->columns = std::move(cols);
  return node;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::ostringstream out;
  switch (kind) {
    case PlanNodeKind::kScan:
      out << pad << "Scan(" << relation << ")";
      break;
    case PlanNodeKind::kProduct:
      out << pad << "Product\n"
          << left->ToString(indent + 1) << "\n"
          << right->ToString(indent + 1);
      break;
    case PlanNodeKind::kSelection:
      out << pad << "Selection(" << predicate.ToString({}) << ")\n"
          << child->ToString(indent + 1);
      break;
    case PlanNodeKind::kProjection: {
      std::vector<std::string> cols;
      cols.reserve(columns.size());
      for (int c : columns) cols.push_back("#" + std::to_string(c));
      out << pad << "Projection(" << Join(cols, ", ") << ")\n"
          << child->ToString(indent + 1);
      break;
    }
  }
  return out.str();
}

std::unique_ptr<PlanNode> BuildCanonicalPlan(const ConjunctiveQuery& query) {
  // Left-deep product over all atoms.
  std::unique_ptr<PlanNode> plan;
  for (const MembershipAtom& atom : query.atoms()) {
    auto scan = PlanNode::Scan(atom.relation);
    plan = plan == nullptr
               ? std::move(scan)
               : PlanNode::Product(std::move(plan), std::move(scan));
  }

  // One selection with every condition over flat product columns.
  ConjunctivePredicate predicate;
  for (const CalculusCondition& cond : query.conditions()) {
    if (cond.rhs_is_column) {
      predicate.Add(SelectionAtom::ColumnColumn(query.FlatIndex(cond.lhs),
                                                cond.op,
                                                query.FlatIndex(cond.rhs_column)));
    } else {
      predicate.Add(SelectionAtom::ColumnConst(query.FlatIndex(cond.lhs),
                                               cond.op, cond.rhs_const));
    }
  }
  if (!predicate.IsTrivial()) {
    plan = PlanNode::Selection(std::move(plan), std::move(predicate));
  }

  // Final projection onto target columns.
  std::vector<int> columns;
  columns.reserve(query.targets().size());
  for (const ColumnRef& ref : query.targets()) {
    columns.push_back(query.FlatIndex(ref));
  }
  return PlanNode::Projection(std::move(plan), std::move(columns));
}

}  // namespace viewauth
