// Index-aware single-relation scans shared by the data-side evaluation
// strategies (optimizer.cc and latemat.cc).
//
// SelectRowIds returns the indices (into rel.rows()) of the rows matching
// a conjunctive predicate, using the relation's lazy hash index for an
// exact-typed equality-with-constant atom, or its ordered index for an
// exact-typed one-sided range atom, and falling back to a full scan
// otherwise.
//
// rows_scanned accounting contract (asserted by tests/latemat_test.cc):
// the counter means "rows fetched from storage and examined" in every
// strategy — a full scan counts every row of the relation, an index probe
// or binary-searched range counts exactly the rows the index yields
// (each of which is fetched and tested against the residual predicate).
//
// When `ctx` is non-null, each examined row ticks the execution governor
// and the scan stops early once the context trips; callers must check
// ctx->status() before trusting the (then partial) result.

#ifndef VIEWAUTH_ALGEBRA_SCAN_H_
#define VIEWAUTH_ALGEBRA_SCAN_H_

#include <cstdint>
#include <vector>

#include "algebra/evaluator.h"
#include "common/exec_context.h"
#include "predicate/predicate.h"
#include "schema/schema.h"
#include "storage/relation.h"

namespace viewauth {

std::vector<uint32_t> SelectRowIds(const Relation& rel,
                                   const RelationSchema& schema,
                                   const ConjunctivePredicate& pred,
                                   EvalStats* stats,
                                   ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_SCAN_H_
