// Index-aware single-relation scans shared by the data-side evaluation
// strategies (optimizer.cc, latemat.cc, and vectorized.cc).
//
// SelectRowIds returns the indices (into rel.rows()) of the rows matching
// a conjunctive predicate, using the relation's lazy hash index for an
// exact-typed equality-with-constant atom, or its ordered index for an
// exact-typed one-sided range atom, and falling back to a full scan
// otherwise.
//
// rows_scanned accounting contract (asserted by tests/latemat_test.cc
// and tests/vectorized_test.cc): the counter means "rows fetched from
// storage and examined" in every strategy — a full scan counts every row
// of the relation, an index probe or binary-searched range counts exactly
// the rows the index yields (each of which is fetched and tested against
// the residual predicate). All four plans charge through
// ChargeScannedRows below so the contract lives in one place.
//
// When `ctx` is non-null, each examined row ticks the execution governor
// and the scan stops early once the context trips; callers must check
// ctx->status() before trusting the (then partial) result.

#ifndef VIEWAUTH_ALGEBRA_SCAN_H_
#define VIEWAUTH_ALGEBRA_SCAN_H_

#include <cstdint>
#include <vector>

#include "algebra/evaluator.h"
#include "common/exec_context.h"
#include "predicate/predicate.h"
#include "schema/schema.h"
#include "storage/relation.h"

namespace viewauth {

// The single implementation of the rows_scanned contract: charges
// `rows` examined rows (and optionally `bytes`) against the stats
// block and the execution governor. Returns false once the governor
// has tripped; callers must stop examining rows then. Tuple-at-a-time
// plans call it per row, the vectorized plan once per batch.
inline bool ChargeScannedRows(EvalStats* stats, ExecMeter* meter,
                              long long rows, long long bytes = 0) {
  if (stats != nullptr) stats->rows_scanned += rows;
  return meter == nullptr || meter->Tick(rows, bytes);
}

// True when SelectRowIds would serve `pred` from a hash or ordered
// index (an exact-typed equality-with-constant or one-sided range
// atom) instead of a full scan. The vectorized plan uses this to
// delegate index-served scans — where batching has nothing to gather —
// to SelectRowIds.
bool HasIndexableAtom(const RelationSchema& schema,
                      const ConjunctivePredicate& pred);

std::vector<uint32_t> SelectRowIds(const Relation& rel,
                                   const RelationSchema& schema,
                                   const ConjunctivePredicate& pred,
                                   EvalStats* stats,
                                   ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_SCAN_H_
