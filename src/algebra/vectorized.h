// Vectorized columnar evaluation of conjunctive queries (DESIGN.md §17).
//
// EvaluateLateMaterialized (latemat.h) removed per-tuple allocation from
// the data-side hot path, but it still evaluates predicates one row at a
// time: every scanned row pays Tuple::at bounds checks, a variant-typed
// Value comparison per atom, and a governor tick. This evaluator keeps
// the latemat plan shape exactly — same pushdown, same greedy join
// order, same sorted-flat hash join over row ids, same single
// materialization point — but runs every selection over columnar batches
// (storage/column_batch.h): ~1024-row windows are gathered into typed
// column arrays once, each predicate atom runs as a branch-light kernel
// that compacts a selection vector, and the ExecContext is ticked once
// per batch instead of once per row.
//
// The answer relation is bit-identical to EvaluateCanonical (the
// differential tier runs this plan as a fourth leg), so the paper's
// Figure 2 commutative diagram is unaffected by how the S data plan is
// executed.

#ifndef VIEWAUTH_ALGEBRA_VECTORIZED_H_
#define VIEWAUTH_ALGEBRA_VECTORIZED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/evaluator.h"
#include "calculus/conjunctive_query.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "predicate/predicate.h"
#include "storage/relation.h"

namespace viewauth {

// Batched counterpart of SelectRowIds (scan.h): identical results and
// identical rows_scanned accounting. Index-served predicates delegate
// to SelectRowIds (an index probe yields too few rows to batch); full
// scans run the predicate atoms as per-column kernels over dense
// batches, charging the governor once per batch. Exposed for tests.
std::vector<uint32_t> VectorizedSelectRowIds(const Relation& rel,
                                             const RelationSchema& schema,
                                             const ConjunctivePredicate& pred,
                                             EvalStats* stats,
                                             ExecContext* ctx = nullptr);

// A non-null `ctx` governs the evaluation with per-batch ticking; the
// run aborts with the context's status once it trips.
Result<Relation> EvaluateVectorized(const ConjunctiveQuery& query,
                                    const DatabaseInstance& db,
                                    const std::string& result_name = "ANSWER",
                                    EvalStats* stats = nullptr,
                                    ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_VECTORIZED_H_
