#include "algebra/optimizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "algebra/scan.h"

namespace viewauth {

namespace {

// A condition classified by the atoms it touches.
struct PendingCondition {
  CalculusCondition cond;
  std::set<int> atoms;  // atom indices referenced
};

// Hash of the join-key values of a tuple.
struct KeyHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace

Result<Relation> EvaluateOptimized(const ConjunctiveQuery& query,
                                   const DatabaseInstance& db,
                                   const std::string& result_name,
                                   EvalStats* stats, ExecContext* ctx) {
  const int num_atoms = static_cast<int>(query.atoms().size());

  // --- Phase 1: per-atom scans with pushed-down single-atom conditions.
  std::vector<PendingCondition> pending;
  std::vector<ConjunctivePredicate> local(num_atoms);
  for (const CalculusCondition& cond : query.conditions()) {
    std::set<int> atoms{cond.lhs.atom};
    if (cond.rhs_is_column) atoms.insert(cond.rhs_column.atom);
    if (atoms.size() == 1) {
      const int atom = *atoms.begin();
      if (cond.rhs_is_column) {
        local[atom].Add(SelectionAtom::ColumnColumn(cond.lhs.attr, cond.op,
                                                    cond.rhs_column.attr));
      } else {
        local[atom].Add(
            SelectionAtom::ColumnConst(cond.lhs.attr, cond.op, cond.rhs_const));
      }
    } else {
      pending.push_back(PendingCondition{cond, std::move(atoms)});
    }
  }

  // Scans share the index-aware row-id selection (and its uniform
  // rows_scanned accounting) with the late-materialized pipeline; this
  // strategy then materializes the selected rows, as its joins carry
  // whole tuples.
  std::vector<std::vector<Tuple>> inputs(num_atoms);
  for (int i = 0; i < num_atoms; ++i) {
    VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                              db.GetRelation(query.atoms()[i].relation));
    std::vector<uint32_t> ids =
        SelectRowIds(*rel, query.atom_schema(i), local[i], stats, ctx);
    if (ctx != nullptr && !ctx->ok()) return ctx->status();
    inputs[i].reserve(ids.size());
    for (uint32_t id : ids) inputs[i].push_back(rel->rows()[id]);
    if (ctx != nullptr &&
        !ctx->TickBytes(static_cast<long long>(ids.size()) *
                        ApproxTupleBytes(query.atom_schema(i).arity()))) {
      return ctx->status();
    }
    if (stats != nullptr) {
      stats->tuples_materialized += static_cast<long long>(ids.size());
    }
  }

  // --- Phase 2: greedy join order. `position` maps each joined atom to
  // the offset of its columns in the current intermediate tuples.
  std::vector<Tuple> current;
  std::map<int, int> position;  // atom -> column offset
  std::set<int> joined;
  int width = 0;

  auto flat = [&](const ColumnRef& ref) {
    return position.at(ref.atom) + ref.attr;
  };

  // Conditions become applicable once all their atoms are joined.
  auto apply_ready_conditions = [&]() {
    for (auto it = pending.begin(); it != pending.end();) {
      bool ready = std::all_of(it->atoms.begin(), it->atoms.end(),
                               [&](int a) { return joined.contains(a); });
      if (!ready) {
        ++it;
        continue;
      }
      const CalculusCondition& c = it->cond;
      SelectionAtom atom =
          c.rhs_is_column
              ? SelectionAtom::ColumnColumn(flat(c.lhs), c.op,
                                            flat(c.rhs_column))
              : SelectionAtom::ColumnConst(flat(c.lhs), c.op, c.rhs_const);
      std::vector<Tuple> filtered;
      filtered.reserve(current.size());
      for (Tuple& t : current) {
        if (atom.Matches(t)) filtered.push_back(std::move(t));
      }
      current = std::move(filtered);
      it = pending.erase(it);
    }
  };

  // Start with the smallest input.
  int first = 0;
  for (int i = 1; i < num_atoms; ++i) {
    if (inputs[i].size() < inputs[first].size()) first = i;
  }
  current = std::move(inputs[first]);
  position[first] = 0;
  joined.insert(first);
  width = query.atom_schema(first).arity();
  apply_ready_conditions();

  while (static_cast<int>(joined.size()) < num_atoms) {
    // Prefer an unjoined atom connected by an equality condition; break
    // ties by input size.
    int next = -1;
    bool next_connected = false;
    for (int i = 0; i < num_atoms; ++i) {
      if (joined.contains(i)) continue;
      bool connected = false;
      for (const PendingCondition& pc : pending) {
        if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
        if (!pc.atoms.contains(i)) continue;
        bool others_joined =
            std::all_of(pc.atoms.begin(), pc.atoms.end(), [&](int a) {
              return a == i || joined.contains(a);
            });
        if (others_joined) {
          connected = true;
          break;
        }
      }
      if (next == -1 || (connected && !next_connected) ||
          (connected == next_connected &&
           inputs[i].size() < inputs[next].size())) {
        next = i;
        next_connected = connected;
      }
    }

    // Collect the equality join keys between `current` and atom `next`.
    std::vector<std::pair<int, int>> keys;  // (current column, next attr)
    for (const PendingCondition& pc : pending) {
      if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
      const CalculusCondition& c = pc.cond;
      if (c.lhs.atom == next && joined.contains(c.rhs_column.atom)) {
        keys.emplace_back(flat(c.rhs_column), c.lhs.attr);
      } else if (c.rhs_column.atom == next && joined.contains(c.lhs.atom)) {
        keys.emplace_back(flat(c.lhs), c.rhs_column.attr);
      }
    }

    std::vector<Tuple> joined_rows;
    if (!keys.empty()) {
      // Hash join: build on the new atom, probe with current rows.
      std::unordered_multimap<Tuple, const Tuple*, KeyHash> table;
      std::vector<int> build_cols;
      build_cols.reserve(keys.size());
      for (const auto& [cur_col, next_attr] : keys) {
        (void)cur_col;
        build_cols.push_back(next_attr);
      }
      for (const Tuple& row : inputs[next]) {
        table.emplace(row.Project(build_cols), &row);
      }
      std::vector<int> probe_cols;
      probe_cols.reserve(keys.size());
      for (const auto& [cur_col, next_attr] : keys) {
        (void)next_attr;
        probe_cols.push_back(cur_col);
      }
      const long long row_bytes =
          ApproxTupleBytes(width + query.atom_schema(next).arity());
      ExecMeter meter(ctx);
      for (const Tuple& row : current) {
        Tuple probe_key = row.Project(probe_cols);
        auto [lo, hi] = table.equal_range(probe_key);
        for (auto it = lo; it != hi; ++it) {
          if (!meter.Tick(1, row_bytes)) return ctx->status();
          joined_rows.push_back(Tuple::Concat(row, *it->second));
        }
      }
    } else {
      // No connecting equality: cartesian product.
      joined_rows.reserve(current.size() * inputs[next].size());
      const long long row_bytes =
          ApproxTupleBytes(width + query.atom_schema(next).arity());
      ExecMeter meter(ctx);
      for (const Tuple& l : current) {
        for (const Tuple& r : inputs[next]) {
          if (!meter.Tick(1, row_bytes)) return ctx->status();
          joined_rows.push_back(Tuple::Concat(l, r));
        }
      }
    }
    if (stats != nullptr) {
      stats->intermediate_rows += static_cast<long long>(joined_rows.size());
      stats->tuples_materialized +=
          static_cast<long long>(joined_rows.size());
    }
    current = std::move(joined_rows);
    position[next] = width;
    width += query.atom_schema(next).arity();
    joined.insert(next);
    apply_ready_conditions();
  }

  // --- Phase 3: final projection (deduplicated by the result relation).
  std::vector<int> out_cols;
  out_cols.reserve(query.targets().size());
  for (const ColumnRef& ref : query.targets()) out_cols.push_back(flat(ref));

  VIEWAUTH_ASSIGN_OR_RETURN(RelationSchema schema,
                            query.OutputSchema(result_name));
  Relation result(schema);
  const long long out_bytes =
      ApproxTupleBytes(static_cast<int>(out_cols.size()));
  ExecMeter meter(ctx);
  for (const Tuple& t : current) {
    if (!meter.Tick(1, out_bytes)) return ctx->status();
    result.InsertUnchecked(t.Project(out_cols));
  }
  if (stats != nullptr) {
    stats->tuples_materialized += static_cast<long long>(current.size());
    stats->output_rows = result.size();
  }
  return result;
}

}  // namespace viewauth
