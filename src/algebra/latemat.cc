#include "algebra/latemat.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "algebra/scan.h"
#include "storage/key_view.h"

namespace viewauth {

namespace {

// A condition not yet applied, with the atoms it touches.
struct PendingCondition {
  CalculusCondition cond;
  std::set<int> atoms;
};

}  // namespace

Result<Relation> EvaluateLateMaterialized(const ConjunctiveQuery& query,
                                          const DatabaseInstance& db,
                                          const std::string& result_name,
                                          EvalStats* stats,
                                          ExecContext* ctx) {
  const int num_atoms = static_cast<int>(query.atoms().size());

  // --- Phase 1: per-atom scans with pushed-down single-atom conditions,
  // yielding row-index arrays (no tuple copies).
  std::vector<PendingCondition> pending;
  std::vector<ConjunctivePredicate> local(num_atoms);
  for (const CalculusCondition& cond : query.conditions()) {
    std::set<int> atoms{cond.lhs.atom};
    if (cond.rhs_is_column) atoms.insert(cond.rhs_column.atom);
    if (atoms.size() == 1) {
      const int atom = *atoms.begin();
      if (cond.rhs_is_column) {
        local[atom].Add(SelectionAtom::ColumnColumn(cond.lhs.attr, cond.op,
                                                    cond.rhs_column.attr));
      } else {
        local[atom].Add(
            SelectionAtom::ColumnConst(cond.lhs.attr, cond.op, cond.rhs_const));
      }
    } else {
      pending.push_back(PendingCondition{cond, std::move(atoms)});
    }
  }

  std::vector<const Relation*> base(num_atoms);
  std::vector<std::vector<uint32_t>> inputs(num_atoms);
  for (int i = 0; i < num_atoms; ++i) {
    VIEWAUTH_ASSIGN_OR_RETURN(base[i],
                              db.GetRelation(query.atoms()[i].relation));
    inputs[i] =
        SelectRowIds(*base[i], query.atom_schema(i), local[i], stats, ctx);
    if (ctx != nullptr && !ctx->ok()) return ctx->status();
  }

  // --- Phase 2: greedy join order over index rows. An intermediate row
  // is `stride` base-row indices, one per joined atom; `slot_of_atom`
  // maps a joined atom to its offset within a row.
  std::vector<int> slot_of_atom(num_atoms, -1);
  std::vector<uint32_t> current;  // row-major, `stride` entries per row
  std::set<int> joined;
  int stride = 0;

  // The value of (atom, attr) in the intermediate row starting at
  // `row_base`.
  auto value_at = [&](size_t row_base, int atom, int attr) -> const Value& {
    return base[atom]
        ->rows()[current[row_base + static_cast<size_t>(slot_of_atom[atom])]]
        .at(attr);
  };

  // Conditions become applicable once all their atoms are joined;
  // evaluation goes through the indirection, compacting `current` in
  // place.
  auto apply_ready_conditions = [&]() {
    for (auto it = pending.begin(); it != pending.end();) {
      bool ready = std::all_of(it->atoms.begin(), it->atoms.end(),
                               [&](int a) { return joined.contains(a); });
      if (!ready) {
        ++it;
        continue;
      }
      const CalculusCondition& c = it->cond;
      const size_t row_count = current.size() / static_cast<size_t>(stride);
      size_t write = 0;
      for (size_t r = 0; r < row_count; ++r) {
        const size_t row_base = r * static_cast<size_t>(stride);
        const Value& lhs = value_at(row_base, c.lhs.atom, c.lhs.attr);
        const bool keep =
            c.rhs_is_column
                ? lhs.Satisfies(c.op, value_at(row_base, c.rhs_column.atom,
                                               c.rhs_column.attr))
                : lhs.Satisfies(c.op, c.rhs_const);
        if (keep) {
          if (write != row_base) {
            std::copy(current.begin() + static_cast<long>(row_base),
                      current.begin() + static_cast<long>(row_base) + stride,
                      current.begin() + static_cast<long>(write));
          }
          write += static_cast<size_t>(stride);
        }
      }
      current.resize(write);
      it = pending.erase(it);
    }
  };

  // Start with the smallest input.
  int first = 0;
  for (int i = 1; i < num_atoms; ++i) {
    if (inputs[i].size() < inputs[first].size()) first = i;
  }
  current = std::move(inputs[first]);
  slot_of_atom[first] = 0;
  joined.insert(first);
  stride = 1;
  apply_ready_conditions();

  while (static_cast<int>(joined.size()) < num_atoms) {
    // Prefer an unjoined atom connected by an equality condition; break
    // ties by input size (same heuristic as EvaluateOptimized, so both
    // strategies run the same join order).
    int next = -1;
    bool next_connected = false;
    for (int i = 0; i < num_atoms; ++i) {
      if (joined.contains(i)) continue;
      bool connected = false;
      for (const PendingCondition& pc : pending) {
        if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
        if (!pc.atoms.contains(i)) continue;
        bool others_joined =
            std::all_of(pc.atoms.begin(), pc.atoms.end(), [&](int a) {
              return a == i || joined.contains(a);
            });
        if (others_joined) {
          connected = true;
          break;
        }
      }
      if (next == -1 || (connected && !next_connected) ||
          (connected == next_connected &&
           inputs[i].size() < inputs[next].size())) {
        next = i;
        next_connected = connected;
      }
    }

    // Equality join keys between `current` and atom `next`: pairs of
    // (joined-side column ref, next-side attr).
    struct JoinKey {
      int cur_atom;
      int cur_attr;
      int next_attr;
    };
    std::vector<JoinKey> keys;
    for (const PendingCondition& pc : pending) {
      if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
      const CalculusCondition& c = pc.cond;
      if (c.lhs.atom == next && joined.contains(c.rhs_column.atom)) {
        keys.push_back(JoinKey{c.rhs_column.atom, c.rhs_column.attr,
                               c.lhs.attr});
      } else if (c.rhs_column.atom == next && joined.contains(c.lhs.atom)) {
        keys.push_back(JoinKey{c.lhs.atom, c.lhs.attr, c.rhs_column.attr});
      }
    }

    const size_t row_count = current.size() / static_cast<size_t>(stride);
    const int new_stride = stride + 1;
    std::vector<uint32_t> joined_rows;
    if (!keys.empty()) {
      // Hash join: build on the new atom, probe with current rows. Keys
      // are hashed in place over the referenced Values — no projected
      // key Tuples are allocated on either side. The build side is a
      // sorted flat array of (hash, base row) pairs rather than a
      // node-based hash table: one contiguous allocation, and probes are
      // cache-friendly binary searches.
      std::vector<std::pair<size_t, uint32_t>> table;  // (hash, base row)
      table.reserve(inputs[next].size());
      KeyView key;
      key.Reserve(keys.size());
      for (uint32_t id : inputs[next]) {
        const Tuple& row = base[next]->rows()[id];
        key.Clear();
        for (const JoinKey& k : keys) key.Add(row.at(k.next_attr));
        table.emplace_back(key.Hash(), id);
      }
      std::sort(table.begin(), table.end(),
                [](const std::pair<size_t, uint32_t>& a,
                   const std::pair<size_t, uint32_t>& b) {
                  return a.first < b.first;
                });
      if (stats != nullptr) {
        stats->join_key_allocs_avoided +=
            static_cast<long long>(inputs[next].size()) +
            static_cast<long long>(row_count);
      }
      ExecMeter meter(ctx);
      for (size_t r = 0; r < row_count; ++r) {
        const size_t row_base = r * static_cast<size_t>(stride);
        key.Clear();
        for (const JoinKey& k : keys) {
          key.Add(value_at(row_base, k.cur_atom, k.cur_attr));
        }
        const size_t h = key.Hash();
        auto [lo, hi] = std::equal_range(
            table.begin(), table.end(), std::pair<size_t, uint32_t>{h, 0},
            [](const std::pair<size_t, uint32_t>& a,
               const std::pair<size_t, uint32_t>& b) {
              return a.first < b.first;
            });
        for (auto it = lo; it != hi; ++it) {
          // Verify the candidate: strict component-wise Value equality
          // (the semantics of the projected-key Tuple comparison this
          // replaces).
          const Tuple& build_row = base[next]->rows()[it->second];
          bool match = true;
          for (size_t k = 0; k < keys.size(); ++k) {
            if (!(key.at(k) == build_row.at(keys[k].next_attr))) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          if (!meter.Tick(1, new_stride * 4)) return ctx->status();
          joined_rows.insert(joined_rows.end(),
                             current.begin() + static_cast<long>(row_base),
                             current.begin() + static_cast<long>(row_base) +
                                 stride);
          joined_rows.push_back(it->second);
        }
      }
    } else {
      // No connecting equality: cartesian product of index rows.
      joined_rows.reserve(row_count * inputs[next].size() *
                          static_cast<size_t>(new_stride));
      ExecMeter meter(ctx);
      for (size_t r = 0; r < row_count; ++r) {
        const size_t row_base = r * static_cast<size_t>(stride);
        for (uint32_t id : inputs[next]) {
          if (!meter.Tick(1, new_stride * 4)) return ctx->status();
          joined_rows.insert(joined_rows.end(),
                             current.begin() + static_cast<long>(row_base),
                             current.begin() + static_cast<long>(row_base) +
                                 stride);
          joined_rows.push_back(id);
        }
      }
    }
    if (stats != nullptr) {
      stats->intermediate_rows += static_cast<long long>(
          joined_rows.size() / static_cast<size_t>(new_stride));
    }
    current = std::move(joined_rows);
    slot_of_atom[next] = stride;
    stride = new_stride;
    joined.insert(next);
    apply_ready_conditions();
  }

  // --- Phase 3: the single materialization point — final projection,
  // deduplicated by the result relation.
  VIEWAUTH_ASSIGN_OR_RETURN(RelationSchema schema,
                            query.OutputSchema(result_name));
  Relation result(schema);
  const size_t row_count = current.size() / static_cast<size_t>(stride);
  const std::vector<ColumnRef>& targets = query.targets();
  const long long out_bytes =
      ApproxTupleBytes(static_cast<int>(targets.size()));
  ExecMeter meter(ctx);
  for (size_t r = 0; r < row_count; ++r) {
    if (!meter.Tick(1, out_bytes)) return ctx->status();
    const size_t row_base = r * static_cast<size_t>(stride);
    std::vector<Value> values;
    values.reserve(targets.size());
    for (const ColumnRef& ref : targets) {
      values.push_back(value_at(row_base, ref.atom, ref.attr));
    }
    result.InsertUnchecked(Tuple(std::move(values)));
  }
  if (stats != nullptr) {
    stats->tuples_materialized += static_cast<long long>(row_count);
    stats->output_rows = result.size();
  }
  return result;
}

}  // namespace viewauth
