#include "algebra/vectorized.h"

#include <algorithm>
#include <set>
#include <utility>

#include "algebra/scan.h"
#include "storage/column_batch.h"
#include "storage/key_view.h"

namespace viewauth {

namespace {

// A condition not yet applied, with the atoms it touches.
struct PendingCondition {
  CalculusCondition cond;
  std::set<int> atoms;
};

}  // namespace

std::vector<uint32_t> VectorizedSelectRowIds(const Relation& rel,
                                             const RelationSchema& schema,
                                             const ConjunctivePredicate& pred,
                                             EvalStats* stats,
                                             ExecContext* ctx) {
  // Index-served scans touch exactly the yielded rows; there is nothing
  // to gather. Delegating keeps the index paths (and their rows_scanned
  // accounting) in one place.
  if (HasIndexableAtom(schema, pred)) {
    return SelectRowIds(rel, schema, pred, stats, ctx);
  }

  // Full scans kernel directly over the relation's cached columnar
  // image (Relation::ColumnOn): the flat per-column arrays are built
  // once per relation version, so the per-scan cost is the kernels
  // alone — no per-window cell gathering. Selection entries are
  // absolute row indices, which the kernels use as-is.
  struct AtomColumns {
    const ColumnVector* lhs;
    const ColumnVector* rhs;  // null for constant comparisons
  };
  std::vector<AtomColumns> cols;
  cols.reserve(pred.atoms().size());
  for (const SelectionAtom& atom : pred.atoms()) {
    cols.push_back(AtomColumns{
        &rel.ColumnOn(atom.lhs_column),
        atom.rhs_is_column ? &rel.ColumnOn(atom.rhs_column) : nullptr});
  }

  std::vector<uint32_t> out;
  ExecMeter meter(ctx);
  std::vector<uint32_t> sel;
  const size_t total = rel.size();
  for (size_t wb = 0; wb < total; wb += kColumnBatchRows) {
    const size_t n = std::min<size_t>(kColumnBatchRows, total - wb);
    // Every row of the window is fetched and examined, whether or not
    // any kernel keeps it.
    if (!ChargeScannedRows(stats, &meter, static_cast<long long>(n))) break;
    sel.resize(n);
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(wb + i);
    for (size_t a = 0; a < pred.atoms().size() && !sel.empty(); ++a) {
      const SelectionAtom& atom = pred.atoms()[a];
      if (atom.rhs_is_column) {
        FilterColumnColumn(*cols[a].lhs, atom.op, *cols[a].rhs, &sel);
      } else {
        FilterColumnConst(*cols[a].lhs, atom.op, atom.rhs_const, &sel);
      }
    }
    out.insert(out.end(), sel.begin(), sel.end());
    if (stats != nullptr) ++stats->batches_evaluated;
  }
  return out;
}

Result<Relation> EvaluateVectorized(const ConjunctiveQuery& query,
                                    const DatabaseInstance& db,
                                    const std::string& result_name,
                                    EvalStats* stats, ExecContext* ctx) {
  const int num_atoms = static_cast<int>(query.atoms().size());

  // --- Phase 1: per-atom batched scans with pushed-down single-atom
  // conditions, yielding row-index arrays (same pushdown as latemat).
  std::vector<PendingCondition> pending;
  std::vector<ConjunctivePredicate> local(num_atoms);
  for (const CalculusCondition& cond : query.conditions()) {
    std::set<int> atoms{cond.lhs.atom};
    if (cond.rhs_is_column) atoms.insert(cond.rhs_column.atom);
    if (atoms.size() == 1) {
      const int atom = *atoms.begin();
      if (cond.rhs_is_column) {
        local[atom].Add(SelectionAtom::ColumnColumn(cond.lhs.attr, cond.op,
                                                    cond.rhs_column.attr));
      } else {
        local[atom].Add(
            SelectionAtom::ColumnConst(cond.lhs.attr, cond.op, cond.rhs_const));
      }
    } else {
      pending.push_back(PendingCondition{cond, std::move(atoms)});
    }
  }

  std::vector<const Relation*> base(num_atoms);
  std::vector<std::vector<uint32_t>> inputs(num_atoms);
  for (int i = 0; i < num_atoms; ++i) {
    VIEWAUTH_ASSIGN_OR_RETURN(base[i],
                              db.GetRelation(query.atoms()[i].relation));
    inputs[i] = VectorizedSelectRowIds(*base[i], query.atom_schema(i),
                                       local[i], stats, ctx);
    if (ctx != nullptr && !ctx->ok()) return ctx->status();
  }

  // --- Phase 2: greedy join order over index rows — identical plan
  // shape to latemat.cc so both strategies produce the same join order
  // and the same intermediate row counts.
  std::vector<int> slot_of_atom(num_atoms, -1);
  std::vector<uint32_t> current;  // row-major, `stride` entries per row
  std::set<int> joined;
  int stride = 0;

  auto value_at = [&](size_t row_base, int atom, int attr) -> const Value& {
    return base[atom]
        ->rows()[current[row_base + static_cast<size_t>(slot_of_atom[atom])]]
        .at(attr);
  };

  // Conditions become applicable once all their atoms are joined. The
  // vectorized form gathers each referenced (atom, attr) column through
  // the row-id indirection one window at a time, runs the comparison as
  // a kernel over the gathered columns, and compacts `current` from the
  // surviving selection vector. Returns false once the governor trips.
  std::vector<uint32_t> lhs_ids;
  std::vector<uint32_t> rhs_ids;
  std::vector<uint32_t> sel;
  ColumnVector lhs_col;
  ColumnVector rhs_col;
  auto apply_ready_conditions = [&]() -> bool {
    for (auto it = pending.begin(); it != pending.end();) {
      bool ready = std::all_of(it->atoms.begin(), it->atoms.end(),
                               [&](int a) { return joined.contains(a); });
      if (!ready) {
        ++it;
        continue;
      }
      const CalculusCondition& c = it->cond;
      const size_t row_count = current.size() / static_cast<size_t>(stride);
      const size_t lhs_slot = static_cast<size_t>(slot_of_atom[c.lhs.atom]);
      size_t write = 0;
      ExecMeter meter(ctx);
      for (size_t wb = 0; wb < row_count; wb += kColumnBatchRows) {
        const size_t n = std::min<size_t>(kColumnBatchRows, row_count - wb);
        lhs_ids.resize(n);
        for (size_t i = 0; i < n; ++i) {
          lhs_ids[i] = current[(wb + i) * static_cast<size_t>(stride) +
                               lhs_slot];
        }
        lhs_col.GatherIds(base[c.lhs.atom]->rows(), lhs_ids.data(), n,
                          c.lhs.attr);
        ResetSelection(&sel, n);
        if (c.rhs_is_column) {
          const size_t rhs_slot =
              static_cast<size_t>(slot_of_atom[c.rhs_column.atom]);
          rhs_ids.resize(n);
          for (size_t i = 0; i < n; ++i) {
            rhs_ids[i] = current[(wb + i) * static_cast<size_t>(stride) +
                                 rhs_slot];
          }
          rhs_col.GatherIds(base[c.rhs_column.atom]->rows(), rhs_ids.data(),
                            n, c.rhs_column.attr);
          FilterColumnColumn(lhs_col, c.op, rhs_col, &sel);
        } else {
          FilterColumnConst(lhs_col, c.op, c.rhs_const, &sel);
        }
        for (uint32_t i : sel) {
          const size_t row_base =
              (wb + static_cast<size_t>(i)) * static_cast<size_t>(stride);
          if (write != row_base) {
            std::copy(current.begin() + static_cast<long>(row_base),
                      current.begin() + static_cast<long>(row_base) + stride,
                      current.begin() + static_cast<long>(write));
          }
          write += static_cast<size_t>(stride);
        }
        if (stats != nullptr) ++stats->batches_evaluated;
        if (!meter.TickRows(static_cast<long long>(n))) return false;
      }
      current.resize(write);
      it = pending.erase(it);
    }
    return true;
  };

  // Start with the smallest input.
  int first = 0;
  for (int i = 1; i < num_atoms; ++i) {
    if (inputs[i].size() < inputs[first].size()) first = i;
  }
  current = std::move(inputs[first]);
  slot_of_atom[first] = 0;
  joined.insert(first);
  stride = 1;
  if (!apply_ready_conditions()) return ctx->status();

  while (static_cast<int>(joined.size()) < num_atoms) {
    // Prefer an unjoined atom connected by an equality condition; break
    // ties by input size (the latemat/optimizer heuristic, so all
    // strategies run the same join order).
    int next = -1;
    bool next_connected = false;
    for (int i = 0; i < num_atoms; ++i) {
      if (joined.contains(i)) continue;
      bool connected = false;
      for (const PendingCondition& pc : pending) {
        if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
        if (!pc.atoms.contains(i)) continue;
        bool others_joined =
            std::all_of(pc.atoms.begin(), pc.atoms.end(), [&](int a) {
              return a == i || joined.contains(a);
            });
        if (others_joined) {
          connected = true;
          break;
        }
      }
      if (next == -1 || (connected && !next_connected) ||
          (connected == next_connected &&
           inputs[i].size() < inputs[next].size())) {
        next = i;
        next_connected = connected;
      }
    }

    // Equality join keys between `current` and atom `next`: pairs of
    // (joined-side column ref, next-side attr).
    struct JoinKey {
      int cur_atom;
      int cur_attr;
      int next_attr;
    };
    std::vector<JoinKey> keys;
    for (const PendingCondition& pc : pending) {
      if (pc.cond.op != Comparator::kEq || !pc.cond.rhs_is_column) continue;
      const CalculusCondition& c = pc.cond;
      if (c.lhs.atom == next && joined.contains(c.rhs_column.atom)) {
        keys.push_back(JoinKey{c.rhs_column.atom, c.rhs_column.attr,
                               c.lhs.attr});
      } else if (c.rhs_column.atom == next && joined.contains(c.lhs.atom)) {
        keys.push_back(JoinKey{c.lhs.atom, c.lhs.attr, c.rhs_column.attr});
      }
    }

    const size_t row_count = current.size() / static_cast<size_t>(stride);
    const int new_stride = stride + 1;
    std::vector<uint32_t> joined_rows;
    if (!keys.empty()) {
      // Sorted-flat hash join over row ids, identical to latemat.cc:
      // keys are hashed in place over the referenced Values
      // (storage/key_view.h); probes are binary searches over one
      // contiguous (hash, base row) array.
      std::vector<std::pair<size_t, uint32_t>> table;  // (hash, base row)
      table.reserve(inputs[next].size());
      KeyView key;
      key.Reserve(keys.size());
      for (uint32_t id : inputs[next]) {
        const Tuple& row = base[next]->rows()[id];
        key.Clear();
        for (const JoinKey& k : keys) key.Add(row.at(k.next_attr));
        table.emplace_back(key.Hash(), id);
      }
      std::sort(table.begin(), table.end(),
                [](const std::pair<size_t, uint32_t>& a,
                   const std::pair<size_t, uint32_t>& b) {
                  return a.first < b.first;
                });
      if (stats != nullptr) {
        stats->join_key_allocs_avoided +=
            static_cast<long long>(inputs[next].size()) +
            static_cast<long long>(row_count);
      }
      ExecMeter meter(ctx);
      for (size_t r = 0; r < row_count; ++r) {
        const size_t row_base = r * static_cast<size_t>(stride);
        key.Clear();
        for (const JoinKey& k : keys) {
          key.Add(value_at(row_base, k.cur_atom, k.cur_attr));
        }
        const size_t h = key.Hash();
        auto [lo, hi] = std::equal_range(
            table.begin(), table.end(), std::pair<size_t, uint32_t>{h, 0},
            [](const std::pair<size_t, uint32_t>& a,
               const std::pair<size_t, uint32_t>& b) {
              return a.first < b.first;
            });
        for (auto it = lo; it != hi; ++it) {
          // Verify the candidate: strict component-wise Value equality.
          const Tuple& build_row = base[next]->rows()[it->second];
          bool match = true;
          for (size_t k = 0; k < keys.size(); ++k) {
            if (!(key.at(k) == build_row.at(keys[k].next_attr))) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          if (!meter.Tick(1, new_stride * 4)) return ctx->status();
          joined_rows.insert(joined_rows.end(),
                             current.begin() + static_cast<long>(row_base),
                             current.begin() + static_cast<long>(row_base) +
                                 stride);
          joined_rows.push_back(it->second);
        }
      }
    } else {
      // No connecting equality: cartesian product of index rows.
      joined_rows.reserve(row_count * inputs[next].size() *
                          static_cast<size_t>(new_stride));
      ExecMeter meter(ctx);
      for (size_t r = 0; r < row_count; ++r) {
        const size_t row_base = r * static_cast<size_t>(stride);
        for (uint32_t id : inputs[next]) {
          if (!meter.Tick(1, new_stride * 4)) return ctx->status();
          joined_rows.insert(joined_rows.end(),
                             current.begin() + static_cast<long>(row_base),
                             current.begin() + static_cast<long>(row_base) +
                                 stride);
          joined_rows.push_back(id);
        }
      }
    }
    if (stats != nullptr) {
      stats->intermediate_rows += static_cast<long long>(
          joined_rows.size() / static_cast<size_t>(new_stride));
    }
    current = std::move(joined_rows);
    slot_of_atom[next] = stride;
    stride = new_stride;
    joined.insert(next);
    if (!apply_ready_conditions()) return ctx->status();
  }

  // --- Phase 3: the single materialization point — final projection in
  // batch windows, governor ticked once per window, deduplicated by the
  // result relation.
  VIEWAUTH_ASSIGN_OR_RETURN(RelationSchema schema,
                            query.OutputSchema(result_name));
  Relation result(schema);
  const size_t row_count = current.size() / static_cast<size_t>(stride);
  const std::vector<ColumnRef>& targets = query.targets();
  const long long out_bytes =
      ApproxTupleBytes(static_cast<int>(targets.size()));
  ExecMeter meter(ctx);
  for (size_t wb = 0; wb < row_count; wb += kColumnBatchRows) {
    const size_t n = std::min<size_t>(kColumnBatchRows, row_count - wb);
    if (!meter.Tick(static_cast<long long>(n),
                    static_cast<long long>(n) * out_bytes)) {
      return ctx->status();
    }
    for (size_t r = wb; r < wb + n; ++r) {
      const size_t row_base = r * static_cast<size_t>(stride);
      std::vector<Value> values;
      values.reserve(targets.size());
      for (const ColumnRef& ref : targets) {
        values.push_back(value_at(row_base, ref.atom, ref.attr));
      }
      result.InsertUnchecked(Tuple(std::move(values)));
    }
    if (stats != nullptr) ++stats->batches_evaluated;
  }
  if (stats != nullptr) {
    stats->tuples_materialized += static_cast<long long>(row_count);
    stats->output_rows = result.size();
  }
  return result;
}

}  // namespace viewauth
