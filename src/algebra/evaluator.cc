#include "algebra/evaluator.h"

#include <vector>

#include "algebra/scan.h"

namespace viewauth {

namespace {

// Evaluates a node into a bag of tuples (dedup happens at relation
// construction: the operators here preserve set semantics level by level).
// Every operator charges the rows it produces against `ctx` (when
// governed) and aborts mid-loop once the context trips — a cartesian
// product stops within one check stride of its budget, not at its end.
Result<std::vector<Tuple>> EvalNode(const PlanNode& node,
                                    const DatabaseInstance& db,
                                    EvalStats* stats, ExecContext* ctx) {
  switch (node.kind) {
    case PlanNodeKind::kScan: {
      VIEWAUTH_ASSIGN_OR_RETURN(const Relation* rel,
                                db.GetRelation(node.relation));
      ExecMeter meter(ctx);
      if (!ChargeScannedRows(
              stats, &meter, static_cast<long long>(rel->size()),
              static_cast<long long>(rel->size()) *
                  ApproxTupleBytes(rel->schema().arity())) ||
          !meter.Flush()) {
        return ctx->status();
      }
      return rel->rows();
    }
    case PlanNodeKind::kProduct: {
      VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Tuple> left,
                                EvalNode(*node.left, db, stats, ctx));
      VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Tuple> right,
                                EvalNode(*node.right, db, stats, ctx));
      std::vector<Tuple> out;
      out.reserve(left.size() * right.size());
      const long long row_bytes =
          left.empty() || right.empty()
              ? 0
              : ApproxTupleBytes(left.front().arity() +
                                 right.front().arity());
      ExecMeter meter(ctx);
      for (const Tuple& l : left) {
        for (const Tuple& r : right) {
          if (!meter.Tick(1, row_bytes)) return ctx->status();
          out.push_back(Tuple::Concat(l, r));
        }
      }
      if (stats != nullptr) {
        stats->intermediate_rows += static_cast<long long>(out.size());
      }
      return out;
    }
    case PlanNodeKind::kSelection: {
      VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                                EvalNode(*node.child, db, stats, ctx));
      std::vector<Tuple> out;
      ExecMeter meter(ctx);
      for (Tuple& t : input) {
        if (!meter.TickRows(1)) return ctx->status();
        if (node.predicate.Matches(t)) out.push_back(std::move(t));
      }
      if (stats != nullptr) {
        stats->intermediate_rows += static_cast<long long>(out.size());
      }
      return out;
    }
    case PlanNodeKind::kProjection: {
      VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                                EvalNode(*node.child, db, stats, ctx));
      std::vector<Tuple> out;
      out.reserve(input.size());
      const long long row_bytes =
          ApproxTupleBytes(static_cast<int>(node.columns.size()));
      ExecMeter meter(ctx);
      for (const Tuple& t : input) {
        if (!meter.Tick(1, row_bytes)) return ctx->status();
        out.push_back(t.Project(node.columns));
      }
      if (stats != nullptr) {
        stats->intermediate_rows += static_cast<long long>(out.size());
      }
      return out;
    }
  }
  return Status::Internal("unhandled plan node kind");
}

}  // namespace

Result<Relation> EvaluatePlan(const PlanNode& plan, const DatabaseInstance& db,
                              const RelationSchema& output_schema,
                              EvalStats* stats, ExecContext* ctx) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                            EvalNode(plan, db, stats, ctx));
  Relation result(output_schema);
  for (Tuple& t : rows) {
    if (t.arity() != output_schema.arity()) {
      return Status::Internal("plan output arity " +
                              std::to_string(t.arity()) +
                              " does not match schema arity " +
                              std::to_string(output_schema.arity()));
    }
    result.InsertUnchecked(std::move(t));
  }
  if (stats != nullptr) stats->output_rows = result.size();
  return result;
}

Result<Relation> EvaluateCanonical(const ConjunctiveQuery& query,
                                   const DatabaseInstance& db,
                                   const std::string& result_name,
                                   EvalStats* stats, ExecContext* ctx) {
  std::unique_ptr<PlanNode> plan = BuildCanonicalPlan(query);
  VIEWAUTH_ASSIGN_OR_RETURN(RelationSchema schema,
                            query.OutputSchema(result_name));
  return EvaluatePlan(*plan, db, schema, stats, ctx);
}

}  // namespace viewauth
