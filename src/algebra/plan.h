// Relational algebra plans over the three conjunctive-family operators:
// product, selection, projection (paper Section 2: conjunctive calculus ==
// product/selection/projection algebra).
//
// The canonical plan shape follows the paper's Section 4 strategy for
// meta-relations — all products first, then selections, then projections —
// and the same shape is reusable on the data side. The optimizer
// (optimizer.h) implements the "different strategy" the paper suggests for
// actual relations.

#ifndef VIEWAUTH_ALGEBRA_PLAN_H_
#define VIEWAUTH_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "predicate/predicate.h"

namespace viewauth {

enum class PlanNodeKind { kScan, kProduct, kSelection, kProjection };

struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kScan;

  // kScan
  std::string relation;
  // kProduct
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  // kSelection / kProjection share `child`.
  std::unique_ptr<PlanNode> child;
  ConjunctivePredicate predicate;   // kSelection
  std::vector<int> columns;         // kProjection: flat indices to keep

  static std::unique_ptr<PlanNode> Scan(std::string relation_name);
  static std::unique_ptr<PlanNode> Product(std::unique_ptr<PlanNode> l,
                                           std::unique_ptr<PlanNode> r);
  static std::unique_ptr<PlanNode> Selection(std::unique_ptr<PlanNode> input,
                                             ConjunctivePredicate pred);
  static std::unique_ptr<PlanNode> Projection(std::unique_ptr<PlanNode> input,
                                              std::vector<int> cols);

  // Indented EXPLAIN-style rendering.
  std::string ToString(int indent = 0) const;
};

// Builds the canonical product->selection->projection plan of `query`.
// The product is left-deep over the query's atoms in atom order; the
// selection carries every condition (over flat product columns); the
// projection keeps the target columns in target order.
std::unique_ptr<PlanNode> BuildCanonicalPlan(const ConjunctiveQuery& query);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_PLAN_H_
