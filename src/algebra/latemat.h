// Late-materialized evaluation of conjunctive queries.
//
// EvaluateOptimized (optimizer.h) already pushes selections onto scans,
// orders joins greedily, and hash-joins on equality conditions — but it
// carries materialized Tuples through every stage: each base row is
// copied into the per-atom input, every hash-join build/probe row
// allocates a projected key Tuple, and every joined row is a
// Tuple::Concat. On the data-side hot path (the S plan of the paper's
// Figure 2 architecture) that per-tuple allocation storm is the dominant
// cost.
//
// This pipeline keeps the same plan shape (same pushdown, same greedy
// join order, same hash-join semantics) but represents every
// intermediate result as rows of base-relation *indices*: one uint32_t
// per joined atom. Column accesses resolve through an
// (atom, attr) -> base-row indirection; equality join keys are hashed in
// place over the referenced Values (storage/key_view.h) instead of
// allocating projected key Tuples; selections evaluate against the index
// rows. Tuples are materialized exactly once, at the final projection.
//
// The answer relation is bit-identical to EvaluateCanonical /
// EvaluateOptimized (the differential tier asserts this), which is what
// keeps the commutative diagram of the paper's Figure 2 safe: the mask
// derived from the canonical meta-plan applies to the answer regardless
// of how the answer was computed.

#ifndef VIEWAUTH_ALGEBRA_LATEMAT_H_
#define VIEWAUTH_ALGEBRA_LATEMAT_H_

#include <string>

#include "algebra/evaluator.h"
#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "storage/relation.h"

namespace viewauth {

// A non-null `ctx` governs the evaluation (deadline, row/byte budgets,
// cancellation): index rows are charged as joins emit them, and the run
// aborts mid-join with the context's status once it trips.
Result<Relation> EvaluateLateMaterialized(
    const ConjunctiveQuery& query, const DatabaseInstance& db,
    const std::string& result_name = "ANSWER", EvalStats* stats = nullptr,
    ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_LATEMAT_H_
