// Evaluators for relational algebra plans over a DatabaseInstance.
//
// EvaluatePlan executes a plan tree literally (materializing every
// intermediate result) — the canonical strategy the paper prescribes for
// meta-relations, also usable on data. EvaluateOptimized (optimizer.h)
// provides the pushed-down / hash-join strategy for the data side.

#ifndef VIEWAUTH_ALGEBRA_EVALUATOR_H_
#define VIEWAUTH_ALGEBRA_EVALUATOR_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "storage/relation.h"

namespace viewauth {

// Counters exposed for benchmarking and plan comparison.
//
// `rows_scanned` means "rows fetched from storage and examined" in every
// strategy: a full scan counts every row of the relation, an index probe
// or binary-searched range counts exactly the rows the index yields.
// This makes the counter comparable across canonical / optimized /
// late-materialized / vectorized runs of the same query (asserted by
// tests/latemat_test.cc and tests/vectorized_test.cc).
struct EvalStats {
  long long rows_scanned = 0;
  long long intermediate_rows = 0;  // rows produced by non-root operators
  long long output_rows = 0;
  // Tuple objects actually constructed (copies, concats, projections).
  // The late-materialized pipeline materializes only at the final
  // projection; the older strategies materialize every intermediate.
  long long tuples_materialized = 0;
  // Projected join-key Tuples that in-place key hashing did not allocate
  // (one per hash-join build row and one per probe row).
  long long join_key_allocs_avoided = 0;
  // Column batches processed by the vectorized plan: scan windows,
  // join-condition windows, and final-projection windows.
  long long batches_evaluated = 0;
  // Compiled-mask batch kernels applied by the fused mask path (one per
  // relevant mask tuple per answer batch).
  long long mask_batch_applies = 0;
};

// Cheap O(1) per-row byte estimate used by the execution governor's byte
// budget: container overhead plus the variant cells. String heap storage
// is deliberately excluded — the budget bounds row materialization, and a
// constant-time estimate keeps the governed hot path within the
// bench_governor overhead gate.
inline long long ApproxTupleBytes(int arity) {
  return 16 +
         static_cast<long long>(arity) * static_cast<long long>(sizeof(Value));
}

// Executes `plan` against `db`. The resulting relation has the schema
// `output_schema` (which must match the plan's output arity). `stats` may
// be null. A non-null `ctx` governs the evaluation: rows and bytes are
// charged as intermediates are produced, and the run aborts with the
// context's status once it trips.
Result<Relation> EvaluatePlan(const PlanNode& plan, const DatabaseInstance& db,
                              const RelationSchema& output_schema,
                              EvalStats* stats = nullptr,
                              ExecContext* ctx = nullptr);

// Convenience: canonical plan of `query`, evaluated; the output schema is
// derived from the query's targets and named `result_name`.
Result<Relation> EvaluateCanonical(const ConjunctiveQuery& query,
                                   const DatabaseInstance& db,
                                   const std::string& result_name = "ANSWER",
                                   EvalStats* stats = nullptr,
                                   ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_EVALUATOR_H_
