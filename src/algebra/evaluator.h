// Evaluators for relational algebra plans over a DatabaseInstance.
//
// EvaluatePlan executes a plan tree literally (materializing every
// intermediate result) — the canonical strategy the paper prescribes for
// meta-relations, also usable on data. EvaluateOptimized (optimizer.h)
// provides the pushed-down / hash-join strategy for the data side.

#ifndef VIEWAUTH_ALGEBRA_EVALUATOR_H_
#define VIEWAUTH_ALGEBRA_EVALUATOR_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/result.h"
#include "storage/relation.h"

namespace viewauth {

// Counters exposed for benchmarking and plan comparison.
struct EvalStats {
  long long rows_scanned = 0;
  long long intermediate_rows = 0;  // rows produced by non-root operators
  long long output_rows = 0;
};

// Executes `plan` against `db`. The resulting relation has the schema
// `output_schema` (which must match the plan's output arity). `stats` may
// be null.
Result<Relation> EvaluatePlan(const PlanNode& plan, const DatabaseInstance& db,
                              const RelationSchema& output_schema,
                              EvalStats* stats = nullptr);

// Convenience: canonical plan of `query`, evaluated; the output schema is
// derived from the query's targets and named `result_name`.
Result<Relation> EvaluateCanonical(const ConjunctiveQuery& query,
                                   const DatabaseInstance& db,
                                   const std::string& result_name = "ANSWER",
                                   EvalStats* stats = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_EVALUATOR_H_
