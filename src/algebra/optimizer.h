// Optimized evaluation of conjunctive queries: selection pushdown onto
// scans, greedy join ordering, and hash joins on equality conditions.
//
// The paper notes (end of Section 4.1) that the simple
// products-then-selections-then-projections strategy it prescribes for
// meta-relations "is not necessarily optimal. [...] For the actual
// relations, where optimality is essential, a different strategy may be
// implemented." This is that different strategy. It produces exactly the
// same answer relation as the canonical evaluator (tests assert this),
// which is what makes the commutative diagram of Figure 2 safe: the mask
// derived from the canonical meta-plan applies to the answer regardless
// of how the answer was computed.

#ifndef VIEWAUTH_ALGEBRA_OPTIMIZER_H_
#define VIEWAUTH_ALGEBRA_OPTIMIZER_H_

#include <string>

#include "algebra/evaluator.h"
#include "calculus/conjunctive_query.h"
#include "common/result.h"
#include "storage/relation.h"

namespace viewauth {

// A non-null `ctx` governs the evaluation (deadline, row/byte budgets,
// cancellation): rows are charged as scans and joins produce them, and
// the run aborts mid-join with the context's status once it trips.
Result<Relation> EvaluateOptimized(const ConjunctiveQuery& query,
                                   const DatabaseInstance& db,
                                   const std::string& result_name = "ANSWER",
                                   EvalStats* stats = nullptr,
                                   ExecContext* ctx = nullptr);

}  // namespace viewauth

#endif  // VIEWAUTH_ALGEBRA_OPTIMIZER_H_
