// A minimal injectable socket layer, the network sibling of file.h.
//
// The wire-protocol server (src/server) performs all network I/O through
// the Socket interface instead of raw file descriptors, so that tests can
// substitute a FaultInjectingSocket and exercise short reads, short
// writes, mid-frame disconnects, byte-level corruption and stalled peers
// deterministically. The real implementations are thin POSIX wrappers:
//
//   * PosixSocket    -- a connected stream socket (TCP or AF_UNIX),
//                       nonblocking underneath, every call carries an
//                       explicit timeout so a slow or dead peer can
//                       never wedge a server thread
//   * ListenSocket   -- bind/listen/accept, TCP loopback or a unix-
//                       domain path (port 0 picks an ephemeral port)
//
// Timeout discipline: every Read/Write/Accept takes a timeout in
// milliseconds (-1 blocks indefinitely) and returns DeadlineExceeded
// when it elapses. A peer that vanished mid-operation yields
// Unavailable; a clean end-of-stream yields a 0-byte read. Short reads
// and writes are part of the contract — callers that need exact counts
// use ReadFully/WriteFully, which keep an overall deadline across the
// partial transfers.

#ifndef VIEWAUTH_COMMON_SOCKET_H_
#define VIEWAUTH_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace viewauth {

// A connected bidirectional byte stream. One thread may read while
// another writes; Shutdown() may be called from any thread to wake both
// (the eviction path). Everything else is single-threaded per direction.
class Socket {
 public:
  virtual ~Socket() = default;

  // Reads up to `max` bytes into `buf`. Returns the count actually read
  // (short reads allowed), 0 on a clean end-of-stream. Blocks for at
  // most `timeout_ms` (-1 = indefinitely); DeadlineExceeded on timeout,
  // Unavailable when the peer reset the connection.
  virtual Result<size_t> Read(char* buf, size_t max, long long timeout_ms) = 0;

  // Writes some prefix of `data`, returning how many bytes were
  // accepted (short writes allowed, always >= 1 on success).
  // DeadlineExceeded when the peer's receive window stayed full for
  // `timeout_ms` — the slow-client signal the server evicts on.
  virtual Result<size_t> Write(std::string_view data,
                               long long timeout_ms) = 0;

  // Disables further sends and receives and wakes any thread currently
  // blocked in Read/Write on this socket. Safe to call from a thread
  // other than the I/O threads; safe to call more than once.
  virtual Status Shutdown() = 0;

  // Releases the descriptor. Only the owning thread may Close, and only
  // after no other thread can touch the socket.
  virtual Status Close() = 0;
};

// Reads exactly `n` bytes within an overall `timeout_ms` budget.
// A clean end-of-stream before any byte was read returns NotFound
// ("connection closed"); end-of-stream after a partial read returns
// Unavailable (the mid-frame disconnect shape).
Status ReadFully(Socket& socket, char* buf, size_t n, long long timeout_ms);

// Writes all of `data` within an overall `timeout_ms` budget.
Status WriteFully(Socket& socket, std::string_view data,
                  long long timeout_ms);

// A bound, listening server socket.
class ListenSocket {
 public:
  virtual ~ListenSocket() = default;

  // TCP on `host` (e.g. "127.0.0.1"); port 0 binds an ephemeral port,
  // readable afterwards via port().
  static Result<std::unique_ptr<ListenSocket>> ListenTcp(
      const std::string& host, int port);

  // Unix-domain stream socket at `path` (an existing socket file at the
  // path is removed first).
  static Result<std::unique_ptr<ListenSocket>> ListenUnix(
      const std::string& path);

  // Accepts one connection; DeadlineExceeded after `timeout_ms` with no
  // arrival (the accept loop's polling slice).
  virtual Result<std::unique_ptr<Socket>> Accept(long long timeout_ms) = 0;

  // The bound TCP port (0 for unix sockets).
  virtual int port() const = 0;

  virtual Status Close() = 0;
};

// Client-side connect; both honor `timeout_ms` for the handshake.
Result<std::unique_ptr<Socket>> ConnectTcp(const std::string& host, int port,
                                           long long timeout_ms);
Result<std::unique_ptr<Socket>> ConnectUnix(const std::string& path,
                                            long long timeout_ms);

// A connected in-process socket pair (AF_UNIX), for tests that want a
// peer without a listener.
Result<std::pair<std::unique_ptr<Socket>, std::unique_ptr<Socket>>>
MakeSocketPair();

// Shared fault schedule for FaultInjectingSocket, in the idiom of
// FaultInjectingFileSystem: every control and counter lives on the plan
// object (guarded by one mutex) so a single plan can script a whole
// connection's worth of I/O, and tests can read the counters afterwards.
// Offsets are absolute positions in the direction's byte stream.
class SocketFaultPlan {
 public:
  // Caps every read/write to at most this many bytes, forcing the peer
  // to observe short reads / perform short writes. 0 disables the cap.
  void set_max_read_chunk(size_t n);
  void set_max_write_chunk(size_t n);

  // After `n` bytes have passed in the given direction, the connection
  // behaves as if the peer died: writes fail with Unavailable and reads
  // report a reset. Negative disables. The cut can land mid-frame —
  // that is the point.
  void set_fail_write_after_bytes(int64_t n);
  void set_fail_read_after_bytes(int64_t n);

  // XORs the byte at absolute write-stream offset `offset` with `mask`
  // as it passes through — byte-level frame corruption in flight.
  // Negative offset disables.
  void set_corrupt_write_byte(int64_t offset, uint8_t mask);

  // Sleeps this long before every read — a stalled peer that trickles
  // its bytes out slowly without ever disconnecting.
  void set_read_stall_ms(long long ms);

  uint64_t bytes_read() const;
  uint64_t bytes_written() const;
  uint64_t faults_injected() const;

 private:
  friend class FaultInjectingSocket;

  mutable std::mutex mu_;
  size_t max_read_chunk_ = 0;
  size_t max_write_chunk_ = 0;
  int64_t fail_write_after_bytes_ = -1;
  int64_t fail_read_after_bytes_ = -1;
  int64_t corrupt_write_offset_ = -1;
  uint8_t corrupt_write_mask_ = 0;
  long long read_stall_ms_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t faults_injected_ = 0;
};

// Forwards to a base socket while applying the plan's faults. Wraps
// either side of a connection: wrapping a test client corrupts/chops
// what the server receives; wrapping an accepted socket (via the
// server's socket hook) does the same for replies.
class FaultInjectingSocket : public Socket {
 public:
  FaultInjectingSocket(std::unique_ptr<Socket> base,
                       std::shared_ptr<SocketFaultPlan> plan)
      : base_(std::move(base)), plan_(std::move(plan)) {}

  Result<size_t> Read(char* buf, size_t max, long long timeout_ms) override;
  Result<size_t> Write(std::string_view data, long long timeout_ms) override;
  Status Shutdown() override { return base_->Shutdown(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<Socket> base_;
  std::shared_ptr<SocketFaultPlan> plan_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_SOCKET_H_
