#include "common/exec_context.h"

namespace viewauth {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point DeadlineFrom(const ExecLimits& limits) {
  if (limits.deadline_ms <= 0) return SteadyClock::time_point::max();
  return SteadyClock::now() + std::chrono::milliseconds(limits.deadline_ms);
}

}  // namespace

ExecContext::ExecContext(const ExecLimits& limits)
    : governed_(limits.any()),
      has_deadline_(limits.deadline_ms > 0),
      deadline_(DeadlineFrom(limits)),
      deadline_ms_(limits.deadline_ms),
      max_rows_(limits.max_rows),
      max_bytes_(limits.max_bytes) {}

bool ExecContext::TickSlow(long long rows, long long bytes) {
  if (rows > 0 && max_rows_ > 0) {
    const long long total =
        rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
    if (total > max_rows_) {
      Trip(StatusCode::kResourceExhausted,
           "row budget of " + std::to_string(max_rows_) +
               " exhausted after processing " + std::to_string(total) +
               " rows");
      return false;
    }
  }
  if (bytes > 0 && max_bytes_ > 0) {
    const long long total =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (total > max_bytes_) {
      Trip(StatusCode::kResourceExhausted,
           "byte budget of " + std::to_string(max_bytes_) +
               " exhausted after materializing ~" + std::to_string(total) +
               " bytes");
      return false;
    }
  }
  return Probe(rows > 0 ? rows : 1);
}

bool ExecContext::Probe(long long weight) {
  if (until_check_.fetch_sub(weight, std::memory_order_relaxed) - weight >
      0) {
    return true;
  }
  until_check_.store(kCheckStride, std::memory_order_relaxed);
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (has_deadline_ && SteadyClock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded,
         "statement ran past its " + std::to_string(deadline_ms_) +
             " ms deadline");
    return false;
  }
  return !tripped_.load(std::memory_order_relaxed);
}

bool ExecContext::CheckNow() {
  if (tripped_.load(std::memory_order_relaxed)) return false;
  if (!has_deadline_) return true;
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (SteadyClock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded,
         "statement ran past its " + std::to_string(deadline_ms_) +
             " ms deadline");
    return false;
  }
  return true;
}

Status ExecContext::status() const {
  if (!tripped_.load(std::memory_order_acquire)) return Status::OK();
  return Status(trip_code_, trip_message_);
}

void ExecContext::Cancel(std::string reason) {
  Trip(StatusCode::kCancelled, std::move(reason));
}

void ExecContext::Trip(StatusCode code, std::string message) {
  if (trip_claimed_.exchange(true, std::memory_order_acq_rel)) return;
  trip_code_ = code;
  trip_message_ = std::move(message);
  tripped_.store(true, std::memory_order_release);
}

}  // namespace viewauth
