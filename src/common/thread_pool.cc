#include "common/thread_pool.h"

#include <algorithm>

namespace viewauth {

ThreadPool::ThreadPool(int threads, size_t max_queue)
    : max_queue_(max_queue) {
  workers_.reserve(static_cast<size_t>(std::max(1, threads)));
  for (int i = 0; i < std::max(1, threads); ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  space_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (max_queue_ > 0) space_.notify_one();
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(
      [] {
        unsigned hw = std::thread::hardware_concurrency();
        return static_cast<int>(std::clamp(hw, 2u, 8u));
      }(),
      /*max_queue=*/256);
  return pool;
}

}  // namespace viewauth
