// A minimal injectable file layer, in the LevelDB/RocksDB Env idiom.
//
// Durable components (the statement log) perform all I/O through the
// FileSystem interface instead of <fstream>, so that tests can substitute
// a FaultInjectingFileSystem and exercise short writes, fsync failures,
// and hard crash cut-offs deterministically. The real implementation
// (FileSystem::Default()) is a thin POSIX wrapper that supports the three
// primitives crash-safety is built from:
//
//   * append + fsync        -- make a record durable before acking it
//   * atomic rename         -- replace a file with a fully written copy
//   * directory fsync       -- make the rename itself durable
//
// The fault-injecting wrapper models a process/machine crash as a global
// budget of appended bytes: once the budget is exhausted the write is
// truncated mid-record and every subsequent operation fails, exactly as
// if the process had died. Reopening the same path with the real
// filesystem then simulates the post-crash restart.

#ifndef VIEWAUTH_COMMON_FILE_H_
#define VIEWAUTH_COMMON_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"

namespace viewauth {

// A sequentially writable file. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  // Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  // Pushes buffered data to the OS (no-op for unbuffered implementations).
  virtual Status Flush() = 0;

  // Makes previously appended data durable (fsync).
  virtual Status Sync() = 0;

  // Closes the file; further operations are invalid.
  virtual Status Close() = 0;
};

enum class WriteMode {
  kAppend,    // open at end, create if absent
  kTruncate,  // discard existing contents, create if absent
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // The process-wide POSIX implementation.
  static FileSystem* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;

  // Whole-file read; NotFound when the file does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  // Atomically replaces `to` with `from`, then fsyncs the containing
  // directory so the replacement survives a crash.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  // Truncates the file at `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  // Fsyncs the directory containing `path`, making a newly created
  // file's directory entry durable (a freshly created file that is only
  // fsynced itself can vanish with its directory entry on a crash).
  virtual Status SyncDirectoryOf(const std::string& path) = 0;
};

// Test double that forwards to a base filesystem while injecting faults
// on demand. All controls and counters live on the filesystem object and
// are shared by every file it opens, so a byte budget spans an entire
// multi-file operation (e.g. log appends followed by a compaction dump).
// Thread-safe: the concurrent torture tiers drive one instance from
// several mutator threads at once, so every control and counter is
// guarded by a single mutex (which also serializes base-file I/O,
// keeping the byte budget's torn-write point deterministic per run).
class FaultInjectingFileSystem : public FileSystem {
 public:
  explicit FaultInjectingFileSystem(FileSystem* base) : base_(base) {}

  // Hard crash after exactly `n` more appended bytes: the append that
  // crosses the budget writes only the first remaining bytes (a torn
  // write), then the filesystem enters the crashed state where every
  // operation — reads, writes, syncs, renames — fails. Negative
  // disables.
  void set_crash_after_bytes(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_after_bytes_ = n;
  }

  // One-shot transient faults (not a crash: later operations succeed).
  void FailNextSync() { ScheduleSyncFailure(1); }
  void FailNextRename() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_next_rename_ = true;
  }

  // Fails the `nth` future sync (1 = the very next) once with an
  // injected EIO-style error; earlier and later syncs succeed and the
  // filesystem stays up — unlike the byte budget, this models a device
  // that reports one failed flush, not a dead machine. File fsyncs and
  // directory fsyncs draw from the same schedule, mirroring
  // sync_count(). A failed sync does not count toward sync_count().
  void ScheduleSyncFailure(uint64_t nth) {
    std::lock_guard<std::mutex> lock(mu_);
    syncs_until_failure_ = static_cast<int64_t>(nth) - 1;
  }

  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }
  uint64_t sync_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_count_;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDirectoryOf(const std::string& path) override;

 private:
  friend class FaultInjectingFile;

  Status CrashedStatus() const;
  // Consumes one sync from the failure schedule. Returns the injected
  // error when this sync is the scheduled casualty, OK otherwise.
  // Requires mu_ held.
  Status TakeSyncFaultLocked();

  FileSystem* base_;
  mutable std::mutex mu_;
  int64_t crash_after_bytes_ = -1;
  // -1 = disarmed; 0 = the next sync fails; k > 0 = k syncs succeed
  // first.
  int64_t syncs_until_failure_ = -1;
  bool fail_next_rename_ = false;
  bool crashed_ = false;
  uint64_t bytes_written_ = 0;
  uint64_t sync_count_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_FILE_H_
