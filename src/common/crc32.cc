#include "common/crc32.h"

#include <array>

namespace viewauth {

namespace {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace viewauth
