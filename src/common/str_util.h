// Small string helpers shared across viewauth modules.

#ifndef VIEWAUTH_COMMON_STR_UTIL_H_
#define VIEWAUTH_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace viewauth {

// Joins the elements of `parts` with `sep`. Elements must be streamable.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    out << part;
    first = false;
  }
  return out.str();
}

// Splits `input` on `delim`, trimming nothing. Empty segments are kept.
std::vector<std::string> Split(std::string_view input, char delim);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// ASCII case conversions (locale-independent).
std::string ToUpperAscii(std::string_view input);
std::string ToLowerAscii(std::string_view input);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Formats an int64 with thousands separators, e.g. 250000 -> "250,000".
// Used by the table printer to mirror the paper's figures.
std::string FormatWithCommas(long long value);

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_STR_UTIL_H_
