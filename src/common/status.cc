#include "common/status.h"

namespace viewauth {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kPermissionDenied:
      return "Permission denied";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kSchemaMismatch:
      return "Schema mismatch";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace viewauth
