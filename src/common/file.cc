#include "common/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace viewauth {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

// The directory that contains `path` ("." when the path has no slash).
std::string DirectoryOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("open directory '" + dir + "'"));
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::Internal(ErrnoMessage("fsync directory '" + dir + "'"));
  }
  ::close(fd);
  return status;
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return Status::Internal("append to closed file '" + path_ + "'");
    }
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(ErrnoMessage("write '" + path_ + "'"));
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // write() is unbuffered

  Status Sync() override {
    if (fd_ < 0) {
      return Status::Internal("fsync of closed file '" + path_ + "'");
    }
    if (::fsync(fd_) != 0) {
      return Status::Internal(ErrnoMessage("fsync '" + path_ + "'"));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal(ErrnoMessage("close '" + path_ + "'"));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    int flags = O_WRONLY | O_CREAT |
                (mode == WriteMode::kAppend ? O_APPEND : O_TRUNC);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::Internal(ErrnoMessage("open '" + path + "' for write"));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("file '" + path + "' does not exist");
      }
      return Status::Internal(ErrnoMessage("open '" + path + "' for read"));
    }
    std::string contents;
    char buffer[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status =
            Status::Internal(ErrnoMessage("read '" + path + "'"));
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      contents.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return contents;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(
          ErrnoMessage("rename '" + from + "' to '" + to + "'"));
    }
    return SyncDirectory(DirectoryOf(to));
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("file '" + path + "' does not exist");
      }
      return Status::Internal(ErrnoMessage("unlink '" + path + "'"));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Internal(ErrnoMessage("truncate '" + path + "'"));
    }
    return Status::OK();
  }

  Status SyncDirectoryOf(const std::string& path) override {
    return SyncDirectory(DirectoryOf(path));
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem* const fs = new PosixFileSystem();
  return fs;
}

// Applies the shared crash budget to one file's appends. At namespace
// scope (not anonymous) so the friend declaration in file.h applies.
// Every operation runs under the filesystem's mutex: the group-commit
// torture tiers append from a leader thread while other threads probe
// counters and Compact stages a replacement file.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base,
                     FaultInjectingFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return fs_->CrashedStatus();
    if (fs_->crash_after_bytes_ >= 0) {
      uint64_t budget = static_cast<uint64_t>(fs_->crash_after_bytes_);
      uint64_t remaining =
          budget > fs_->bytes_written_ ? budget - fs_->bytes_written_ : 0;
      if (data.size() > remaining) {
        // Torn write: the prefix reaches the disk, then the "machine"
        // dies.
        Status ignored = base_->Append(data.substr(0, remaining));
        (void)ignored;
        fs_->bytes_written_ += remaining;
        fs_->crashed_ = true;
        return Status::Internal(
            "injected crash: write torn after " +
            std::to_string(remaining) + " of " +
            std::to_string(data.size()) + " bytes");
      }
    }
    VIEWAUTH_RETURN_NOT_OK(base_->Append(data));
    fs_->bytes_written_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return fs_->CrashedStatus();
    return base_->Flush();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return fs_->CrashedStatus();
    VIEWAUTH_RETURN_NOT_OK(fs_->TakeSyncFaultLocked());
    ++fs_->sync_count_;
    return base_->Sync();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFileSystem* fs_;
};

Status FaultInjectingFileSystem::CrashedStatus() const {
  return Status::Internal("injected crash: filesystem is down");
}

Status FaultInjectingFileSystem::TakeSyncFaultLocked() {
  if (syncs_until_failure_ < 0) return Status::OK();
  if (syncs_until_failure_ == 0) {
    syncs_until_failure_ = -1;
    return Status::Internal("injected fsync failure");
  }
  --syncs_until_failure_;
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFileSystem::NewWritableFile(
    const std::string& path, WriteMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
  }
  VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                            base_->NewWritableFile(path, mode));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingFile>(std::move(base), this));
}

Result<std::string> FaultInjectingFileSystem::ReadFileToString(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
  }
  return base_->ReadFileToString(path);
}

bool FaultInjectingFileSystem::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
    if (fail_next_rename_) {
      fail_next_rename_ = false;
      return Status::Internal("injected rename failure");
    }
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
  }
  return base_->RemoveFile(path);
}

Status FaultInjectingFileSystem::TruncateFile(const std::string& path,
                                              uint64_t size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectingFileSystem::SyncDirectoryOf(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus();
    VIEWAUTH_RETURN_NOT_OK(TakeSyncFaultLocked());
    ++sync_count_;
  }
  return base_->SyncDirectoryOf(path);
}

}  // namespace viewauth
