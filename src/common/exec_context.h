// ExecContext: the per-statement execution governor.
//
// A retrieve's evaluation — data plan, meta plan, and mask application
// alike — periodically ticks the context with the rows and (approximate)
// bytes it produces. The context trips when the statement runs past its
// absolute deadline, exhausts a row or byte budget, or is cooperatively
// cancelled from another thread; once tripped it stays tripped, and every
// subsequent tick returns false so loops unwind promptly. Callers then
// return `status()` — DeadlineExceeded, ResourceExhausted or Cancelled.
//
// The paper's Figure 2 commutes only when both sides are governed: the S
// data plan and the S' meta plan share one context per retrieve, so a
// budget cannot be bypassed by shifting cost from one side to the other.
//
// Cost model: hot loops tick a per-loop ExecMeter (below) — plain adds
// and a compare — which charges this context in batches, so the atomic
// ticks here run a few hundred times less often than the loop body; the
// wall clock is probed only once per `kCheckStride` charged row-ticks.
// An ungoverned context (no limits set) short-circuits to a single
// relaxed load per direct tick. Together these keep the governed and
// ungoverned paths within the bench_governor 2% overhead gate.
//
// Thread safety: a context is shared by the session thread and any pool
// workers evaluating on its behalf. All counters are atomics; the trip
// status is claimed once (first cause wins) and published with
// release/acquire ordering.

#ifndef VIEWAUTH_COMMON_EXEC_CONTEXT_H_
#define VIEWAUTH_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <string>

#include "common/status.h"

namespace viewauth {

// Per-statement limits; 0 means unlimited. Copied into the context at
// construction (the deadline is anchored to "now" at that moment).
struct ExecLimits {
  long long deadline_ms = 0;
  long long max_rows = 0;
  long long max_bytes = 0;

  bool any() const {
    return deadline_ms > 0 || max_rows > 0 || max_bytes > 0;
  }
};

// Composes two limit sets field by field, strictest wins: where both
// sides set a budget the smaller applies; where only one does, that one;
// 0 (unlimited) survives only when neither side sets the field. This is
// how a per-request deadline from the wire protocol composes with the
// engine's own AuthorizationOptions limits.
inline ExecLimits TightenLimits(const ExecLimits& a, const ExecLimits& b) {
  auto strictest = [](long long x, long long y) {
    if (x <= 0) return y;
    if (y <= 0) return x;
    return x < y ? x : y;
  };
  ExecLimits out;
  out.deadline_ms = strictest(a.deadline_ms, b.deadline_ms);
  out.max_rows = strictest(a.max_rows, b.max_rows);
  out.max_bytes = strictest(a.max_bytes, b.max_bytes);
  return out;
}

class ExecContext {
 public:
  // How many row-ticks elapse between wall-clock probes. Sized so that
  // even the vectorized plan — whose per-row cost is a fraction of a
  // nanosecond, making a clock read per 1024-row batch a measurable few
  // percent — stays within the governance-overhead budget, while the
  // slowest tuple-at-a-time plans still notice a deadline within a few
  // milliseconds.
  static constexpr long long kCheckStride = 8192;

  ExecContext() : ExecContext(ExecLimits{}) {}
  explicit ExecContext(const ExecLimits& limits);

  // Shared by reference across threads; never copied or moved.
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // Charges `rows` produced/scanned rows and `bytes` of materialized
  // output against the budgets. Returns false once the context has
  // tripped; the caller should stop producing and return `status()`.
  bool Tick(long long rows, long long bytes) {
    if (tripped_.load(std::memory_order_relaxed)) return false;
    if (!governed_) return true;
    return TickSlow(rows, bytes);
  }
  bool TickRows(long long rows = 1) { return Tick(rows, 0); }
  bool TickBytes(long long bytes) { return Tick(0, bytes); }

  // Unconditional probe (deadline + trip flag), independent of the
  // amortization stride. For loop headers that do heavy per-iteration
  // work without producing rows.
  bool CheckNow();

  bool ok() const { return !tripped_.load(std::memory_order_relaxed); }

  // OK until tripped; afterwards the latched abort status (the first
  // cause to trip wins, even under concurrent ticks).
  Status status() const;

  // Cooperative cancellation, callable from any thread.
  void Cancel(std::string reason = "query cancelled");

  // Observability: wall-clock probes performed (the governor_checks
  // counter), and totals charged so far.
  long long checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  long long rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  long long bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  bool TickSlow(long long rows, long long bytes);
  // Decrements the probe countdown by `weight`; on expiry checks the
  // deadline. Returns false if tripped.
  bool Probe(long long weight);
  // Latches the abort status. Only the first caller's code/message are
  // published; later causes are ignored.
  void Trip(StatusCode code, std::string message);

  const bool governed_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;
  const long long deadline_ms_;
  const long long max_rows_;
  const long long max_bytes_;

  std::atomic<long long> rows_{0};
  std::atomic<long long> bytes_{0};
  std::atomic<long long> until_check_{kCheckStride};
  std::atomic<long long> checks_{0};

  // trip_code_/trip_message_ are written by the thread that wins
  // trip_claimed_, then published by the release store to tripped_;
  // status() reads them only after an acquire load of tripped_.
  std::atomic<bool> trip_claimed_{false};
  std::atomic<bool> tripped_{false};
  StatusCode trip_code_ = StatusCode::kOk;
  std::string trip_message_;
};

// A per-loop, single-threaded accumulator in front of a shared (atomic)
// ExecContext. Hot loops tick the meter — two plain adds and a compare —
// and the meter charges the context in batches of kFlushRows rows (or
// kFlushBytes bytes), so the atomic slow path runs a few hundred times
// less often than the loop body. The destructor flushes the remainder,
// keeping the context's charged totals exact; a trip caused by that
// final flush is still caught by the caller's post-loop `ctx->ok()` /
// end-of-retrieve check. Budgets are therefore enforced with at most
// kFlushRows rows (kFlushBytes bytes) of slack, which is also the new
// upper bound on cancellation latency in rows.
//
// Each meter belongs to exactly one loop on one thread; concurrent
// loops each construct their own meter over the shared context.
class ExecMeter {
 public:
  static constexpr long long kFlushRows = 256;
  static constexpr long long kFlushBytes = 1 << 15;

  explicit ExecMeter(ExecContext* ctx) : ctx_(ctx) {}
  ~ExecMeter() {
    if (ctx_ != nullptr && (rows_ != 0 || bytes_ != 0)) {
      ctx_->Tick(rows_, bytes_);
    }
  }

  ExecMeter(const ExecMeter&) = delete;
  ExecMeter& operator=(const ExecMeter&) = delete;

  // Returns false once the underlying context has tripped (checked at
  // flush granularity); the loop should stop and return ctx->status().
  // Always true for a null context, so call sites need no null guard.
  bool Tick(long long rows, long long bytes) {
    if (ctx_ == nullptr) return true;
    rows_ += rows;
    bytes_ += bytes;
    if (rows_ < kFlushRows && bytes_ < kFlushBytes) return true;
    return Flush();
  }
  bool TickRows(long long rows = 1) { return Tick(rows, 0); }

  // Charges everything accumulated so far; returns false if the context
  // is (or becomes) tripped.
  bool Flush() {
    if (ctx_ == nullptr) return true;
    const long long rows = rows_;
    const long long bytes = bytes_;
    rows_ = 0;
    bytes_ = 0;
    if (rows == 0 && bytes == 0) return ctx_->ok();
    return ctx_->Tick(rows, bytes);
  }

 private:
  ExecContext* const ctx_;
  long long rows_ = 0;
  long long bytes_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_EXEC_CONTEXT_H_
