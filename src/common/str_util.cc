#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace viewauth {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToUpperAscii(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatWithCommas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace viewauth
