#include "common/logging.h"

namespace viewauth {
namespace internal_logging {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  enabled_ = static_cast<int>(level) >= static_cast<int>(g_log_level);
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::LogMessage(const char* file, int line, bool fatal)
    : level_(LogLevel::kError), fatal_(fatal) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (enabled_ || fatal_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace viewauth
