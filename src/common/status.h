// Status: the error-reporting type used throughout viewauth.
//
// viewauth follows the Arrow/RocksDB idiom of returning a Status (or a
// Result<T>, see result.h) from every operation that can fail, instead of
// throwing exceptions. A Status is cheap to copy in the OK case (a single
// null pointer) and carries a code plus a human-readable message otherwise.

#ifndef VIEWAUTH_COMMON_STATUS_H_
#define VIEWAUTH_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace viewauth {

// Broad classification of failures. Codes are coarse by design: callers
// branch on the code, humans read the message.
enum class StatusCode {
  kOk = 0,
  // The request is malformed: bad syntax, unknown names, arity mismatch.
  kInvalidArgument = 1,
  // A referenced object (relation, view, user, attribute) does not exist.
  kNotFound = 2,
  // An object with the same name already exists.
  kAlreadyExists = 3,
  // The user lacks permission for the requested access.
  kPermissionDenied = 4,
  // The operation is valid but not supported by this implementation.
  kNotImplemented = 5,
  // An internal invariant was violated; indicates a bug in viewauth.
  kInternal = 6,
  // Schema-level inconsistency (type mismatch, key violation).
  kSchemaMismatch = 7,
  // The component is temporarily unable to serve the request (e.g. a
  // durable engine whose log failed has entered read-only degraded
  // mode, or admission control shed the statement under overload).
  kUnavailable = 8,
  // The statement ran past its deadline and was aborted mid-evaluation.
  // Retrying with a larger (or no) deadline may succeed.
  kDeadlineExceeded = 9,
  // A per-statement resource budget (rows, bytes) was exhausted.
  kResourceExhausted = 10,
  // The statement was cooperatively cancelled from another thread.
  kCancelled = 11,
};

// Returns a stable human-readable name, e.g. "Invalid argument".
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SchemaMismatch(std::string msg) {
    return Status(StatusCode::kSchemaMismatch, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  // Empty for OK statuses.
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return state_ == nullptr ? *kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsSchemaMismatch() const {
    return code() == StatusCode::kSchemaMismatch;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  // True for the three codes an ExecContext-governed abort produces;
  // such failures are clean (no state mutated, nothing cached) and the
  // statement may simply be retried with different limits.
  bool IsGovernedAbort() const {
    return IsDeadlineExceeded() || IsResourceExhausted() || IsCancelled();
  }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK. Shared so that Status is cheap to copy.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace viewauth

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define VIEWAUTH_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::viewauth::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // VIEWAUTH_COMMON_STATUS_H_
