// A small fixed-size thread pool used by the authorizer's parallel
// meta-evaluation: the S' meta-plan and the S data plan run concurrently,
// and per-relation meta pruning/self-join preparation fans out across
// workers.
//
// Tasks submitted here must never block on other pool tasks' futures —
// only caller (session) threads wait, so the pool cannot deadlock even
// with a single worker: queued tasks always drain in submission order.
//
// The task queue is optionally bounded (`max_queue`): a Submit that would
// exceed the bound blocks the *caller* until a worker drains a slot.
// Caller-blocks is safe under the invariant above — only session threads
// submit, and workers never do — and it converts unbounded memory growth
// under overload into backpressure. `queue_depth()`/`Saturated()` let
// producers (the authorizer's fan-out) probe the backlog and fall back to
// inline serial evaluation instead of piling on more tasks.

#ifndef VIEWAUTH_COMMON_THREAD_POOL_H_
#define VIEWAUTH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace viewauth {

class ThreadPool {
 public:
  // `max_queue` bounds the number of queued (not yet running) tasks;
  // 0 keeps the historical unbounded behaviour.
  explicit ThreadPool(int threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Tasks queued and not yet picked up by a worker. A sampled value —
  // advisory only, for saturation probes.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  // True when the backlog has reached the pool's own width: every worker
  // already has a task waiting behind its current one, so a new submit
  // gains nothing over running inline.
  bool Saturated() const {
    return queue_depth() >= static_cast<size_t>(size());
  }

  // Schedules `fn` for execution and returns the future of its result.
  // Blocks the caller while a bounded queue is full.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (max_queue_ > 0) {
        space_.wait(lock,
                    [this] { return stop_ || queue_.size() < max_queue_; });
      }
      queue_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void Worker();

  std::vector<std::thread> workers_;
  const size_t max_queue_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable space_;
  bool stop_ = false;
};

// The process-wide pool shared by every engine and authorizer. Sized to
// the hardware (between 2 and 8 workers) with a generous bounded queue;
// constructed on first use and alive for the remainder of the process.
ThreadPool& GlobalThreadPool();

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_THREAD_POOL_H_
