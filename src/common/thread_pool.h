// A small fixed-size thread pool used by the authorizer's parallel
// meta-evaluation: the S' meta-plan and the S data plan run concurrently,
// and per-relation meta pruning/self-join preparation fans out across
// workers.
//
// Tasks submitted here must never block on other pool tasks' futures —
// only caller (session) threads wait, so the pool cannot deadlock even
// with a single worker: queued tasks always drain in submission order.

#ifndef VIEWAUTH_COMMON_THREAD_POOL_H_
#define VIEWAUTH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace viewauth {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Schedules `fn` for execution and returns the future of its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void Worker();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

// The process-wide pool shared by every engine and authorizer. Sized to
// the hardware (between 2 and 8 workers); constructed on first use and
// alive for the remainder of the process.
ThreadPool& GlobalThreadPool();

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_THREAD_POOL_H_
