// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320): the checksum used
// to frame statement-log records. Both a one-shot helper and an
// incremental form are provided; feeding a buffer in pieces through
// Crc32Update yields exactly the one-shot value.

#ifndef VIEWAUTH_COMMON_CRC32_H_
#define VIEWAUTH_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace viewauth {

// Extends a running checksum with `data`. Start from kCrc32Init and the
// final value is the standard CRC32 of the concatenated input.
inline constexpr uint32_t kCrc32Init = 0;
uint32_t Crc32Update(uint32_t crc, std::string_view data);

// One-shot CRC32 of `data` ("123456789" -> 0xCBF43926).
inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(kCrc32Init, data);
}

}  // namespace viewauth

#endif  // VIEWAUTH_COMMON_CRC32_H_
