// Result<T>: a value-or-Status type, the viewauth analogue of
// arrow::Result. Functions that produce a value but can fail return
// Result<T>; callers either check ok() explicitly or use
// VIEWAUTH_ASSIGN_OR_RETURN to propagate errors.

#ifndef VIEWAUTH_COMMON_RESULT_H_
#define VIEWAUTH_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace viewauth {

template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return value;` and `return status;` both
  // work inside functions returning Result<T>.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!this->status().ok() && "Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Returns the carried status; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  // Value access. Must only be called when ok().
  const T& value() const& {
    assert(ok() && "Result::value() called on error Result");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "Result::value() called on error Result");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "Result::value() called on error Result");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `alternative` if this Result holds an error.
  T ValueOr(T alternative) const& { return ok() ? value() : alternative; }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace viewauth

#define VIEWAUTH_CONCAT_IMPL_(x, y) x##y
#define VIEWAUTH_CONCAT_(x, y) VIEWAUTH_CONCAT_IMPL_(x, y)

// VIEWAUTH_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>),
// returns its Status on failure, otherwise assigns the value to `lhs`.
// `lhs` may include a declaration, e.g.
//   VIEWAUTH_ASSIGN_OR_RETURN(auto plan, BuildPlan(query));
#define VIEWAUTH_ASSIGN_OR_RETURN(lhs, expr)                              \
  VIEWAUTH_ASSIGN_OR_RETURN_IMPL_(                                        \
      VIEWAUTH_CONCAT_(_viewauth_result_, __LINE__), lhs, expr)

#define VIEWAUTH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // VIEWAUTH_COMMON_RESULT_H_
