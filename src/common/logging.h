// Minimal logging and check macros for viewauth.
//
// VIEWAUTH_CHECK aborts on violated invariants (programming errors, never
// user errors — those are reported via Status). VIEWAUTH_DCHECK compiles
// out in NDEBUG builds.

#ifndef VIEWAUTH_COMMON_LOGGING_H_
#define VIEWAUTH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace viewauth {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level that is actually emitted; default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  // Fatal messages abort in the destructor.
  LogMessage(const char* file, int line, bool fatal);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_ = false;
  bool enabled_ = true;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace viewauth

#define VIEWAUTH_LOG(level)                                       \
  ::viewauth::internal_logging::LogMessage(                       \
      ::viewauth::internal_logging::LogLevel::k##level, __FILE__, \
      __LINE__)                                                   \
      .stream()

#define VIEWAUTH_CHECK(condition)                                      \
  if (!(condition))                                                    \
  ::viewauth::internal_logging::LogMessage(__FILE__, __LINE__, true)   \
          .stream()                                                    \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define VIEWAUTH_DCHECK(condition) \
  if (false) VIEWAUTH_CHECK(condition)
#else
#define VIEWAUTH_DCHECK(condition) VIEWAUTH_CHECK(condition)
#endif

#endif  // VIEWAUTH_COMMON_LOGGING_H_
