#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

namespace viewauth {

namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(ErrnoMessage("fcntl O_NONBLOCK"));
  }
  return Status::OK();
}

// Waits for `events` readiness; OK when ready, DeadlineExceeded on
// timeout, Unavailable when the descriptor reports an error/hangup with
// no readable data left.
Status PollFor(int fd, short events, long long timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int timeout = timeout_ms < 0
                      ? -1
                      : static_cast<int>(std::min<long long>(
                            timeout_ms, std::numeric_limits<int>::max()));
    int n = ::poll(&pfd, 1, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("poll"));
    }
    if (n == 0) return Status::DeadlineExceeded("socket operation timed out");
    // POLLHUP/POLLERR still allow a final read of buffered bytes; let
    // the caller's recv/send observe the condition directly.
    return Status::OK();
  }
}

class PosixSocket : public Socket {
 public:
  explicit PosixSocket(int fd) : fd_(fd) {}

  ~PosixSocket() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(char* buf, size_t max, long long timeout_ms) override {
    if (fd_ < 0) return Status::Internal("read on closed socket");
    if (max == 0) return static_cast<size_t>(0);
    for (;;) {
      ssize_t n = ::recv(fd_, buf, max, 0);
      if (n > 0) return static_cast<size_t>(n);
      if (n == 0) return static_cast<size_t>(0);  // clean end-of-stream
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        VIEWAUTH_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms));
        continue;
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset by peer");
      }
      return Status::Internal(ErrnoMessage("recv"));
    }
  }

  Result<size_t> Write(std::string_view data, long long timeout_ms) override {
    if (fd_ < 0) return Status::Internal("write on closed socket");
    if (data.empty()) return static_cast<size_t>(0);
    for (;;) {
      ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n > 0) return static_cast<size_t>(n);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        VIEWAUTH_RETURN_NOT_OK(PollFor(fd_, POLLOUT, timeout_ms));
        continue;
      }
      if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        return Status::Unavailable("connection reset by peer");
      }
      return Status::Internal(ErrnoMessage("send"));
    }
  }

  Status Shutdown() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal(ErrnoMessage("close socket"));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

Result<std::unique_ptr<Socket>> WrapConnected(int fd) {
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return std::unique_ptr<Socket>(std::make_unique<PosixSocket>(fd));
}

// Finishes a nonblocking connect within the timeout.
Result<std::unique_ptr<Socket>> FinishConnect(int fd, const sockaddr* addr,
                                              socklen_t addr_len,
                                              long long timeout_ms) {
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      Status err = Status::Unavailable(ErrnoMessage("connect"));
      ::close(fd);
      return err;
    }
    Status ready = PollFor(fd, POLLOUT, timeout_ms);
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      errno = so_error;
      return Status::Unavailable(ErrnoMessage("connect"));
    }
  }
  return std::unique_ptr<Socket>(std::make_unique<PosixSocket>(fd));
}

class PosixListenSocket : public ListenSocket {
 public:
  PosixListenSocket(int fd, int port, std::string unix_path)
      : fd_(fd), port_(port), unix_path_(std::move(unix_path)) {}

  ~PosixListenSocket() override {
    Status ignored = Close();
    (void)ignored;
  }

  Result<std::unique_ptr<Socket>> Accept(long long timeout_ms) override {
    if (fd_ < 0) return Status::Internal("accept on closed listener");
    for (;;) {
      int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) return WrapConnected(client);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        VIEWAUTH_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms));
        continue;
      }
      return Status::Internal(ErrnoMessage("accept"));
    }
  }

  int port() const override { return port_; }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    ::close(fd);
    if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
    return Status::OK();
  }

 private:
  int fd_;
  int port_;
  std::string unix_path_;
};

}  // namespace

Status ReadFully(Socket& socket, char* buf, size_t n, long long timeout_ms) {
  const auto deadline = timeout_ms < 0
                            ? Clock::time_point::max()
                            : Clock::now() + std::chrono::milliseconds(
                                                 timeout_ms);
  size_t got = 0;
  while (got < n) {
    long long remaining = -1;
    if (timeout_ms >= 0) {
      remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (remaining < 0) remaining = 0;
    }
    VIEWAUTH_ASSIGN_OR_RETURN(size_t chunk,
                              socket.Read(buf + got, n - got, remaining));
    if (chunk == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::Unavailable("connection closed mid-transfer");
    }
    got += chunk;
  }
  return Status::OK();
}

Status WriteFully(Socket& socket, std::string_view data,
                  long long timeout_ms) {
  const auto deadline = timeout_ms < 0
                            ? Clock::time_point::max()
                            : Clock::now() + std::chrono::milliseconds(
                                                 timeout_ms);
  while (!data.empty()) {
    long long remaining = -1;
    if (timeout_ms >= 0) {
      remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (remaining < 0) remaining = 0;
    }
    VIEWAUTH_ASSIGN_OR_RETURN(size_t chunk, socket.Write(data, remaining));
    data.remove_prefix(chunk);
  }
  return Status::OK();
}

Result<std::unique_ptr<ListenSocket>> ListenSocket::ListenTcp(
    const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket(AF_INET)"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Status::Internal(ErrnoMessage("bind " + host));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 128) != 0) {
    Status err = Status::Internal(ErrnoMessage("listen"));
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status err = Status::Internal(ErrnoMessage("getsockname"));
    ::close(fd);
    return err;
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return std::unique_ptr<ListenSocket>(std::make_unique<PosixListenSocket>(
      fd, ntohs(addr.sin_port), std::string()));
}

Result<std::unique_ptr<ListenSocket>> ListenSocket::ListenUnix(
    const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket(AF_UNIX)"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Status::Internal(ErrnoMessage("bind " + path));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 128) != 0) {
    Status err = Status::Internal(ErrnoMessage("listen " + path));
    ::close(fd);
    return err;
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return std::unique_ptr<ListenSocket>(
      std::make_unique<PosixListenSocket>(fd, 0, path));
}

Result<std::unique_ptr<Socket>> ConnectTcp(const std::string& host, int port,
                                           long long timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket(AF_INET)"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad connect address '" + host + "'");
  }
  return FinishConnect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                       timeout_ms);
}

Result<std::unique_ptr<Socket>> ConnectUnix(const std::string& path,
                                            long long timeout_ms) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket(AF_UNIX)"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return FinishConnect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                       timeout_ms);
}

Result<std::pair<std::unique_ptr<Socket>, std::unique_ptr<Socket>>>
MakeSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(ErrnoMessage("socketpair"));
  }
  VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<Socket> a, WrapConnected(fds[0]));
  auto b = WrapConnected(fds[1]);
  if (!b.ok()) return b.status();
  return std::make_pair(std::move(a), std::move(*b));
}

// --- SocketFaultPlan --------------------------------------------------------

void SocketFaultPlan::set_max_read_chunk(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_read_chunk_ = n;
}
void SocketFaultPlan::set_max_write_chunk(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_write_chunk_ = n;
}
void SocketFaultPlan::set_fail_write_after_bytes(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_write_after_bytes_ = n;
}
void SocketFaultPlan::set_fail_read_after_bytes(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_read_after_bytes_ = n;
}
void SocketFaultPlan::set_corrupt_write_byte(int64_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_write_offset_ = offset;
  corrupt_write_mask_ = mask;
}
void SocketFaultPlan::set_read_stall_ms(long long ms) {
  std::lock_guard<std::mutex> lock(mu_);
  read_stall_ms_ = ms;
}
uint64_t SocketFaultPlan::bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}
uint64_t SocketFaultPlan::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}
uint64_t SocketFaultPlan::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

// --- FaultInjectingSocket ---------------------------------------------------

Result<size_t> FaultInjectingSocket::Read(char* buf, size_t max,
                                          long long timeout_ms) {
  long long stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(plan_->mu_);
    stall_ms = plan_->read_stall_ms_;
    if (plan_->fail_read_after_bytes_ >= 0 &&
        static_cast<int64_t>(plan_->bytes_read_) >=
            plan_->fail_read_after_bytes_) {
      ++plan_->faults_injected_;
      return Status::Unavailable("connection reset by peer (injected)");
    }
    if (plan_->max_read_chunk_ > 0) max = std::min(max, plan_->max_read_chunk_);
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  VIEWAUTH_ASSIGN_OR_RETURN(size_t n, base_->Read(buf, max, timeout_ms));
  std::lock_guard<std::mutex> lock(plan_->mu_);
  // Clip to the fault point so the cut never over-delivers.
  if (plan_->fail_read_after_bytes_ >= 0) {
    const uint64_t room = static_cast<uint64_t>(plan_->fail_read_after_bytes_) -
                          std::min<uint64_t>(plan_->bytes_read_,
                                             static_cast<uint64_t>(
                                                 plan_->fail_read_after_bytes_));
    n = std::min<size_t>(n, static_cast<size_t>(room));
  }
  plan_->bytes_read_ += n;
  return n;
}

Result<size_t> FaultInjectingSocket::Write(std::string_view data,
                                           long long timeout_ms) {
  std::string scratch;
  {
    std::lock_guard<std::mutex> lock(plan_->mu_);
    if (plan_->fail_write_after_bytes_ >= 0 &&
        static_cast<int64_t>(plan_->bytes_written_) >=
            plan_->fail_write_after_bytes_) {
      ++plan_->faults_injected_;
      return Status::Unavailable("connection reset by peer (injected)");
    }
    if (plan_->max_write_chunk_ > 0 && data.size() > plan_->max_write_chunk_) {
      data = data.substr(0, plan_->max_write_chunk_);
    }
    if (plan_->fail_write_after_bytes_ >= 0) {
      const uint64_t room =
          static_cast<uint64_t>(plan_->fail_write_after_bytes_) -
          plan_->bytes_written_;
      if (data.size() > room) data = data.substr(0, static_cast<size_t>(room));
    }
    if (plan_->corrupt_write_offset_ >= 0) {
      const int64_t start = static_cast<int64_t>(plan_->bytes_written_);
      const int64_t off = plan_->corrupt_write_offset_ - start;
      if (off >= 0 && off < static_cast<int64_t>(data.size())) {
        scratch.assign(data);
        scratch[static_cast<size_t>(off)] =
            static_cast<char>(scratch[static_cast<size_t>(off)] ^
                              plan_->corrupt_write_mask_);
        data = scratch;
        ++plan_->faults_injected_;
      }
    }
  }
  VIEWAUTH_ASSIGN_OR_RETURN(size_t n, base_->Write(data, timeout_ms));
  std::lock_guard<std::mutex> lock(plan_->mu_);
  plan_->bytes_written_ += n;
  return n;
}

}  // namespace viewauth
